//! Cancellation-latency tests: the SGNS/NCE training loops check the
//! cooperative flag every `CANCEL_CHECK_INTERVAL` SGD steps — not just once
//! per epoch — so even a run configured as a *single* enormous epoch aborts
//! promptly when the flag is raised from another thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nrp::prelude::*;

fn small_graph() -> Graph {
    generators::stochastic_block_model(&[12, 12], 0.4, 0.05, GraphKind::Undirected, 3)
        .expect("valid SBM parameters")
        .0
}

/// Runs `json` with a flag raised ~50ms in, expecting a prompt `Cancelled`.
///
/// Each configuration is sized so a full run takes far longer than the
/// raise delay even on a fast machine, which makes the assertion two-sided:
/// an `Ok` means the workload finished implausibly fast, an over-long run
/// means the mid-epoch check is gone.  The latency bound is deliberately
/// generous (30s vs a sub-millisecond expected latency) so the test cannot
/// flake on slow CI hardware.
fn assert_cancels_mid_epoch(json: &str) {
    nrp::init();
    let graph = small_graph();
    let embedder = MethodConfig::from_json(json)
        .expect(json)
        .build()
        .expect(json);
    let flag = Arc::new(AtomicBool::new(false));
    let ctx = EmbedContext::new().with_cancel_flag(Arc::clone(&flag));
    let raiser = {
        let flag = Arc::clone(&flag);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            flag.store(true, Ordering::Relaxed);
        })
    };
    let started = Instant::now();
    let result = embedder.embed(&graph, &ctx);
    let elapsed = started.elapsed();
    raiser.join().expect("raiser thread");
    match result {
        Err(NrpError::Cancelled) => {}
        Ok(_) => panic!("{json}: run completed before the 50ms cancellation"),
        Err(other) => panic!("{json}: expected Cancelled, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(30),
        "{json}: cancellation took {elapsed:?}"
    );
}

#[test]
fn line_cancels_inside_a_single_epoch() {
    // One pass of 40M edge samples: hours of work if the per-step check were
    // missing, aborted in milliseconds with it.
    assert_cancels_mid_epoch(
        r#"{"method": "LINE", "dimension": 16, "samples": 40000000, "seed": 1}"#,
    );
}

#[test]
fn verse_cancels_inside_a_single_epoch() {
    assert_cancels_mid_epoch(
        r#"{"method": "VERSE", "dimension": 16, "samples_per_node": 100000, "epochs": 1, "seed": 1}"#,
    );
}

#[test]
fn app_cancels_inside_a_single_epoch() {
    assert_cancels_mid_epoch(
        r#"{"method": "APP", "dimension": 16, "samples_per_node": 100000, "epochs": 1, "seed": 1}"#,
    );
}

#[test]
fn deepwalk_cancels_inside_a_single_sgns_epoch() {
    // 200 walks of length 80 per node with window 10 yield ~7.5M skip-gram
    // pairs (~45M SGNS updates with 5 negatives); one epoch over them is two
    // orders of magnitude beyond the 50ms raise even on fast hardware.
    assert_cancels_mid_epoch(
        r#"{"method": "DeepWalk", "dimension": 16, "walks_per_node": 200, "walk_length": 80, "window": 10, "epochs": 1, "seed": 1}"#,
    );
}
