//! Cross-crate integration tests: graph generation → embedding → evaluation,
//! exercising the public API exactly as the examples and benchmark harnesses
//! do.

use nrp::prelude::*;
use nrp_core::approx_ppr::ApproxPprParams;

fn labelled_sbm(seed: u64) -> (Graph, Vec<Vec<u32>>) {
    let (graph, community) =
        generators::stochastic_block_model(&[60, 60, 60], 0.2, 0.008, GraphKind::Undirected, seed)
            .expect("valid SBM parameters");
    let labels = generators::planted_labels(&community, 3, 0.05, 0.1, seed);
    (graph, labels)
}

fn nrp(dimension: usize, seed: u64) -> Nrp {
    Nrp::new(
        NrpParams::builder()
            .dimension(dimension)
            .reweight_epochs(8)
            .lambda(1.0)
            .seed(seed)
            .build()
            .expect("valid parameters"),
    )
}

#[test]
fn nrp_link_prediction_beats_chance_and_matches_approx_ppr() {
    let (graph, _) = labelled_sbm(1);
    let task = LinkPrediction::new(LinkPredictionConfig {
        seed: 1,
        ..Default::default()
    });
    let nrp_auc = task
        .evaluate(&graph, &nrp(16, 1))
        .expect("NRP evaluation")
        .auc;
    let approx = ApproxPpr::new(ApproxPprParams {
        half_dimension: 8,
        seed: 1,
        ..Default::default()
    });
    let approx_auc = task
        .evaluate(&graph, &approx)
        .expect("ApproxPPR evaluation")
        .auc;
    assert!(nrp_auc > 0.75, "NRP AUC {nrp_auc}");
    assert!(
        nrp_auc >= approx_auc - 0.03,
        "NRP {nrp_auc} vs ApproxPPR {approx_auc}"
    );
}

#[test]
fn full_pipeline_classification_recovers_communities() {
    let (graph, labels) = labelled_sbm(2);
    let report = NodeClassification::new(ClassificationConfig {
        train_ratio: 0.5,
        seed: 2,
        ..Default::default()
    })
    .evaluate(&graph, &labels, &nrp(16, 2))
    .expect("classification evaluation");
    assert!(report.micro_f1 > 0.6, "micro-F1 {}", report.micro_f1);
}

#[test]
fn reconstruction_precision_high_at_small_k() {
    let (graph, _) = labelled_sbm(3);
    let outcome = GraphReconstruction::new(ReconstructionConfig {
        sample_pairs: None,
        k_values: vec![10, 100],
        seed: 3,
    })
    .evaluate(&graph, &nrp(16, 3))
    .expect("reconstruction evaluation");
    assert!(
        outcome.precision[0].precision >= 0.8,
        "precision@10 {}",
        outcome.precision[0].precision
    );
}

#[test]
fn directed_graph_round_trip_through_io_and_embedding() {
    let (graph, _) =
        generators::stochastic_block_model(&[50, 50], 0.15, 0.01, GraphKind::Directed, 4)
            .expect("valid SBM parameters");
    // Write the graph to disk, read it back, embed both, and check the
    // embeddings agree (the round trip must preserve the structure exactly).
    let dir = std::env::temp_dir();
    let path = dir.join("nrp_integration_graph.txt");
    nrp::graph::io::write_edge_list(&graph, &path).expect("write edge list");
    let reloaded =
        nrp::graph::io::read_edge_list(&path, GraphKind::Directed).expect("read edge list");
    assert_eq!(reloaded.num_arcs(), graph.num_arcs());
    let a = nrp(8, 4).embed_default(&graph).expect("embed original");
    let b = nrp(8, 4).embed_default(&reloaded).expect("embed reloaded");
    for u in 0..graph.num_nodes() as u32 {
        for v in 0..graph.num_nodes() as u32 {
            assert!((a.score(u, v) - b.score(u, v)).abs() < 1e-9);
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_method_in_the_roster_beats_random_on_an_easy_graph() {
    // An easy, dense SBM: every reasonable embedding method should beat
    // chance at link prediction by a clear margin.
    let (graph, _) =
        generators::stochastic_block_model(&[40, 40], 0.3, 0.02, GraphKind::Undirected, 5)
            .expect("valid SBM parameters");
    let task = LinkPrediction::new(LinkPredictionConfig {
        seed: 5,
        ..Default::default()
    });
    for method in nrp_baselines::all_baselines(16, 5) {
        let auc = task
            .evaluate(&graph, method.as_ref())
            .unwrap_or_else(|_| panic!("{}", method.name()))
            .auc;
        assert!(
            auc > 0.55,
            "{} AUC {auc} is not better than chance",
            method.name()
        );
    }
}

#[test]
fn embedding_serialization_round_trip_preserves_scores() {
    let (graph, _) = labelled_sbm(6);
    let embedding = nrp(16, 6).embed_default(&graph).expect("embedding");
    let json = embedding.to_json().expect("serialize");
    let restored = Embedding::from_json(&json).expect("deserialize");
    assert_eq!(restored, embedding);
}

#[test]
fn reweighting_changes_scores_but_preserves_dimensions() {
    let (graph, _) = labelled_sbm(7);
    let with = nrp(16, 7).embed_default(&graph).expect("with reweighting");
    let without = Nrp::new(
        NrpParams::builder()
            .dimension(16)
            .reweight_epochs(0)
            .seed(7)
            .build()
            .expect("params"),
    )
    .embed_default(&graph)
    .expect("without reweighting");
    assert_eq!(with.dimension(), without.dimension());
    let mut differs = false;
    for u in 0..10u32 {
        for v in 0..10u32 {
            if (with.score(u, v) - without.score(u, v)).abs() > 1e-9 {
                differs = true;
            }
        }
    }
    assert!(differs, "reweighting should change at least some scores");
}
