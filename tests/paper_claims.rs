//! Integration tests tying the implementation back to specific claims of the
//! paper — the qualitative results a reproduction must preserve.

use nrp::prelude::*;
use nrp_core::ppr::PprMatrix;
use nrp_graph::generators::example::{example_graph, V2, V4, V7, V9};

/// Section 1 / Table 1: vanilla PPR ranks (v9, v7) above (v2, v4) although
/// the latter pair shares three common neighbours and the former only one.
#[test]
fn claim_vanilla_ppr_misranks_the_fig1_pairs() {
    let graph = example_graph();
    assert_eq!(graph.common_out_neighbors(V2, V4), 3);
    assert_eq!(graph.common_out_neighbors(V9, V7), 1);
    let ppr = PprMatrix::exact(&graph, 0.15, 1e-12).expect("exact PPR");
    assert!(ppr.get(V9, V7) > ppr.get(V2, V4));
}

/// Section 4 / Fig. 8(d): node reweighting fixes the misranking — NRP scores
/// (v2, v4) above (v9, v7), while disabling reweighting (ℓ2 = 0) does not.
#[test]
fn claim_reweighting_fixes_the_misranking() {
    let graph = example_graph();
    let reweighted = Nrp::new(
        NrpParams::builder()
            .dimension(8)
            .num_hops(30)
            .lambda(0.1)
            .seed(1)
            .build()
            .expect("params"),
    )
    .embed_default(&graph)
    .expect("NRP embedding");
    assert!(reweighted.score(V2, V4) > reweighted.score(V9, V7));

    let vanilla = Nrp::new(
        NrpParams::builder()
            .dimension(8)
            .num_hops(30)
            .reweight_epochs(0)
            .seed(1)
            .build()
            .expect("params"),
    )
    .embed_default(&graph)
    .expect("ApproxPPR embedding");
    assert!(
        vanilla.score(V9, V7) > vanilla.score(V2, V4),
        "without reweighting the PPR misranking should persist"
    );
}

/// Theorem 1: the ApproxPPR factorization error is controlled by the SVD
/// accuracy — with full rank the embeddings reproduce the truncated PPR
/// series up to the series-truncation tail.
#[test]
fn claim_theorem1_error_bound_holds_at_full_rank() {
    let graph = example_graph();
    let alpha = 0.15;
    let l1 = 30usize;
    let embedding = nrp_core::ApproxPpr::new(nrp_core::ApproxPprParams {
        half_dimension: 9,
        alpha,
        num_hops: l1,
        epsilon: 0.1,
        ..Default::default()
    })
    .embed_default(&graph)
    .expect("ApproxPPR embedding");
    let exact = PprMatrix::exact(&graph, alpha, 1e-12).expect("exact PPR");
    let tail = (1.0_f64 - alpha).powi(l1 as i32 + 1);
    for u in 0..9u32 {
        for v in 0..9u32 {
            if u == v {
                continue;
            }
            let err = (embedding.score(u, v) - exact.get(u, v)).abs();
            // At full rank sigma_{k'+1} = 0, so the bound reduces to the tail
            // term; allow a small numerical slack.
            assert!(
                err <= tail + 1e-6,
                "|XY - pi| = {err} at ({u},{v}) exceeds tail {tail}"
            );
        }
    }
}

/// Section 4.4 / Fig. 10: construction cost grows roughly linearly with the
/// number of edges (we allow a generous factor to absorb constant overheads
/// on small inputs, but quadratic growth would fail this test).
#[test]
fn claim_near_linear_scaling_in_edges() {
    use std::time::Instant;
    let small = generators::erdos_renyi_nm(3_000, 9_000, GraphKind::Directed, 1).expect("ER graph");
    let large =
        generators::erdos_renyi_nm(3_000, 36_000, GraphKind::Directed, 1).expect("ER graph");
    let embedder = Nrp::new(
        NrpParams::builder()
            .dimension(16)
            .reweight_epochs(3)
            .seed(1)
            .build()
            .expect("params"),
    );
    // Warm up (allocator, page faults).
    embedder.embed_default(&small).expect("warm-up");
    let start = Instant::now();
    embedder.embed_default(&small).expect("small embedding");
    let t_small = start.elapsed().as_secs_f64();
    let start = Instant::now();
    embedder.embed_default(&large).expect("large embedding");
    let t_large = start.elapsed().as_secs_f64();
    // 4x the edges should cost well under 16x the time (quadratic behaviour).
    assert!(
        t_large < 10.0 * t_small.max(1e-3),
        "time grew superlinearly: {t_small}s -> {t_large}s for 4x edges"
    );
}

/// Section 5.2: NRP beats the PPR-only baseline on link prediction over a
/// degree-skewed graph, the setting the reweighting was designed for.
/// A pure preferential-attachment graph has no community structure, so the
/// absolute AUC of *every* method is modest here; the reproduced claim is the
/// *relative* one — degree reweighting clearly improves on vanilla PPR.
#[test]
fn claim_nrp_improves_link_prediction_on_skewed_graphs() {
    let graph = generators::barabasi_albert(600, 4, GraphKind::Undirected, 9).expect("BA graph");
    let task = LinkPrediction::new(LinkPredictionConfig {
        seed: 9,
        ..Default::default()
    });
    let nrp_auc = task
        .evaluate(
            &graph,
            &Nrp::new(
                NrpParams::builder()
                    .dimension(32)
                    .lambda(1.0)
                    .seed(9)
                    .build()
                    .expect("params"),
            ),
        )
        .expect("NRP evaluation")
        .auc;
    let approx_auc = task
        .evaluate(
            &graph,
            &nrp_core::ApproxPpr::new(nrp_core::ApproxPprParams {
                half_dimension: 16,
                seed: 9,
                ..Default::default()
            }),
        )
        .expect("ApproxPPR evaluation")
        .auc;
    assert!(
        nrp_auc > approx_auc + 0.02,
        "NRP ({nrp_auc}) should clearly beat ApproxPPR ({approx_auc}) on a heavy-tailed graph"
    );
    assert!(nrp_auc > 0.53, "NRP AUC {nrp_auc} should beat chance");
}
