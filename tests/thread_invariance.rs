//! Thread-invariance contract tests: for every method whose heavy stages are
//! data-parallel (ApproxPPR's SVD and propagations, STRAP's per-source
//! pushes and SVD, DeepWalk/node2vec walk generation, NRP end to end, RandNE
//! propagation, Spectral/AROPE eigensolves), the embedding produced under
//! `with_threads(1)` must be **bitwise identical** to the one produced under
//! any other thread budget.
//!
//! The comparison budget defaults to 4 and can be overridden with the
//! `NRP_TEST_THREADS` environment variable, which CI uses to run a 2-thread
//! and an 8-thread matrix leg — a determinism regression in any chunked
//! kernel fails fast on at least one leg.

use nrp::prelude::*;

/// The thread budget compared against the sequential run.
fn test_threads() -> usize {
    std::env::var("NRP_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t: &usize| t >= 2)
        .unwrap_or(4)
}

fn test_graph(kind: GraphKind, seed: u64) -> Graph {
    generators::stochastic_block_model(&[30, 30, 30], 0.15, 0.02, kind, seed)
        .expect("valid SBM parameters")
        .0
}

/// Methods with parallelized stages, as fast JSON configurations.
fn parallel_method_configs() -> Vec<&'static str> {
    vec![
        r#"{"method": "ApproxPPR", "dimension": 16, "seed": 3}"#,
        r#"{"method": "NRP", "dimension": 16, "reweight_epochs": 4, "seed": 3}"#,
        r#"{"method": "STRAP", "dimension": 16, "delta": 0.001, "seed": 3}"#,
        r#"{"method": "DeepWalk", "dimension": 16, "walks_per_node": 4, "walk_length": 12, "epochs": 1, "seed": 3}"#,
        r#"{"method": "node2vec", "dimension": 16, "walks_per_node": 4, "walk_length": 12, "p": 0.5, "q": 2.0, "epochs": 1, "seed": 3}"#,
        r#"{"method": "RandNE", "dimension": 16, "seed": 3}"#,
        r#"{"method": "Spectral", "dimension": 16, "seed": 3}"#,
        r#"{"method": "AROPE", "dimension": 16, "seed": 3}"#,
    ]
}

#[test]
fn embeddings_are_bitwise_identical_across_thread_budgets() {
    nrp::init();
    let threads = test_threads();
    for kind in [GraphKind::Undirected, GraphKind::Directed] {
        let graph = test_graph(kind, 17);
        for json in parallel_method_configs() {
            let embedder = MethodConfig::from_json(json)
                .expect(json)
                .build()
                .expect(json);
            let single = embedder
                .embed(&graph, &EmbedContext::new().with_threads(1))
                .expect(json);
            let multi = embedder
                .embed(&graph, &EmbedContext::new().with_threads(threads))
                .expect(json);
            assert_eq!(
                single.embedding(),
                multi.embedding(),
                "{json} differs between 1 and {threads} threads on {kind:?}"
            );
            assert_eq!(multi.metadata().threads, threads, "{json}");
        }
    }
}

#[test]
fn pooled_and_scoped_execution_are_bitwise_identical() {
    // The persistent worker pool only moves the wall clock: for every
    // method, embedding under the context's pool (the `with_threads`
    // default), under per-call scoped threads, and under a single thread
    // must all be bitwise identical.
    nrp::init();
    let threads = test_threads();
    let graph = test_graph(GraphKind::Directed, 31);
    for json in parallel_method_configs() {
        let embedder = MethodConfig::from_json(json)
            .expect(json)
            .build()
            .expect(json);
        let single = embedder
            .embed(&graph, &EmbedContext::new().with_threads(1))
            .expect(json);
        let pooled_ctx = EmbedContext::new().with_threads(threads);
        let pooled = embedder.embed(&graph, &pooled_ctx).expect(json);
        assert!(
            pooled_ctx.worker_pool().is_some(),
            "{json}: a multi-thread run must create the context's pool"
        );
        let scoped = embedder
            .embed(&graph, &EmbedContext::new().with_scoped_threads(threads))
            .expect(json);
        assert_eq!(
            pooled.embedding(),
            scoped.embedding(),
            "{json}: pool vs scoped at {threads} threads"
        );
        assert_eq!(
            pooled.embedding(),
            single.embedding(),
            "{json}: pool vs 1 thread"
        );
    }
}

#[test]
fn one_pool_reused_across_embeddings_and_methods() {
    // The pool's whole point: one set of threads across many runs.  Two
    // different methods and two repeat runs all share the context's pool,
    // and every result stays bitwise identical to the sequential reference.
    nrp::init();
    let threads = test_threads();
    let graph = test_graph(GraphKind::Undirected, 37);
    let ctx = EmbedContext::new().with_threads(threads);
    for json in [
        r#"{"method": "ApproxPPR", "dimension": 16, "seed": 3}"#,
        r#"{"method": "STRAP", "dimension": 16, "delta": 0.001, "seed": 3}"#,
    ] {
        let embedder = MethodConfig::from_json(json)
            .expect(json)
            .build()
            .expect(json);
        let reference = embedder
            .embed(&graph, &EmbedContext::new().with_threads(1))
            .expect(json);
        let first = embedder.embed(&graph, &ctx).expect(json);
        let second = embedder.embed(&graph, &ctx).expect(json);
        assert_eq!(first.embedding(), reference.embedding(), "{json} run 1");
        assert_eq!(second.embedding(), reference.embedding(), "{json} run 2");
    }
    // The same pool instance served every run.
    let pool = ctx.worker_pool().expect("pool created on first use");
    assert_eq!(pool.capacity(), threads);
    // An explicitly shared pool works across distinct contexts too.
    let shared = std::sync::Arc::clone(pool);
    let other_ctx = EmbedContext::new()
        .with_threads(threads)
        .with_worker_pool(shared);
    let embedder = MethodConfig::from_json(r#"{"method": "RandNE", "dimension": 16, "seed": 3}"#)
        .expect("valid config")
        .build()
        .expect("RandNE builds");
    let pooled = embedder.embed(&graph, &other_ctx).expect("RandNE runs");
    let reference = embedder
        .embed(&graph, &EmbedContext::new().with_threads(1))
        .expect("RandNE runs");
    assert_eq!(pooled.embedding(), reference.embedding());
}

#[test]
fn stage_metadata_records_the_granted_thread_budget() {
    nrp::init();
    let graph = test_graph(GraphKind::Undirected, 23);
    let embedder = MethodConfig::from_json(r#"{"method": "STRAP", "dimension": 8, "seed": 1}"#)
        .expect("valid config")
        .build()
        .expect("STRAP builds");
    let output = embedder
        .embed(&graph, &EmbedContext::new().with_threads(3))
        .expect("STRAP runs");
    let stages = &output.metadata().stages;
    for name in ["proximity", "svd"] {
        let stage = stages
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("stage {name} missing"));
        assert_eq!(stage.threads, 3, "stage {name} should record the budget");
    }
    // The sequential scaling stage is recorded as single-threaded.
    let scale = stages
        .iter()
        .find(|s| s.name == "scale")
        .expect("scale stage");
    assert_eq!(scale.threads, 1);
}

#[test]
fn every_exec_kernel_is_bitwise_thread_invariant() {
    // The roster below is the contract `nrp-lint` rule A002 enforces: every
    // `pub fn *_exec` kernel in the workspace must appear — and prove
    // bitwise invariance — here.  Adding a kernel without extending this
    // test fails `cargo run -p nrp-lint -- --workspace --deny`.
    use nrp::baselines::walks::{node2vec_walks_exec, uniform_walks_exec};
    use nrp::linalg::parallel::{
        par_chunk_map_exec, par_fill_rows_exec, par_reduce_exec, try_par_chunk_map_exec, Exec,
    };
    use nrp::linalg::qr::orthonormalize_exec;
    use nrp::linalg::SparseMatrix;

    let threads = test_threads();
    let sequential = Exec::sequential();
    let parallel = Exec::scoped(threads);

    // par_chunk_map_exec: chunk results concatenate in ascending order.
    let seq = par_chunk_map_exec(97, 8, &sequential, |r| r.sum::<usize>());
    let par = par_chunk_map_exec(97, 8, &parallel, |r| r.sum::<usize>());
    assert_eq!(seq, par, "par_chunk_map_exec");

    // try_par_chunk_map_exec: same contract through the fallible variant.
    let seq = try_par_chunk_map_exec(97, 8, &sequential, |r| Ok::<_, String>(r.len()));
    let par = try_par_chunk_map_exec(97, 8, &parallel, |r| Ok::<_, String>(r.len()));
    assert_eq!(seq, par, "try_par_chunk_map_exec");

    // par_reduce_exec: floats fold in ascending chunk order, so even a
    // non-associative reduction is bitwise stable.
    let map = |r: std::ops::Range<usize>| r.map(|i| 1.0 / (i as f64 + 1.0)).sum::<f64>();
    let fold = |a: f64, b: f64| a + b;
    let seq = par_reduce_exec(1003, 16, &sequential, map, fold).expect("non-empty");
    let par = par_reduce_exec(1003, 16, &parallel, map, fold).expect("non-empty");
    assert_eq!(seq.to_bits(), par.to_bits(), "par_reduce_exec");

    // par_fill_rows_exec: disjoint row blocks of one output buffer.
    let fill = |i: usize, row: &mut [f64]| {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = ((i * 31 + j) as f64).sin();
        }
    };
    let seq = par_fill_rows_exec(40, 7, &sequential, fill);
    let par = par_fill_rows_exec(40, 7, &parallel, fill);
    assert_eq!(seq, par, "par_fill_rows_exec");

    // Dense kernels: matmul_exec / transpose_matmul_exec / gram_exec.
    let a = nrp::linalg::random::gaussian_matrix(33, 12, 7);
    let b = nrp::linalg::random::gaussian_matrix(12, 9, 8);
    let seq = a.matmul_exec(&b, &sequential).expect("shapes agree");
    let par = a.matmul_exec(&b, &parallel).expect("shapes agree");
    assert_eq!(seq.data(), par.data(), "matmul_exec");
    let c = nrp::linalg::random::gaussian_matrix(33, 9, 9);
    let seq = a
        .transpose_matmul_exec(&c, &sequential)
        .expect("shapes agree");
    let par = a
        .transpose_matmul_exec(&c, &parallel)
        .expect("shapes agree");
    assert_eq!(seq.data(), par.data(), "transpose_matmul_exec");
    assert_eq!(
        a.gram_exec(&sequential).data(),
        a.gram_exec(&parallel).data(),
        "gram_exec"
    );

    // Sparse kernel: matmul_dense_exec.
    let triplets: Vec<(usize, usize, f64)> = (0..200)
        .map(|k| ((k * 7) % 25, (k * 11) % 12, (k as f64 + 1.0).recip()))
        .collect();
    let sparse = SparseMatrix::from_triplets(25, 12, &triplets).expect("valid triplets");
    let dense = nrp::linalg::random::gaussian_matrix(12, 6, 10);
    let seq = sparse
        .matmul_dense_exec(&dense, &sequential)
        .expect("shapes agree");
    let par = sparse
        .matmul_dense_exec(&dense, &parallel)
        .expect("shapes agree");
    assert_eq!(seq.data(), par.data(), "matmul_dense_exec");

    // QR kernel: orthonormalize_exec.
    let tall = nrp::linalg::random::gaussian_matrix(48, 6, 11);
    let seq = orthonormalize_exec(&tall, &sequential).expect("full rank");
    let par = orthonormalize_exec(&tall, &parallel).expect("full rank");
    assert_eq!(seq.data(), par.data(), "orthonormalize_exec");

    // Walk kernels: uniform_walks_exec / node2vec_walks_exec.
    let graph = test_graph(GraphKind::Undirected, 41);
    let seq = uniform_walks_exec(&graph, 3, 10, 13, &sequential);
    let par = uniform_walks_exec(&graph, 3, 10, 13, &parallel);
    assert_eq!(seq, par, "uniform_walks_exec");
    let seq = node2vec_walks_exec(&graph, 3, 10, 0.5, 2.0, 13, &sequential);
    let par = node2vec_walks_exec(&graph, 3, 10, 0.5, 2.0, 13, &parallel);
    assert_eq!(seq, par, "node2vec_walks_exec");
}

#[test]
fn strap_proximity_matrix_is_thread_invariant() {
    // Below the Embedder surface: the assembled sparse proximity matrix
    // itself (triplet order included) must not depend on the budget.
    use nrp::baselines::strap::{Strap, StrapParams};
    let graph = test_graph(GraphKind::Directed, 29);
    let strap = Strap::new(StrapParams {
        dimension: 8,
        delta: 1e-3,
        seed: 5,
        ..Default::default()
    });
    let reference = strap
        .proximity_matrix_with(&graph, &EmbedContext::new().with_threads(1))
        .expect("sequential proximity");
    for threads in [2usize, test_threads()] {
        let parallel = strap
            .proximity_matrix_with(&graph, &EmbedContext::new().with_threads(threads))
            .expect("parallel proximity");
        assert_eq!(parallel, reference, "threads = {threads}");
    }
}
