//! Integration tests of the declarative API: JSON/TOML-described methods are
//! built through the registry, run under an `EmbedContext`, and their outputs
//! and metadata behave as documented — the contract a config-file-driven
//! experiment harness relies on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nrp::prelude::*;

fn small_graph() -> Graph {
    generators::stochastic_block_model(&[12, 12], 0.4, 0.05, GraphKind::Undirected, 3)
        .expect("valid SBM parameters")
        .0
}

/// Per-method JSON documents with budgets small enough for a fast sweep.
/// Only `method` is mandatory — everything omitted takes paper defaults.
fn fast_configs() -> Vec<&'static str> {
    vec![
        r#"{"method": "NRP", "dimension": 8, "reweight_epochs": 4, "seed": 7}"#,
        r#"{"method": "ApproxPPR", "dimension": 8, "seed": 7}"#,
        r#"{"method": "STRAP", "dimension": 8, "seed": 7}"#,
        r#"{"method": "AROPE", "dimension": 8, "seed": 7}"#,
        r#"{"method": "RandNE", "dimension": 8, "seed": 7}"#,
        r#"{"method": "Spectral", "dimension": 8, "seed": 7}"#,
        r#"{"method": "DeepWalk", "dimension": 8, "walks_per_node": 4, "walk_length": 15, "seed": 7}"#,
        r#"{"method": "node2vec", "dimension": 8, "walks_per_node": 4, "walk_length": 15, "p": 0.5, "q": 2.0, "seed": 7}"#,
        r#"{"method": "LINE", "dimension": 8, "samples": 20000, "seed": 7}"#,
        r#"{"method": "VERSE", "dimension": 8, "samples_per_node": 10, "epochs": 2, "seed": 7}"#,
        r#"{"method": "APP", "dimension": 8, "samples_per_node": 10, "epochs": 2, "seed": 7}"#,
    ]
}

#[test]
fn every_method_runs_from_a_json_document() {
    nrp::init();
    let graph = small_graph();
    let mut names = Vec::new();
    for json in fast_configs() {
        let config: MethodConfig = serde_json::from_str(json).expect(json);
        let embedder = config.build().expect(json);
        let output = embedder
            .embed(&graph, &EmbedContext::default())
            .expect(json);
        assert_eq!(output.embedding().num_nodes(), graph.num_nodes(), "{json}");
        assert!(output.embedding().is_finite(), "{json}");
        // The metadata echoes the effective configuration and records stages.
        assert_eq!(output.metadata().config, config, "{json}");
        assert_eq!(output.metadata().seed, 7, "{json}");
        assert!(!output.metadata().stages.is_empty(), "{json}");
        assert!(
            output.metadata().total >= output.metadata().stages[0].duration,
            "{json}"
        );
        names.push(embedder.name());
    }
    assert_eq!(names.len(), 11);
    let unique: std::collections::HashSet<_> = names.iter().collect();
    assert_eq!(unique.len(), 11, "all eleven methods distinct: {names:?}");
}

#[test]
fn fixed_seed_runs_are_deterministic_and_seed_override_wins() {
    nrp::init();
    let graph = small_graph();
    let config = MethodConfig::from_json(r#"{"method": "NRP", "dimension": 8, "seed": 5}"#)
        .expect("valid config");
    let embedder = config.build().expect("NRP builds");

    let a = embedder.embed_default(&graph).expect("run a");
    let b = embedder.embed_default(&graph).expect("run b");
    assert_eq!(a, b, "same seed, same embedding");

    // A context seed override takes precedence over the configured seed and
    // is echoed back in the metadata.
    let ctx = EmbedContext::new().with_seed(99);
    let overridden = embedder.embed(&graph, &ctx).expect("override run");
    assert_eq!(overridden.metadata().seed, 99);
    assert_eq!(overridden.metadata().config.seed(), 99);
    assert_ne!(
        *overridden.embedding(),
        a,
        "different seed, different embedding"
    );

    let again = embedder.embed(&graph, &ctx).expect("override run again");
    assert_eq!(*overridden.embedding(), again.into_embedding());
}

#[test]
fn thread_budget_does_not_change_results() {
    let graph = small_graph();
    let embedder = MethodConfig::from_json(r#"{"method": "NRP", "dimension": 8, "seed": 11}"#)
        .expect("valid config")
        .build()
        .expect("NRP builds");
    let single = embedder
        .embed(&graph, &EmbedContext::new().with_threads(1))
        .expect("1 thread");
    let multi = embedder
        .embed(&graph, &EmbedContext::new().with_threads(4))
        .expect("4 threads");
    assert_eq!(single.embedding(), multi.embedding());
    assert_eq!(multi.metadata().threads, 4);
}

#[test]
fn pre_cancelled_context_aborts_the_run() {
    let graph = small_graph();
    let flag = Arc::new(AtomicBool::new(true));
    let ctx = EmbedContext::new().with_cancel_flag(Arc::clone(&flag));
    let embedder = MethodConfig::default_for("NRP")
        .expect("known")
        .build()
        .expect("builds");
    match embedder.embed(&graph, &ctx) {
        Err(NrpError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // Lowering the flag lets the same context run to completion.
    flag.store(false, Ordering::Relaxed);
    let embedder = MethodConfig::from_json(r#"{"method": "ApproxPPR", "dimension": 8}"#)
        .expect("valid config")
        .build()
        .expect("builds");
    assert!(embedder.embed(&graph, &ctx).is_ok());
}

#[test]
fn json_and_toml_round_trips_agree() {
    for config in MethodConfig::all_defaults() {
        let via_json =
            MethodConfig::from_json(&config.to_json().expect("to json")).expect("json round trip");
        let via_toml = MethodConfig::from_toml(&config.to_toml()).expect("toml round trip");
        assert_eq!(via_json, config, "{}", config.method_name());
        assert_eq!(via_toml, config, "{}", config.method_name());
    }
}

#[test]
fn embedding_save_load_round_trip() {
    nrp::init();
    let graph = small_graph();
    let embedding = MethodConfig::from_json(r#"{"method": "NRP", "dimension": 8, "seed": 2}"#)
        .expect("valid config")
        .build()
        .expect("builds")
        .embed_default(&graph)
        .expect("embeds");
    let dir = tempfile::tempdir().expect("temp dir");
    let path = dir.path().join("embedding.json");
    embedding.save(&path).expect("save");
    let restored = Embedding::load(&path).expect("load");
    assert_eq!(restored, embedding);
    assert_eq!(restored.method(), "NRP");
    for u in 0..graph.num_nodes() as u32 {
        for v in 0..graph.num_nodes() as u32 {
            assert_eq!(restored.score(u, v), embedding.score(u, v));
        }
    }
}

#[test]
fn registry_lists_all_methods_after_init() {
    nrp::init();
    let registered = registered_methods();
    for name in MethodConfig::method_names() {
        assert!(registered.contains(name), "{name} missing from registry");
    }
}
