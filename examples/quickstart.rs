//! Quickstart: describe a method as data, build it through the registry,
//! embed a small graph, and inspect scores and run metadata.
//!
//! Run with: `cargo run --release --example quickstart`

use nrp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 0. Register all eleven methods with the registry (NRP and ApproxPPR
    //    are always available; this adds the nine baselines too).
    nrp::init();

    // 1. Build a graph.  Here: the 9-node example of the paper's Fig. 1;
    //    for real use, load an edge list with `nrp::graph::io::read_edge_list`.
    let graph = generators::example::example_graph();
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. Describe the method as data.  Anything not specified takes the
    //    paper's defaults (k = 128, alpha = 0.15, l1 = 20, l2 = 10,
    //    epsilon = 0.2, lambda = 10); we shrink the dimension for this tiny
    //    graph.  The same JSON could live in an experiment file on disk —
    //    `MethodConfig::from_toml` parses a TOML flavour of it as well.
    let config: MethodConfig = serde_json::from_str(
        r#"{"method": "NRP", "dimension": 8, "num_hops": 30, "lambda": 0.1, "seed": 42}"#,
    )?;
    println!("running: {}", config.to_json()?);

    // 3. Build and run under an execution context.  The context can override
    //    the seed, grant a thread budget, or carry a cancellation flag.  The
    //    thread budget is purely a performance knob: every parallel stage
    //    (SVD block matmuls, PPR propagations, STRAP pushes, walk
    //    generation) is bitwise deterministic, so any budget produces the
    //    exact same embedding.  A multi-thread context owns a persistent
    //    worker pool, created on the first parallel stage and reused by
    //    every subsequent stage and run — keep the context around (or clone
    //    it) across embeddings so thread spawning is paid only once.
    let embedder = config.build()?;
    let ctx = EmbedContext::new().with_threads(2);
    let output = embedder.embed(&graph, &ctx)?;
    assert!(ctx.worker_pool().is_some(), "pool created and retained");
    let embedding = output.embedding();
    println!(
        "embedded {} nodes into {} dimensions ({} per side)",
        embedding.num_nodes(),
        embedding.dimension(),
        embedding.half_dimension()
    );
    for stage in &output.metadata().stages {
        println!(
            "  stage {:<12} {:?} ({} thread{})",
            stage.name,
            stage.duration,
            stage.threads,
            if stage.threads == 1 { "" } else { "s" }
        );
    }
    let single_thread = embedder.embed(&graph, &EmbedContext::new().with_threads(1))?;
    assert_eq!(
        single_thread.embedding(),
        embedding,
        "thread budgets never change the result, only the wall clock"
    );

    // 4. Score node pairs.  The score X_u · Y_v approximates the reweighted
    //    personalized PageRank w⃗_u · π(u, v) · w⃖_v.
    use nrp::graph::generators::example::{V2, V4, V7, V9};
    println!(
        "score(v2, v4) = {:.4}  (three common neighbours)",
        embedding.score(V2, V4)
    );
    println!(
        "score(v9, v7) = {:.4}  (one common neighbour)",
        embedding.score(V9, V7)
    );
    assert!(
        embedding.score(V2, V4) > embedding.score(V9, V7),
        "after reweighting, the well-connected pair must score higher"
    );

    // 5. Scale up: the same declarative configs drive whole benchmark
    //    sweeps.  A `configs/*.json` (or `.toml`) file lists sweep-level
    //    fields (scale, datasets, seeds, repeats, thread budgets) plus a
    //    `methods` array of documents like the one above, and every
    //    `nrp-bench` binary accepts it via `--config`:
    //
    //        cargo run --release -p nrp-bench --bin fig7_running_time -- \
    //            --scale tiny --config configs/fig7.json
    //
    //    streams one CSV record of RunMetadata (per-stage wall clock
    //    included) per run.

    // 6. Persist the embedding for downstream use.
    let path = std::env::temp_dir().join("nrp_quickstart_embedding.json");
    embedding.save(&path)?;
    let reloaded = Embedding::load(&path)?;
    assert_eq!(reloaded.num_nodes(), embedding.num_nodes());
    println!(
        "embedding saved to {} and reloaded successfully",
        path.display()
    );
    Ok(())
}
