//! Node classification on a labelled synthetic graph: embeds the graph with
//! NRP, trains a one-vs-rest logistic-regression classifier on a fraction of
//! the nodes, and reports micro-/macro-F1 across training ratios (the
//! paper's Fig. 6 protocol).
//!
//! Run with: `cargo run --release --example node_classification`

use nrp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Undirected SBM with planted, slightly noisy, occasionally multi-label
    // communities — the structure of BlogCatalog-style datasets.
    let (graph, community) = generators::stochastic_block_model(
        &[150, 150, 150, 150],
        0.05,
        0.003,
        GraphKind::Undirected,
        13,
    )?;
    let labels = generators::planted_labels(&community, 4, 0.05, 0.2, 13);
    println!(
        "graph: {} nodes, {} edges, {} labels",
        graph.num_nodes(),
        graph.num_edges(),
        4
    );

    let nrp = Nrp::new(NrpParams::builder().dimension(32).seed(13).build()?);
    let embedding = nrp.embed_default(&graph)?;

    println!(
        "{:<12} {:>10} {:>10}",
        "train ratio", "micro-F1", "macro-F1"
    );
    for ratio in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let task = NodeClassification::new(ClassificationConfig {
            train_ratio: ratio,
            seed: 13,
            ..Default::default()
        });
        let report = task.evaluate_embedding(&embedding, &labels)?;
        println!(
            "{:<12} {:>10.4} {:>10.4}",
            ratio, report.micro_f1, report.macro_f1
        );
    }
    Ok(())
}
