//! Link prediction on a synthetic social network: compares NRP against the
//! un-reweighted ApproxPPR baseline and two competitor families, mirroring
//! the paper's Fig. 4 protocol (30 % of edges held out, AUC over held-out
//! edges vs. an equal number of non-edges).
//!
//! Run with: `cargo run --release --example link_prediction`

use nrp::prelude::*;
use nrp_baselines::{arope::AropeParams, deepwalk::DeepWalkParams};
use nrp_core::approx_ppr::ApproxPprParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A directed stochastic block model stands in for a follower network.
    let (graph, _) =
        generators::stochastic_block_model(&[200, 200, 200], 0.06, 0.004, GraphKind::Directed, 7)?;
    println!(
        "graph: {} nodes, {} arcs (directed)",
        graph.num_nodes(),
        graph.num_arcs()
    );

    let dimension = 32;
    let task = LinkPrediction::new(LinkPredictionConfig {
        remove_ratio: 0.3,
        seed: 7,
        ..Default::default()
    });

    let nrp = Nrp::new(NrpParams::builder().dimension(dimension).seed(7).build()?);
    let approx = ApproxPpr::new(ApproxPprParams {
        half_dimension: dimension / 2,
        seed: 7,
        ..Default::default()
    });
    let arope = Arope::new(AropeParams {
        dimension,
        seed: 7,
        ..Default::default()
    });
    let deepwalk = DeepWalk::new(DeepWalkParams {
        dimension,
        walks_per_node: 5,
        walk_length: 30,
        seed: 7,
        ..Default::default()
    });

    println!("{:<12} {:>8}", "method", "AUC");
    let nrp_auc = task.evaluate(&graph, &nrp)?.auc;
    println!("{:<12} {:>8.4}", "NRP", nrp_auc);
    let approx_auc = task.evaluate(&graph, &approx)?.auc;
    println!("{:<12} {:>8.4}", "ApproxPPR", approx_auc);
    println!(
        "{:<12} {:>8.4}",
        "AROPE",
        task.evaluate(&graph, &arope)?.auc
    );
    println!(
        "{:<12} {:>8.4}",
        "DeepWalk",
        task.evaluate(&graph, &deepwalk)?.auc
    );

    println!(
        "\nreweighting gain over ApproxPPR: {:+.4} AUC",
        nrp_auc - approx_auc
    );
    Ok(())
}
