//! Dynamic link prediction: embed an old snapshot of an evolving network and
//! predict which *new* edges appear in the next snapshot (the paper's Fig. 9
//! protocol on the VK / Digg datasets, here on an evolving SBM).
//!
//! Run with: `cargo run --release --example evolving_graph`

use nrp::prelude::*;
use nrp_graph::generators::evolving::{evolving_sbm, EvolvingSbmParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = evolving_sbm(&EvolvingSbmParams {
        block_sizes: vec![200, 200, 200],
        p_in_old: 0.05,
        p_out_old: 0.003,
        p_in_new: 0.02,
        p_out_new: 0.001,
        kind: GraphKind::Directed,
        seed: 21,
    })?;
    println!(
        "old snapshot: {} nodes, {} edges; new edges to predict: {}",
        instance.old_graph.num_nodes(),
        instance.old_graph.num_edges(),
        instance.new_edges.len()
    );

    let task = LinkPrediction::new(LinkPredictionConfig {
        seed: 21,
        ..Default::default()
    });

    let nrp = Nrp::new(NrpParams::builder().dimension(32).seed(21).build()?);
    let nrp_embedding = nrp.embed_default(&instance.old_graph)?;
    let nrp_auc = task
        .evaluate_new_edges(&instance.old_graph, &nrp_embedding, &instance.new_edges)?
        .auc;

    let app = App::new(nrp_baselines::app::AppParams {
        dimension: 32,
        seed: 21,
        ..Default::default()
    });
    let app_embedding = app.embed_default(&instance.old_graph)?;
    let app_auc = task
        .evaluate_new_edges(&instance.old_graph, &app_embedding, &instance.new_edges)?
        .auc;

    println!("{:<8} {:>8}", "method", "AUC");
    println!("{:<8} {:>8.4}", "NRP", nrp_auc);
    println!("{:<8} {:>8.4}", "APP", app_auc);
    Ok(())
}
