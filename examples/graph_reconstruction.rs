//! Graph reconstruction: how well do the embeddings recover the original
//! edges?  Mirrors the paper's Fig. 5 protocol (precision@K over candidate
//! node pairs), comparing NRP with and without the reweighting step.
//!
//! Run with: `cargo run --release --example graph_reconstruction`

use nrp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A heavy-tailed Barabási–Albert graph — the regime where degree
    // reweighting matters most, because hub nodes dominate the edge set.
    let graph = generators::barabasi_albert(800, 5, GraphKind::Undirected, 3)?;
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let with_reweighting = Nrp::new(NrpParams::builder().dimension(32).seed(3).build()?);
    let without_reweighting = Nrp::new(
        NrpParams::builder()
            .dimension(32)
            .reweight_epochs(0)
            .seed(3)
            .build()?,
    );

    let task = GraphReconstruction::new(ReconstructionConfig {
        sample_pairs: None,
        k_values: vec![10, 100, 1_000, graph.num_edges()],
        seed: 3,
    });

    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>10}",
        "method", "P@10", "P@100", "P@1000", "P@|E|"
    );
    for (name, embedder) in [
        ("NRP (reweighted)", &with_reweighting),
        ("ApproxPPR (l2 = 0)", &without_reweighting),
    ] {
        let outcome = task.evaluate(&graph, embedder)?;
        let p: Vec<f64> = outcome.precision.iter().map(|e| e.precision).collect();
        println!(
            "{:<22} {:>8.4} {:>8.4} {:>8.4} {:>10.4}",
            name, p[0], p[1], p[2], p[3]
        );
    }
    Ok(())
}
