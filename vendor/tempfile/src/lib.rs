//! Offline stand-in for the small part of `tempfile` this workspace's tests
//! use: [`tempdir`] returning a [`TempDir`] that removes itself on drop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{fs, io, process};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp dir, deleted recursively on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Creates a fresh uniquely named temporary directory.
pub fn tempdir() -> io::Result<TempDir> {
    let base = std::env::temp_dir();
    loop {
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!("nrp-tmp-{}-{unique}", process::id()));
        match fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            // Raced with a leftover directory of the same name: try the next
            // counter value.
            Err(err) if err.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(err) => return Err(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let path = {
            let dir = tempdir().unwrap();
            assert!(dir.path().is_dir());
            std::fs::write(dir.path().join("file.txt"), b"data").unwrap();
            dir.path().to_path_buf()
        };
        assert!(!path.exists(), "directory should be removed on drop");
    }

    #[test]
    fn directories_are_unique() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
