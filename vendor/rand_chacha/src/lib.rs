//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 stream-cipher RNG
//! implementing the vendored [`rand`] shim's [`RngCore`]/[`SeedableRng`]
//! traits.
//!
//! The keystream is the real ChaCha construction (Bernstein 2008) with 8
//! rounds, so the statistical quality matches upstream `ChaCha8Rng`.  Output
//! sequences are deterministic per seed but NOT bit-compatible with upstream
//! `rand_chacha` (seed expansion and word-serving order differ); nothing in
//! this workspace relies on cross-crate bit compatibility, only on
//! per-seed determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words `k0..k7` from the 32-byte seed.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current 16-word output block.
    buffer: [u32; 16],
    /// Next unread word of `buffer` (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(&state)) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniformity_is_plausible() {
        // Mean of [0,1) samples should be close to 0.5 and each sixteenth of
        // the interval should be hit: a coarse sanity check of the keystream.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        let mut buckets = [0usize; 16];
        for _ in 0..n {
            let x: f64 = rng.gen();
            sum += x;
            buckets[(x * 16.0) as usize] += 1;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for (i, &b) in buckets.iter().enumerate() {
            assert!(b > n / 32, "bucket {i} underfilled: {b}");
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            rng.next_u32();
        }
        let mut copy = rng.clone();
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), copy.next_u64());
        }
    }
}
