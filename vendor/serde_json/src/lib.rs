//! Offline stand-in for `serde_json`: a complete JSON parser and printer
//! over the vendored [`serde`] shim's [`Value`] model.
//!
//! Supports the full JSON grammar (nested arrays/objects, all escape
//! sequences including `\uXXXX` surrogate pairs, integer and float numbers)
//! so any value this workspace serializes round-trips exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::{Map, Number, Value};

use std::fmt;

/// Error produced by JSON parsing or value conversion.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error::new(err)
    }
}

/// Converts any serializable type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to a two-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into any deserializable type (including [`Value`]).
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    from_value(&value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(number) => write_number(out, *number),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, number: Number) {
    match number {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if v.is_finite() => {
            // Rust's shortest-round-trip Display; keep a trailing `.0` so the
            // token parses back as a float.
            let rendered = v.to_string();
            out.push_str(&rendered);
            if !rendered.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // JSON has no NaN/Infinity literal; mirror serde_json and emit null.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl fmt::Display) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{keyword}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let code = if (0xd800..0xdc00).contains(&first) {
                            // High surrogate: must be followed by \uDC00-\uDFFF.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let second = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&second) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                        } else if (0xdc00..0xe000).contains(&first) {
                            return Err(self.error("unexpected low surrogate"));
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.error("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(byte) => {
                    // Collect the full UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(byte).ok_or_else(|| self.error("invalid UTF-8"))?;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.error("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.error("invalid hex digit in unicode escape")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first_byte: u8) -> Option<usize> {
    match first_byte {
        0x00..=0x7f => Some(1),
        0xc2..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf4 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert_eq!(from_str::<Value>("true").unwrap(), Value::Bool(true));
        assert_eq!(
            from_str::<Value>("42").unwrap(),
            Value::Number(Number::PosInt(42))
        );
        assert_eq!(
            from_str::<Value>("-7").unwrap(),
            Value::Number(Number::NegInt(-7))
        );
        assert_eq!(
            from_str::<Value>("2.5e1").unwrap(),
            Value::Number(Number::Float(25.0))
        );
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn parses_nested_structures() {
        let value: Value = from_str(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        let object = value.as_object().unwrap();
        assert_eq!(object.len(), 2);
        let a = object.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert!(a[1].as_object().unwrap().get("b").unwrap() == &Value::Null);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ slash / unicode: \u{1f600}\u{7}".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let decoded: String = from_str(r#""😀""#).unwrap();
        assert_eq!(decoded, "\u{1f600}");
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
    }

    #[test]
    fn float_vectors_round_trip_exactly() {
        let values = vec![0.1, -1.5e-8, 3.0, f64::MAX, f64::MIN_POSITIVE, 0.0];
        let json = to_string(&values).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let mut map = Map::new();
        map.insert("k", Value::Array(vec![Value::Bool(true)]));
        let value = Value::Object(map);
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), value);
    }
}
