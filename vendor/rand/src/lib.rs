//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free implementation of the `rand` surface the
//! algorithms need: [`RngCore`], the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng`] (with `seed_from_u64`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).  The statistical quality is
//! provided by the generator behind it (see the sibling `rand_chacha` shim);
//! this crate only maps raw 64-bit outputs onto typed samples.
//!
//! The implementation is API-compatible with the call sites in this
//! repository, not with the full upstream crate; sequences are NOT
//! bit-compatible with upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// A source of uniformly random 64-bit values.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (taken from the high bits of
    /// [`RngCore::next_u64`] by default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be sampled uniformly from an RNG's raw output — the shim's
/// equivalent of sampling from upstream's `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer and float types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy {
    /// Draws uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high - low) as u64;
                // Multiply-shift (Lemire) mapping: negligible bias for the
                // span sizes used in this workspace, and branch-free.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low + hi as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8);

impl SampleUniform for i64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        let span = high.wrapping_sub(low) as u64;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        low.wrapping_add(hi as i64)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        low + f64::standard_sample(rng) * (high - low)
    }
}

/// Convenience methods on every [`RngCore`] implementation.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (e.g. `rng.gen::<f64>()` for `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable random-number generators.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 and constructs the
    /// generator — the ergonomic entry point used throughout the workspace.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used only to expand `u64` seeds into full key material.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The glob-importable prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    struct Counter(u64);

    impl super::RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..17usize);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Counter(5);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
