//! The self-describing value tree shared by all formats.

use std::fmt;

/// A JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any numeric value.
    Number(Number),
    /// A UTF-8 string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An insertion-ordered string-keyed map.
    Object(Map),
}

/// A numeric value, preserving integer exactness where possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point value.
    Float(f64),
}

impl Value {
    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an `f64`, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a `u64` if it is a non-negative integer (floats
    /// with zero fractional part are accepted).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            Value::Number(Number::NegInt(_)) => None,
            Value::Number(Number::Float(v)) => {
                if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 {
                    Some(*v as u64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::NegInt(v)) => Some(*v),
            Value::Number(Number::Float(v)) => {
                if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 {
                    Some(*v as i64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Returns the array payload, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the object payload, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// An insertion-ordered map with string keys.
///
/// Backed by a `Vec`: the objects serialized in this workspace have at most a
/// couple of dozen keys, where a linear scan beats hashing and preserves the
/// author's field order in the rendered output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key-value pair, replacing any previous value for the key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut map = Map::new();
        map.insert("b", Value::Null);
        map.insert("a", Value::Bool(true));
        map.insert("b", Value::Bool(false));
        let keys: Vec<&str> = map.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(map.get("b"), Some(&Value::Bool(false)));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn numeric_accessors_widen_and_narrow() {
        let pos = Value::Number(Number::PosInt(7));
        assert_eq!(pos.as_u64(), Some(7));
        assert_eq!(pos.as_i64(), Some(7));
        assert_eq!(pos.as_f64(), Some(7.0));
        let neg = Value::Number(Number::NegInt(-3));
        assert_eq!(neg.as_u64(), None);
        assert_eq!(neg.as_i64(), Some(-3));
        let float = Value::Number(Number::Float(2.5));
        assert_eq!(float.as_u64(), None);
        assert_eq!(float.as_f64(), Some(2.5));
    }
}
