//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal value-model serializer: types implement [`Serialize`] /
//! [`Deserialize`] by converting to and from the self-describing [`Value`]
//! tree, and format crates (see the sibling `serde_json` shim) render that
//! tree.  This trades upstream serde's zero-copy visitor architecture for a
//! few hundred dependency-free lines — ample for the configuration and
//! embedding payloads serialized here.
//!
//! Derive macros are replaced by the declarative [`impl_struct_serde!`]
//! macro for plain named-field structs; enums with richer shapes (such as the
//! internally tagged `MethodConfig`) implement the traits by hand or through
//! their own macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod value;

pub use value::{Map, Number, Value};

use std::fmt;

/// Error produced when a [`Value`] cannot be converted into the target type.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {}", value.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", value.kind())))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_owned())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

macro_rules! impl_serde_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }

        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, got {}",
                        value.kind()
                    ))
                })?;
                <$ty>::try_from(raw).map_err(|_| {
                    Error::custom(format!("{raw} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }

        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {}", value.kind()))
                })?;
                <$ty>::try_from(raw).map_err(|_| {
                    Error::custom(format!("{raw} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", value.kind())))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Implements [`Serialize`] and [`Deserialize`] for a plain named-field
/// struct — the shim's replacement for `#[derive(Serialize, Deserialize)]`.
///
/// Every field must itself implement the two traits; all fields are required
/// on deserialization and unknown keys are ignored.
///
/// ```
/// struct Point {
///     x: f64,
///     y: f64,
/// }
/// serde::impl_struct_serde!(Point { x, y });
/// ```
#[macro_export]
macro_rules! impl_struct_serde {
    ($name:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Serialize for $name {
            fn to_value(&self) -> $crate::Value {
                let mut object = $crate::Map::new();
                $(object.insert(stringify!($field), $crate::Serialize::to_value(&self.$field));)*
                $crate::Value::Object(object)
            }
        }

        impl $crate::Deserialize for $name {
            fn from_value(value: &$crate::Value) -> ::core::result::Result<Self, $crate::Error> {
                let object = value.as_object().ok_or_else(|| {
                    $crate::Error::custom(concat!("expected object for ", stringify!($name)))
                })?;
                Ok($name {
                    $($field: match object.get(stringify!($field)) {
                        Some(field_value) => {
                            $crate::Deserialize::from_value(field_value).map_err(|e| {
                                $crate::Error::custom(format!(
                                    "{}.{}: {}",
                                    stringify!($name),
                                    stringify!($field),
                                    e
                                ))
                            })?
                        }
                        None => {
                            return Err($crate::Error::custom(format!(
                                "missing field `{}` in {}",
                                stringify!($field),
                                stringify!($name)
                            )))
                        }
                    },)*
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Sample {
        name: String,
        count: usize,
        ratio: f64,
        flags: Vec<u32>,
    }

    impl_struct_serde!(Sample {
        name,
        count,
        ratio,
        flags
    });

    fn sample() -> Sample {
        Sample {
            name: "alpha".into(),
            count: 3,
            ratio: 0.25,
            flags: vec![1, 2, 3],
        }
    }

    #[test]
    fn struct_round_trip() {
        let value = sample().to_value();
        let back = Sample::from_value(&value).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn missing_field_is_an_error() {
        let mut object = Map::new();
        object.insert("name", Value::String("x".into()));
        let err = Sample::from_value(&Value::Object(object)).unwrap_err();
        assert!(err.to_string().contains("count"), "{err}");
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let value = Value::Array(vec![]);
        assert!(Sample::from_value(&value).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(u32::from_value(&Value::Number(Number::NegInt(-1))).is_err());
    }

    #[test]
    fn option_round_trips_through_null() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_value(&7u64.to_value()).unwrap(),
            Some(7)
        );
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn integral_floats_convert_to_integers() {
        assert_eq!(
            usize::from_value(&Value::Number(Number::Float(5.0))).unwrap(),
            5
        );
        assert!(usize::from_value(&Value::Number(Number::Float(5.5))).is_err());
    }
}
