//! Offline stand-in for the `criterion` benchmarking API used by this
//! workspace's `benches/`.
//!
//! Implements the subset the benches call — [`Criterion::benchmark_group`],
//! group configuration (`sample_size`, `warm_up_time`, `measurement_time`),
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`, [`Bencher::iter`]
//! and the `criterion_group!` / `criterion_main!` macros — with a
//! straightforward wall-clock measurement loop: one warm-up pass, then up to
//! `sample_size` timed samples bounded by `measurement_time`, reporting
//! mean / min / max per benchmark id on stdout.  No plots, no statistics
//! beyond that; the goal is that `cargo bench` runs and prints comparable
//! numbers without network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.benchmark_group(id.into());
        group.run("", &mut f);
        self
    }
}

/// A group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the warm-up budget (the shim always runs exactly one warm-up
    /// iteration; the duration is accepted for API compatibility).
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label();
        self.run(&label, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label();
        self.run(&label, &mut f);
        self
    }

    /// Finishes the group (a no-op in the shim; results print as they run).
    pub fn finish(self) {}

    fn run(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let full = if label.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, label)
        };
        bencher.report(&full);
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: Some(name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.name, &self.parameter) {
            (Some(n), Some(p)) => format!("{n}/{p}"),
            (Some(n), None) => n.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            name: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            name: Some(name),
            parameter: None,
        }
    }
}

/// Runs and times the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `f`: one warm-up call, then timed samples until the sample
    /// count or the measurement-time budget is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} no samples collected");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{label:<50} time: [{} {} {}]  ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &5u32, |b, &v| {
            b.iter(|| {
                calls += 1;
                v * 2
            });
        });
        group.finish();
        assert!(calls >= 2, "warm-up plus at least one sample, got {calls}");
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").label(), "p");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
