//! Node classification (paper Section 5.4).
//!
//! Protocol: embed the full graph, take the normalized forward‖backward
//! feature vector of every node, train a one-vs-rest logistic-regression
//! classifier on a random fraction of the labelled nodes, and report
//! micro-F1 and macro-F1 on the remaining nodes.  For each test node the
//! classifier predicts as many labels as the node truly has (the standard
//! multi-label evaluation protocol used by DeepWalk and its successors).

use nrp_core::{Embedder, Embedding};
use nrp_graph::Graph;

use crate::logreg::{LogRegConfig, OneVsRest};
use crate::metrics::{label_counts, macro_f1, micro_f1};
use crate::split::train_test_nodes;
use crate::{EvalError, Result};

/// Configuration of the node-classification experiment.
#[derive(Debug, Clone)]
pub struct ClassificationConfig {
    /// Fraction of labelled nodes used for training (paper sweeps 0.1–0.9).
    pub train_ratio: f64,
    /// Logistic-regression hyper-parameters.
    pub logreg: LogRegConfig,
    /// RNG seed for the node split.
    pub seed: u64,
}

impl Default for ClassificationConfig {
    fn default() -> Self {
        Self {
            train_ratio: 0.5,
            logreg: LogRegConfig::default(),
            seed: 0,
        }
    }
}

/// Micro-/macro-F1 of one classification run.
#[derive(Debug, Clone)]
pub struct ClassificationReport {
    /// Micro-averaged F1 over all test predictions.
    pub micro_f1: f64,
    /// Macro-averaged F1 over labels.
    pub macro_f1: f64,
    /// Number of training nodes.
    pub num_train: usize,
    /// Number of test nodes.
    pub num_test: usize,
}

/// The node-classification task runner.
#[derive(Debug, Clone, Default)]
pub struct NodeClassification {
    config: ClassificationConfig,
}

impl NodeClassification {
    /// Creates a runner with the given configuration.
    pub fn new(config: ClassificationConfig) -> Self {
        Self { config }
    }

    /// The configured parameters.
    pub fn config(&self) -> &ClassificationConfig {
        &self.config
    }

    /// Embeds `graph` and evaluates label prediction for `labels`
    /// (`labels[v]` is the, possibly empty, label set of node `v`).
    pub fn evaluate<E: Embedder + ?Sized>(
        &self,
        graph: &Graph,
        labels: &[Vec<u32>],
        embedder: &E,
    ) -> Result<ClassificationReport> {
        let embedding = embedder.embed_default(graph)?;
        self.evaluate_embedding(&embedding, labels)
    }

    /// Evaluates label prediction for an existing embedding.
    pub fn evaluate_embedding(
        &self,
        embedding: &Embedding,
        labels: &[Vec<u32>],
    ) -> Result<ClassificationReport> {
        if labels.len() != embedding.num_nodes() {
            return Err(EvalError::InvalidParameter(format!(
                "labels cover {} nodes but the embedding has {}",
                labels.len(),
                embedding.num_nodes()
            )));
        }
        // Only labelled nodes participate (the paper's datasets label every node,
        // but the SBM generator may leave nodes unlabelled when noise is high).
        let labelled: Vec<usize> = (0..labels.len())
            .filter(|&v| !labels[v].is_empty())
            .collect();
        if labelled.len() < 4 {
            return Err(EvalError::Degenerate(
                "need at least four labelled nodes".into(),
            ));
        }
        let num_labels = labels
            .iter()
            .flat_map(|ls| ls.iter())
            .max()
            .map(|&m| m as usize + 1)
            .ok_or_else(|| EvalError::Degenerate("no labels present".into()))?;

        let (train_idx, test_idx) =
            train_test_nodes(labelled.len(), self.config.train_ratio, self.config.seed)?;
        let train_nodes: Vec<usize> = train_idx.iter().map(|&i| labelled[i]).collect();
        let test_nodes: Vec<usize> = test_idx.iter().map(|&i| labelled[i]).collect();
        if train_nodes.is_empty() || test_nodes.is_empty() {
            return Err(EvalError::Degenerate(
                "train/test split produced an empty side".into(),
            ));
        }

        let train_features: Vec<Vec<f64>> = train_nodes
            .iter()
            .map(|&v| embedding.classification_features(v as u32))
            .collect();
        let train_labels: Vec<Vec<u32>> = train_nodes.iter().map(|&v| labels[v].clone()).collect();
        let model = OneVsRest::train(
            &train_features,
            &train_labels,
            num_labels,
            &self.config.logreg,
        )?;

        let mut truth = Vec::with_capacity(test_nodes.len());
        let mut predicted = Vec::with_capacity(test_nodes.len());
        for &v in &test_nodes {
            let features = embedding.classification_features(v as u32);
            let count = labels[v].len();
            predicted.push(model.predict_top(&features, count));
            truth.push(labels[v].clone());
        }
        let counts = label_counts(&truth, &predicted, num_labels)?;
        Ok(ClassificationReport {
            micro_f1: micro_f1(&counts),
            macro_f1: macro_f1(&counts),
            num_train: train_nodes.len(),
            num_test: test_nodes.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_core::{Nrp, NrpParams};
    use nrp_graph::generators::{planted_labels, stochastic_block_model};
    use nrp_graph::GraphKind;

    fn nrp(seed: u64) -> Nrp {
        Nrp::new(
            NrpParams::builder()
                .dimension(16)
                .reweight_epochs(6)
                .lambda(1.0)
                .seed(seed)
                .build()
                .unwrap(),
        )
    }

    fn labelled_sbm(seed: u64) -> (Graph, Vec<Vec<u32>>) {
        let (g, community) =
            stochastic_block_model(&[40, 40, 40], 0.15, 0.01, GraphKind::Undirected, seed).unwrap();
        let labels = planted_labels(&community, 3, 0.05, 0.0, seed);
        (g, labels)
    }

    #[test]
    fn recovers_planted_communities() {
        let (g, labels) = labelled_sbm(1);
        let report = NodeClassification::default()
            .evaluate(&g, &labels, &nrp(1))
            .unwrap();
        assert!(report.micro_f1 > 0.7, "micro-F1 {}", report.micro_f1);
        assert!(report.macro_f1 > 0.6, "macro-F1 {}", report.macro_f1);
        assert!(report.num_train > 0 && report.num_test > 0);
    }

    #[test]
    fn more_training_data_does_not_hurt_much() {
        let (g, labels) = labelled_sbm(2);
        let embedding = nrp(2).embed_default(&g).unwrap();
        let low = NodeClassification::new(ClassificationConfig {
            train_ratio: 0.2,
            seed: 3,
            ..Default::default()
        })
        .evaluate_embedding(&embedding, &labels)
        .unwrap();
        let high = NodeClassification::new(ClassificationConfig {
            train_ratio: 0.8,
            seed: 3,
            ..Default::default()
        })
        .evaluate_embedding(&embedding, &labels)
        .unwrap();
        assert!(high.micro_f1 >= low.micro_f1 - 0.1);
    }

    #[test]
    fn random_features_score_worse_than_embeddings() {
        let (g, labels) = labelled_sbm(3);
        let n = g.num_nodes();
        let random = nrp_core::Embedding::new(
            nrp_linalg::random::gaussian_matrix(n, 8, 31),
            nrp_linalg::random::gaussian_matrix(n, 8, 32),
            "random",
        )
        .unwrap();
        let task = NodeClassification::default();
        let trained = task
            .evaluate_embedding(&nrp(3).embed_default(&g).unwrap(), &labels)
            .unwrap();
        let baseline = task.evaluate_embedding(&random, &labels).unwrap();
        assert!(
            trained.micro_f1 > baseline.micro_f1,
            "trained {} should beat random {}",
            trained.micro_f1,
            baseline.micro_f1
        );
    }

    #[test]
    fn multilabel_nodes_are_handled() {
        let (g, community) =
            stochastic_block_model(&[30, 30], 0.2, 0.02, GraphKind::Undirected, 4).unwrap();
        let labels = planted_labels(&community, 4, 0.05, 0.4, 4);
        assert!(labels.iter().any(|ls| ls.len() > 1));
        let report = NodeClassification::default()
            .evaluate(&g, &labels, &nrp(4))
            .unwrap();
        assert!(report.micro_f1 > 0.3);
    }

    #[test]
    fn unlabelled_nodes_are_excluded() {
        let (g, community) =
            stochastic_block_model(&[30, 30], 0.2, 0.02, GraphKind::Undirected, 5).unwrap();
        let mut labels = planted_labels(&community, 2, 0.0, 0.0, 5);
        // Strip labels from a third of the nodes.
        for ls in labels.iter_mut().take(20) {
            ls.clear();
        }
        let report = NodeClassification::default()
            .evaluate(&g, &labels, &nrp(5))
            .unwrap();
        assert_eq!(report.num_train + report.num_test, 40);
    }

    #[test]
    fn mismatched_label_length_rejected() {
        let (g, labels) = labelled_sbm(6);
        let embedding = nrp(6).embed_default(&g).unwrap();
        let short = &labels[..10].to_vec();
        assert!(NodeClassification::default()
            .evaluate_embedding(&embedding, short)
            .is_err());
    }

    #[test]
    fn all_unlabelled_rejected() {
        let (g, _) =
            stochastic_block_model(&[10, 10], 0.3, 0.05, GraphKind::Undirected, 7).unwrap();
        let labels = vec![Vec::new(); g.num_nodes()];
        let embedding = nrp(7).embed_default(&g).unwrap();
        assert!(NodeClassification::default()
            .evaluate_embedding(&embedding, &labels)
            .is_err());
    }
}
