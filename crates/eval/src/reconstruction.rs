//! Graph reconstruction (paper Section 5.3).
//!
//! Protocol: embed the *full* graph, score a set `S` of candidate node pairs
//! (all pairs on the smaller graphs, a uniform 1 % sample on the larger
//! ones), and report `precision@K` — the fraction of the top-K scored pairs
//! that are actual edges — for a range of `K` values.

use nrp_core::{Embedder, Embedding};
use nrp_graph::Graph;

use crate::metrics::precision_at_k;
use crate::split::reconstruction_candidates;
use crate::{EvalError, Result};

/// Configuration of the reconstruction experiment.
#[derive(Debug, Clone)]
pub struct ReconstructionConfig {
    /// Candidate-pair sample size; `None` scores every pair (small graphs).
    pub sample_pairs: Option<usize>,
    /// The K values at which precision is reported (paper: 10 … 10⁶).
    pub k_values: Vec<usize>,
    /// RNG seed for candidate sampling.
    pub seed: u64,
}

impl Default for ReconstructionConfig {
    fn default() -> Self {
        Self {
            sample_pairs: None,
            k_values: vec![10, 100, 1_000, 10_000],
            seed: 0,
        }
    }
}

/// One `precision@K` measurement.
///
/// When a requested `K` exceeds the number of scored candidate pairs the
/// metric is necessarily computed over all candidates, i.e. at the smaller
/// *effective* K.  Reporting the requested K in that case silently inflates
/// small-graph numbers under the paper's `10…10⁶` labels, so both values are
/// kept and [`PrecisionAtK::clamped`] flags the affected rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionAtK {
    /// The K the caller asked for (one of `ReconstructionConfig::k_values`).
    pub requested_k: usize,
    /// The effective K the metric was computed at:
    /// `min(requested_k, num_candidates)`.
    pub k: usize,
    /// `precision@k` — the fraction of the top-`k` scored pairs that are
    /// actual edges.
    pub precision: f64,
}

impl PrecisionAtK {
    /// True if the requested K was clamped to the candidate count.
    pub fn clamped(&self) -> bool {
        self.k != self.requested_k
    }
}

/// Result of one reconstruction run: `precision@K` per requested `K`.
#[derive(Debug, Clone)]
pub struct ReconstructionOutcome {
    /// Per-K measurements in the order of the configured `k_values`, each
    /// carrying the requested and the effective K.
    pub precision: Vec<PrecisionAtK>,
    /// Number of candidate pairs scored.
    pub num_candidates: usize,
    /// Number of candidate pairs that are edges.
    pub num_edges_in_candidates: usize,
}

/// The graph-reconstruction task runner.
#[derive(Debug, Clone, Default)]
pub struct GraphReconstruction {
    config: ReconstructionConfig,
}

impl GraphReconstruction {
    /// Creates a runner with the given configuration.
    pub fn new(config: ReconstructionConfig) -> Self {
        Self { config }
    }

    /// The configured parameters.
    pub fn config(&self) -> &ReconstructionConfig {
        &self.config
    }

    /// Embeds `graph` with `embedder` and measures precision@K.
    pub fn evaluate<E: Embedder + ?Sized>(
        &self,
        graph: &Graph,
        embedder: &E,
    ) -> Result<ReconstructionOutcome> {
        let embedding = embedder.embed_default(graph)?;
        self.evaluate_embedding(graph, &embedding)
    }

    /// Measures precision@K for an existing embedding of `graph`.
    pub fn evaluate_embedding(
        &self,
        graph: &Graph,
        embedding: &Embedding,
    ) -> Result<ReconstructionOutcome> {
        if embedding.num_nodes() != graph.num_nodes() {
            return Err(EvalError::InvalidParameter(format!(
                "embedding covers {} nodes but the graph has {}",
                embedding.num_nodes(),
                graph.num_nodes()
            )));
        }
        if self.config.k_values.is_empty() {
            return Err(EvalError::InvalidParameter(
                "k_values must not be empty".into(),
            ));
        }
        let candidates =
            reconstruction_candidates(graph, self.config.sample_pairs, self.config.seed)?;
        let scored: Vec<(f64, bool)> = candidates
            .iter()
            .map(|&(u, v, is_edge)| {
                let score = if graph.kind().is_directed() {
                    embedding.score(u, v)
                } else {
                    embedding.symmetric_score(u, v)
                };
                (score, is_edge)
            })
            .collect();
        let num_edges_in_candidates = scored.iter().filter(|(_, e)| *e).count();
        if num_edges_in_candidates == 0 {
            return Err(EvalError::Degenerate(
                "no edges among the candidate pairs".into(),
            ));
        }
        let mut precision = Vec::with_capacity(self.config.k_values.len());
        for &k in &self.config.k_values {
            precision.push(PrecisionAtK {
                requested_k: k,
                k: k.min(scored.len()),
                precision: precision_at_k(&scored, k)?,
            });
        }
        Ok(ReconstructionOutcome {
            precision,
            num_candidates: scored.len(),
            num_edges_in_candidates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_core::{Nrp, NrpParams};
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;
    use nrp_linalg::DenseMatrix;

    fn nrp(seed: u64) -> Nrp {
        Nrp::new(
            NrpParams::builder()
                .dimension(16)
                .reweight_epochs(6)
                .lambda(1.0)
                .seed(seed)
                .build()
                .unwrap(),
        )
    }

    fn config(ks: &[usize]) -> ReconstructionConfig {
        ReconstructionConfig {
            sample_pairs: None,
            k_values: ks.to_vec(),
            seed: 0,
        }
    }

    #[test]
    fn high_precision_at_small_k_on_sbm() {
        let (g, _) =
            stochastic_block_model(&[40, 40], 0.2, 0.01, GraphKind::Undirected, 1).unwrap();
        let outcome = GraphReconstruction::new(config(&[10, 100]))
            .evaluate(&g, &nrp(1))
            .unwrap();
        let p10 = outcome.precision[0].precision;
        assert!(p10 >= 0.8, "precision@10 = {p10}");
        assert!(outcome.num_edges_in_candidates > 0);
    }

    #[test]
    fn precision_declines_with_k_beyond_edge_count() {
        let (g, _) =
            stochastic_block_model(&[30, 30], 0.15, 0.01, GraphKind::Undirected, 2).unwrap();
        let m = g.num_edges();
        let outcome = GraphReconstruction::new(config(&[10, m, 5 * m]))
            .evaluate(&g, &nrp(2))
            .unwrap();
        let p_small = outcome.precision[0].precision;
        let p_large = outcome.precision[2].precision;
        assert!(
            p_small >= p_large,
            "precision should not increase with K: {p_small} vs {p_large}"
        );
        // Beyond K = 5m the precision cannot exceed m / (5m) = 0.2 plus slack.
        assert!(p_large <= 0.25);
    }

    #[test]
    fn clamped_k_is_reported_as_the_effective_k() {
        // Regression: a K far beyond the candidate count used to be echoed
        // back verbatim, silently attributing an all-candidates precision to
        // the requested label.  6 nodes, all pairs = 15 candidates.
        let (g, _) = stochastic_block_model(&[3, 3], 0.9, 0.5, GraphKind::Undirected, 8).unwrap();
        let outcome = GraphReconstruction::new(config(&[5, 10_000]))
            .evaluate(&g, &nrp(8))
            .unwrap();
        let honest = outcome.precision[0];
        assert_eq!(honest.requested_k, 5);
        assert_eq!(honest.k, 5);
        assert!(!honest.clamped());
        let clamped = outcome.precision[1];
        assert_eq!(clamped.requested_k, 10_000);
        assert_eq!(clamped.k, outcome.num_candidates);
        assert!(clamped.k < clamped.requested_k);
        assert!(clamped.clamped());
        // The clamped precision is computed over every candidate: it equals
        // the base rate of edges among the candidates.
        let base_rate = outcome.num_edges_in_candidates as f64 / outcome.num_candidates as f64;
        assert!((clamped.precision - base_rate).abs() < 1e-12);
    }

    #[test]
    fn works_on_directed_graphs_with_directed_scores() {
        let (g, _) = stochastic_block_model(&[30, 30], 0.15, 0.01, GraphKind::Directed, 3).unwrap();
        let outcome = GraphReconstruction::new(config(&[10, 100]))
            .evaluate(&g, &nrp(3))
            .unwrap();
        assert!(
            outcome.precision[0].precision >= 0.6,
            "precision@10 = {}",
            outcome.precision[0].precision
        );
    }

    #[test]
    fn sampled_candidates_mode() {
        let (g, _) =
            stochastic_block_model(&[50, 50], 0.1, 0.01, GraphKind::Undirected, 4).unwrap();
        let config = ReconstructionConfig {
            sample_pairs: Some(1000),
            k_values: vec![10, 50],
            seed: 4,
        };
        let outcome = GraphReconstruction::new(config)
            .evaluate(&g, &nrp(4))
            .unwrap();
        assert_eq!(outcome.num_candidates, 1000);
        assert!(outcome.precision[0].precision > 0.0);
    }

    #[test]
    fn random_embedding_has_low_precision() {
        let (g, _) =
            stochastic_block_model(&[30, 30], 0.1, 0.01, GraphKind::Undirected, 5).unwrap();
        let n = g.num_nodes();
        let random = nrp_core::Embedding::new(
            nrp_linalg::random::gaussian_matrix(n, 8, 7),
            nrp_linalg::random::gaussian_matrix(n, 8, 8),
            "random",
        )
        .unwrap();
        let trained = nrp(5).embed_default(&g).unwrap();
        let task = GraphReconstruction::new(config(&[50]));
        let p_random = task.evaluate_embedding(&g, &random).unwrap().precision[0].precision;
        let p_trained = task.evaluate_embedding(&g, &trained).unwrap().precision[0].precision;
        assert!(
            p_trained > p_random,
            "trained {p_trained} should beat random {p_random}"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let (g, _) =
            stochastic_block_model(&[10, 10], 0.3, 0.05, GraphKind::Undirected, 6).unwrap();
        let bad = ReconstructionConfig {
            k_values: vec![],
            ..Default::default()
        };
        let embedding = nrp(6).embed_default(&g).unwrap();
        assert!(GraphReconstruction::new(bad)
            .evaluate_embedding(&g, &embedding)
            .is_err());
        let tiny =
            nrp_core::Embedding::new(DenseMatrix::zeros(2, 2), DenseMatrix::zeros(2, 2), "tiny")
                .unwrap();
        assert!(GraphReconstruction::default()
            .evaluate_embedding(&g, &tiny)
            .is_err());
    }
}
