//! # nrp-eval
//!
//! The three evaluation tasks of the paper's Section 5, re-implemented so
//! that every embedding method in the workspace is scored through exactly the
//! same pipeline:
//!
//! * [`link_prediction`] — remove 30 % of the edges, embed the residual
//!   graph, and rank held-out edges against an equal number of non-edges by
//!   AUC (Fig. 4), plus the dynamic variant that predicts genuinely *new*
//!   edges of a later snapshot (Fig. 9).
//! * [`reconstruction`] — score candidate node pairs of the *original* graph
//!   and measure `precision@K` of the top-K pairs (Fig. 5).
//! * [`classification`] — one-vs-rest logistic regression on the normalized
//!   forward‖backward features with micro-/macro-F1 (Fig. 6).
//!
//! Supporting modules: [`metrics`] (AUC, precision, F1), [`split`]
//! (edge-removal splits, negative sampling, candidate-pair sampling) and
//! [`logreg`] (the from-scratch logistic-regression classifier).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classification;
pub mod error;
pub mod link_prediction;
pub mod logreg;
pub mod metrics;
pub mod reconstruction;
pub mod split;

pub use classification::{ClassificationConfig, ClassificationReport, NodeClassification};
pub use error::EvalError;
pub use link_prediction::{LinkPrediction, LinkPredictionConfig, ScoringStrategy};
pub use reconstruction::{GraphReconstruction, PrecisionAtK, ReconstructionConfig};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, EvalError>;
