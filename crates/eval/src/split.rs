//! Train/test splitting and negative sampling for the evaluation tasks.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nrp_graph::{Graph, NodeId};

use crate::{EvalError, Result};

/// A link-prediction split: the residual training graph plus positive and
/// negative test pairs.
#[derive(Debug, Clone)]
pub struct LinkSplit {
    /// The input graph with the test edges removed.
    pub train_graph: Graph,
    /// Held-out edges (the positives).
    pub positive_pairs: Vec<(NodeId, NodeId)>,
    /// Sampled non-edges (the negatives), same cardinality as the positives.
    pub negative_pairs: Vec<(NodeId, NodeId)>,
}

/// Removes `remove_ratio` of the edges (the paper uses 30 %) and samples an
/// equal number of node pairs not connected in the *original* graph.
///
/// On directed graphs pairs are ordered; on undirected graphs the reverse
/// arc is removed together with the sampled edge.
pub fn link_prediction_split(graph: &Graph, remove_ratio: f64, seed: u64) -> Result<LinkSplit> {
    if !(0.0 < remove_ratio && remove_ratio < 1.0) {
        return Err(EvalError::InvalidParameter(format!(
            "remove_ratio must be in (0,1), got {remove_ratio}"
        )));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = graph.edges();
    if edges.is_empty() {
        return Err(EvalError::Degenerate("graph has no edges to split".into()));
    }
    edges.shuffle(&mut rng);
    let num_removed = ((edges.len() as f64) * remove_ratio).round() as usize;
    let num_removed = num_removed.clamp(1, edges.len().saturating_sub(1).max(1));
    let positive_pairs: Vec<(NodeId, NodeId)> = edges[..num_removed].to_vec();
    let train_graph = graph.remove_edges(&positive_pairs)?;
    let negative_pairs = sample_non_edges(graph, positive_pairs.len(), &mut rng)?;
    Ok(LinkSplit {
        train_graph,
        positive_pairs,
        negative_pairs,
    })
}

/// Samples `count` node pairs that are not connected by an arc in `graph`
/// (ordered pairs for directed graphs, unordered for undirected).
pub fn sample_non_edges(
    graph: &Graph,
    count: usize,
    rng: &mut ChaCha8Rng,
) -> Result<Vec<(NodeId, NodeId)>> {
    let n = graph.num_nodes();
    if n < 2 {
        return Err(EvalError::Degenerate(
            "need at least two nodes to sample non-edges".into(),
        ));
    }
    let directed = graph.kind().is_directed();
    let max_pairs = if directed {
        n * (n - 1)
    } else {
        n * (n - 1) / 2
    };
    if count + graph.num_edges() > max_pairs {
        return Err(EvalError::Degenerate(format!(
            "cannot sample {count} non-edges: graph too dense ({} edges, {max_pairs} pairs)",
            graph.num_edges()
        )));
    }
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut result = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(200) + 1000;
    while result.len() < count {
        attempts += 1;
        if attempts > max_attempts {
            return Err(EvalError::Degenerate(
                "negative sampling failed to find enough non-edges".into(),
            ));
        }
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        let (u, v) = if directed {
            (u, v)
        } else {
            (u.min(v), u.max(v))
        };
        if graph.has_arc(u, v) || (!directed && graph.has_arc(v, u)) {
            continue;
        }
        if seen.insert((u, v)) {
            result.push((u, v));
        }
    }
    Ok(result)
}

/// Candidate node pairs for graph reconstruction: either all pairs (small
/// graphs) or a uniform sample of `sample_size` pairs, each labelled by
/// whether it is an edge of `graph` (the paper samples 1 % of all pairs on
/// the larger datasets).
pub fn reconstruction_candidates(
    graph: &Graph,
    sample_size: Option<usize>,
    seed: u64,
) -> Result<Vec<(NodeId, NodeId, bool)>> {
    let n = graph.num_nodes();
    if n < 2 {
        return Err(EvalError::Degenerate("need at least two nodes".into()));
    }
    let directed = graph.kind().is_directed();
    match sample_size {
        None => {
            let mut pairs = Vec::new();
            for u in 0..n as NodeId {
                let start = if directed { 0 } else { u + 1 };
                for v in start..n as NodeId {
                    if u == v {
                        continue;
                    }
                    pairs.push((u, v, graph.has_arc(u, v)));
                }
            }
            Ok(pairs)
        }
        Some(size) => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut pairs = Vec::with_capacity(size);
            let mut seen = std::collections::HashSet::with_capacity(size);
            let mut attempts = 0usize;
            let max_attempts = size.saturating_mul(50) + 1000;
            while pairs.len() < size && attempts < max_attempts {
                attempts += 1;
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                if u == v {
                    continue;
                }
                let (u, v) = if directed {
                    (u, v)
                } else {
                    (u.min(v), u.max(v))
                };
                if seen.insert((u, v)) {
                    pairs.push((u, v, graph.has_arc(u, v)));
                }
            }
            if pairs.is_empty() {
                return Err(EvalError::Degenerate(
                    "failed to sample candidate pairs".into(),
                ));
            }
            Ok(pairs)
        }
    }
}

/// Splits node indices into a train and test set by ratio (classification).
pub fn train_test_nodes(
    num_nodes: usize,
    train_ratio: f64,
    seed: u64,
) -> Result<(Vec<usize>, Vec<usize>)> {
    if !(0.0 < train_ratio && train_ratio < 1.0) {
        return Err(EvalError::InvalidParameter(format!(
            "train_ratio must be in (0,1), got {train_ratio}"
        )));
    }
    if num_nodes < 2 {
        return Err(EvalError::Degenerate(
            "need at least two nodes to split".into(),
        ));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut nodes: Vec<usize> = (0..num_nodes).collect();
    nodes.shuffle(&mut rng);
    let cut = ((num_nodes as f64) * train_ratio).round() as usize;
    let cut = cut.clamp(1, num_nodes - 1);
    Ok((nodes[..cut].to_vec(), nodes[cut..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    fn sbm(kind: GraphKind) -> Graph {
        stochastic_block_model(&[40, 40], 0.15, 0.02, kind, 7)
            .unwrap()
            .0
    }

    #[test]
    fn split_removes_requested_fraction() {
        let g = sbm(GraphKind::Undirected);
        let split = link_prediction_split(&g, 0.3, 1).unwrap();
        let expected = (g.num_edges() as f64 * 0.3).round() as usize;
        assert_eq!(split.positive_pairs.len(), expected);
        assert_eq!(split.negative_pairs.len(), expected);
        assert_eq!(split.train_graph.num_edges(), g.num_edges() - expected);
    }

    #[test]
    fn removed_edges_absent_from_train_graph() {
        let g = sbm(GraphKind::Undirected);
        let split = link_prediction_split(&g, 0.3, 2).unwrap();
        for &(u, v) in &split.positive_pairs {
            assert!(!split.train_graph.has_arc(u, v));
            assert!(!split.train_graph.has_arc(v, u));
            assert!(g.has_arc(u, v), "positive pair must be a real edge");
        }
    }

    #[test]
    fn negatives_are_non_edges_of_original_graph() {
        let g = sbm(GraphKind::Directed);
        let split = link_prediction_split(&g, 0.3, 3).unwrap();
        for &(u, v) in &split.negative_pairs {
            assert!(!g.has_arc(u, v), "negative ({u},{v}) is an edge");
            assert_ne!(u, v);
        }
    }

    #[test]
    fn split_is_deterministic() {
        let g = sbm(GraphKind::Undirected);
        let a = link_prediction_split(&g, 0.3, 9).unwrap();
        let b = link_prediction_split(&g, 0.3, 9).unwrap();
        assert_eq!(a.positive_pairs, b.positive_pairs);
        assert_eq!(a.negative_pairs, b.negative_pairs);
    }

    #[test]
    fn invalid_ratio_rejected() {
        let g = sbm(GraphKind::Undirected);
        assert!(link_prediction_split(&g, 0.0, 1).is_err());
        assert!(link_prediction_split(&g, 1.0, 1).is_err());
    }

    #[test]
    fn reconstruction_all_pairs_covers_everything() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)], GraphKind::Undirected).unwrap();
        let pairs = reconstruction_candidates(&g, None, 0).unwrap();
        assert_eq!(pairs.len(), 6); // C(4,2)
        let edges = pairs.iter().filter(|(_, _, is_edge)| *is_edge).count();
        assert_eq!(edges, 2);
    }

    #[test]
    fn reconstruction_directed_all_pairs() {
        let g = Graph::from_edges(3, &[(0, 1)], GraphKind::Directed).unwrap();
        let pairs = reconstruction_candidates(&g, None, 0).unwrap();
        assert_eq!(pairs.len(), 6); // ordered pairs
        assert!(pairs.contains(&(0, 1, true)));
        assert!(pairs.contains(&(1, 0, false)));
    }

    #[test]
    fn reconstruction_sampling_respects_size() {
        let g = sbm(GraphKind::Undirected);
        let pairs = reconstruction_candidates(&g, Some(500), 11).unwrap();
        assert_eq!(pairs.len(), 500);
        // Pairs must be unique.
        let set: std::collections::HashSet<_> = pairs.iter().map(|&(u, v, _)| (u, v)).collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn train_test_nodes_partition() {
        let (train, test) = train_test_nodes(100, 0.7, 5).unwrap();
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn train_test_rejects_bad_ratio() {
        assert!(train_test_nodes(10, 0.0, 1).is_err());
        assert!(train_test_nodes(10, 1.0, 1).is_err());
        assert!(train_test_nodes(1, 0.5, 1).is_err());
    }

    #[test]
    fn dense_graph_negative_sampling_fails_gracefully() {
        let g = nrp_graph::generators::simple::complete(5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(sample_non_edges(&g, 10, &mut rng).is_err());
    }
}
