//! From-scratch logistic regression.
//!
//! Two users inside this crate:
//!
//! * the **edge-features** scoring strategy for link prediction (the paper's
//!   fallback for methods with a single embedding per node on directed
//!   graphs): a binary classifier over concatenated endpoint embeddings;
//! * the **one-vs-rest** multi-label classifier used by the node
//!   classification task (Section 5.4).
//!
//! Training is plain mini-batch-free gradient descent with L2 regularization
//! — the feature dimensionality (`2k ≤ 512`) and training-set sizes here are
//! small enough that full-batch updates converge in a few hundred epochs.

use crate::{EvalError, Result};

/// A binary logistic-regression classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct LogRegConfig {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.5,
            epochs: 300,
            l2: 1e-4,
        }
    }
}

impl LogisticRegression {
    /// Trains a classifier on `features` (one row per example) and binary
    /// `labels`.
    pub fn train(features: &[Vec<f64>], labels: &[bool], config: &LogRegConfig) -> Result<Self> {
        if features.is_empty() || features.len() != labels.len() {
            return Err(EvalError::InvalidParameter(format!(
                "features ({}) and labels ({}) must be non-empty and aligned",
                features.len(),
                labels.len()
            )));
        }
        let dim = features[0].len();
        if dim == 0 || features.iter().any(|f| f.len() != dim) {
            return Err(EvalError::InvalidParameter(
                "inconsistent feature dimensions".into(),
            ));
        }
        let n = features.len() as f64;
        let mut weights = vec![0.0_f64; dim];
        let mut bias = 0.0_f64;
        for _ in 0..config.epochs {
            let mut grad_w = vec![0.0_f64; dim];
            let mut grad_b = 0.0_f64;
            for (x, &y) in features.iter().zip(labels) {
                let target = if y { 1.0 } else { 0.0 };
                let z: f64 = bias + x.iter().zip(&weights).map(|(xi, wi)| xi * wi).sum::<f64>();
                let err = sigmoid(z) - target;
                for (g, xi) in grad_w.iter_mut().zip(x) {
                    *g += err * xi;
                }
                grad_b += err;
            }
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= config.learning_rate * (g / n + config.l2 * *w);
            }
            bias -= config.learning_rate * grad_b / n;
        }
        Ok(Self { weights, bias })
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        let z: f64 = self.bias
            + features
                .iter()
                .zip(&self.weights)
                .map(|(x, w)| x * w)
                .sum::<f64>();
        sigmoid(z)
    }

    /// Decision score (log-odds), monotone in the probability.
    pub fn decision(&self, features: &[f64]) -> f64 {
        self.bias
            + features
                .iter()
                .zip(&self.weights)
                .map(|(x, w)| x * w)
                .sum::<f64>()
    }
}

/// One-vs-rest multi-label classifier.
#[derive(Debug, Clone)]
pub struct OneVsRest {
    classifiers: Vec<LogisticRegression>,
}

impl OneVsRest {
    /// Trains one binary classifier per label in `0..num_labels`.
    pub fn train(
        features: &[Vec<f64>],
        labels: &[Vec<u32>],
        num_labels: usize,
        config: &LogRegConfig,
    ) -> Result<Self> {
        if num_labels == 0 {
            return Err(EvalError::InvalidParameter(
                "num_labels must be positive".into(),
            ));
        }
        if features.len() != labels.len() {
            return Err(EvalError::InvalidParameter(
                "features/labels length mismatch".into(),
            ));
        }
        let mut classifiers = Vec::with_capacity(num_labels);
        for label in 0..num_labels as u32 {
            let binary: Vec<bool> = labels.iter().map(|ls| ls.contains(&label)).collect();
            classifiers.push(LogisticRegression::train(features, &binary, config)?);
        }
        Ok(Self { classifiers })
    }

    /// Per-label decision scores for one example.
    pub fn scores(&self, features: &[f64]) -> Vec<f64> {
        self.classifiers
            .iter()
            .map(|c| c.decision(features))
            .collect()
    }

    /// Predicts the `count` highest-scoring labels (the standard multi-label
    /// evaluation protocol: the number of true labels is assumed known).
    pub fn predict_top(&self, features: &[f64], count: usize) -> Vec<u32> {
        let scores = self.scores(features);
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .expect("scores are finite")
        });
        order.into_iter().take(count).map(|l| l as u32).collect()
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.classifiers.len()
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        // Positives cluster around (2, 2), negatives around (-2, -2).
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let jitter = (i % 7) as f64 * 0.05;
            features.push(vec![2.0 + jitter, 2.0 - jitter]);
            labels.push(true);
            features.push(vec![-2.0 - jitter, -2.0 + jitter]);
            labels.push(false);
        }
        (features, labels)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let (features, labels) = separable_data();
        let model =
            LogisticRegression::train(&features, &labels, &LogRegConfig::default()).unwrap();
        let correct = features
            .iter()
            .zip(&labels)
            .filter(|(x, &y)| (model.predict_proba(x) > 0.5) == y)
            .count();
        assert_eq!(correct, features.len());
    }

    #[test]
    fn probabilities_are_calibrated_directionally() {
        let (features, labels) = separable_data();
        let model =
            LogisticRegression::train(&features, &labels, &LogRegConfig::default()).unwrap();
        assert!(model.predict_proba(&[3.0, 3.0]) > 0.9);
        assert!(model.predict_proba(&[-3.0, -3.0]) < 0.1);
        assert!(model.decision(&[3.0, 3.0]) > model.decision(&[-3.0, -3.0]));
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(LogisticRegression::train(&[], &[], &LogRegConfig::default()).is_err());
        assert!(
            LogisticRegression::train(&[vec![1.0]], &[true, false], &LogRegConfig::default())
                .is_err()
        );
        assert!(LogisticRegression::train(
            &[vec![1.0], vec![1.0, 2.0]],
            &[true, false],
            &LogRegConfig::default()
        )
        .is_err());
    }

    #[test]
    fn one_vs_rest_recovers_cluster_labels() {
        // Three clusters on a line -> three labels.
        let mut features = Vec::new();
        let mut labels: Vec<Vec<u32>> = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f64 * 0.1;
            features.push(vec![-4.0 + jitter]);
            labels.push(vec![0]);
            features.push(vec![0.0 + jitter]);
            labels.push(vec![1]);
            features.push(vec![4.0 + jitter]);
            labels.push(vec![2]);
        }
        let model = OneVsRest::train(&features, &labels, 3, &LogRegConfig::default()).unwrap();
        assert_eq!(model.num_labels(), 3);
        assert_eq!(model.predict_top(&[-4.0], 1), vec![0]);
        assert_eq!(model.predict_top(&[0.1], 1), vec![1]);
        assert_eq!(model.predict_top(&[4.2], 1), vec![2]);
    }

    #[test]
    fn predict_top_returns_requested_count() {
        let features = vec![vec![1.0], vec![-1.0]];
        let labels = vec![vec![0], vec![1]];
        let model = OneVsRest::train(&features, &labels, 2, &LogRegConfig::default()).unwrap();
        assert_eq!(model.predict_top(&[1.0], 2).len(), 2);
        assert_eq!(model.predict_top(&[1.0], 0).len(), 0);
    }

    #[test]
    fn one_vs_rest_rejects_bad_inputs() {
        assert!(OneVsRest::train(&[vec![1.0]], &[vec![0]], 0, &LogRegConfig::default()).is_err());
        assert!(OneVsRest::train(&[vec![1.0]], &[], 2, &LogRegConfig::default()).is_err());
    }
}
