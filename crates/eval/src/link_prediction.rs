//! Link prediction (paper Section 5.2 and Appendix C).
//!
//! Protocol: remove 30 % of the edges, construct embeddings on the residual
//! graph, then rank the removed edges against an equal number of non-edges by
//! a per-pair score and report AUC.  Two scoring strategies are supported,
//! matching the paper's setup:
//!
//! * [`ScoringStrategy::InnerProduct`] — `X_u · Y_v` (used by NRP, ApproxPPR,
//!   STRAP, APP and by symmetric methods on undirected graphs);
//! * [`ScoringStrategy::EdgeFeatures`] — train a logistic-regression
//!   classifier on concatenated endpoint embeddings over a *separate* sample
//!   of training pairs (the fallback for single-vector methods on directed
//!   graphs, where the inner product cannot distinguish `(u, v)` from
//!   `(v, u)`).

use nrp_core::{Embedder, Embedding};
use nrp_graph::{Graph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::logreg::{LogRegConfig, LogisticRegression};
use crate::metrics::auc;
use crate::split::{link_prediction_split, sample_non_edges};
use crate::{EvalError, Result};

/// How node-pair scores are derived from embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoringStrategy {
    /// Directed inner product `X_u · Y_v`.
    InnerProduct,
    /// Logistic regression over concatenated endpoint embeddings, trained on
    /// edges of the training graph vs. sampled non-edges.
    EdgeFeatures,
}

/// Configuration of the link-prediction experiment.
#[derive(Debug, Clone)]
pub struct LinkPredictionConfig {
    /// Fraction of edges to hold out (paper: 0.3).
    pub remove_ratio: f64,
    /// Scoring strategy.
    pub scoring: ScoringStrategy,
    /// RNG seed for the split and negative sampling.
    pub seed: u64,
}

impl Default for LinkPredictionConfig {
    fn default() -> Self {
        Self {
            remove_ratio: 0.3,
            scoring: ScoringStrategy::InnerProduct,
            seed: 0,
        }
    }
}

/// Result of one link-prediction run.
#[derive(Debug, Clone)]
pub struct LinkPredictionOutcome {
    /// Area under the ROC curve on the held-out pairs.
    pub auc: f64,
    /// Number of positive test pairs.
    pub num_positives: usize,
    /// Number of negative test pairs.
    pub num_negatives: usize,
}

/// The link-prediction task runner.
#[derive(Debug, Clone, Default)]
pub struct LinkPrediction {
    config: LinkPredictionConfig,
}

impl LinkPrediction {
    /// Creates a runner with the given configuration.
    pub fn new(config: LinkPredictionConfig) -> Self {
        Self { config }
    }

    /// The configured parameters.
    pub fn config(&self) -> &LinkPredictionConfig {
        &self.config
    }

    /// Runs the full protocol: split, embed the training graph with
    /// `embedder`, and score the held-out pairs.
    pub fn evaluate<E: Embedder + ?Sized>(
        &self,
        graph: &Graph,
        embedder: &E,
    ) -> Result<LinkPredictionOutcome> {
        let split = link_prediction_split(graph, self.config.remove_ratio, self.config.seed)?;
        let embedding = embedder.embed_default(&split.train_graph)?;
        self.evaluate_pairs(
            &split.train_graph,
            &embedding,
            &split.positive_pairs,
            &split.negative_pairs,
        )
    }

    /// Dynamic-graph variant (paper Fig. 9): the embedding is built on the
    /// old snapshot and evaluated on genuinely new edges; negatives are
    /// sampled among pairs not connected in either snapshot.
    pub fn evaluate_new_edges(
        &self,
        old_graph: &Graph,
        embedding: &Embedding,
        new_edges: &[(NodeId, NodeId)],
    ) -> Result<LinkPredictionOutcome> {
        if new_edges.is_empty() {
            return Err(EvalError::Degenerate("no new edges to predict".into()));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0xdead_beef);
        let negatives = sample_non_edges(old_graph, new_edges.len(), &mut rng)?;
        self.evaluate_pairs(old_graph, embedding, new_edges, &negatives)
    }

    /// Scores explicit positive/negative pairs with the configured strategy.
    pub fn evaluate_pairs(
        &self,
        train_graph: &Graph,
        embedding: &Embedding,
        positives: &[(NodeId, NodeId)],
        negatives: &[(NodeId, NodeId)],
    ) -> Result<LinkPredictionOutcome> {
        if embedding.num_nodes() != train_graph.num_nodes() {
            return Err(EvalError::InvalidParameter(format!(
                "embedding covers {} nodes but the graph has {}",
                embedding.num_nodes(),
                train_graph.num_nodes()
            )));
        }
        let scorer = self.build_scorer(train_graph, embedding)?;
        let positive_scores: Vec<f64> =
            positives.iter().map(|&(u, v)| scorer.score(u, v)).collect();
        let negative_scores: Vec<f64> =
            negatives.iter().map(|&(u, v)| scorer.score(u, v)).collect();
        let auc = auc(&positive_scores, &negative_scores)?;
        Ok(LinkPredictionOutcome {
            auc,
            num_positives: positives.len(),
            num_negatives: negatives.len(),
        })
    }

    fn build_scorer<'a>(
        &self,
        train_graph: &Graph,
        embedding: &'a Embedding,
    ) -> Result<PairScorer<'a>> {
        match self.config.scoring {
            ScoringStrategy::InnerProduct => Ok(PairScorer::InnerProduct(embedding)),
            ScoringStrategy::EdgeFeatures => {
                // Training pairs: edges of the training graph as positives and
                // an equal number of non-edges as negatives (paper: E'_train).
                let train_edges = train_graph.edges();
                if train_edges.is_empty() {
                    return Err(EvalError::Degenerate("training graph has no edges".into()));
                }
                let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0xed6e);
                let train_negatives = sample_non_edges(train_graph, train_edges.len(), &mut rng)?;
                let mut features = Vec::with_capacity(train_edges.len() * 2);
                let mut labels = Vec::with_capacity(train_edges.len() * 2);
                for &(u, v) in &train_edges {
                    features.push(edge_features(embedding, u, v));
                    labels.push(true);
                }
                for &(u, v) in &train_negatives {
                    features.push(edge_features(embedding, u, v));
                    labels.push(false);
                }
                let model = LogisticRegression::train(
                    &features,
                    &labels,
                    &LogRegConfig {
                        epochs: 150,
                        ..Default::default()
                    },
                )?;
                Ok(PairScorer::EdgeFeatures { embedding, model })
            }
        }
    }
}

enum PairScorer<'a> {
    InnerProduct(&'a Embedding),
    EdgeFeatures {
        embedding: &'a Embedding,
        model: LogisticRegression,
    },
}

impl PairScorer<'_> {
    fn score(&self, u: NodeId, v: NodeId) -> f64 {
        match self {
            PairScorer::InnerProduct(e) => e.score(u, v),
            PairScorer::EdgeFeatures { embedding, model } => {
                model.decision(&edge_features(embedding, u, v))
            }
        }
    }
}

fn edge_features(embedding: &Embedding, u: NodeId, v: NodeId) -> Vec<f64> {
    let mut f = embedding.classification_features(u);
    f.extend(embedding.classification_features(v));
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_core::{ApproxPpr, ApproxPprParams, Nrp, NrpParams};
    use nrp_graph::generators::evolving::{evolving_sbm, EvolvingSbmParams};
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;
    use nrp_linalg::DenseMatrix;

    fn sbm(kind: GraphKind, seed: u64) -> Graph {
        stochastic_block_model(&[40, 40, 40], 0.25, 0.01, kind, seed)
            .unwrap()
            .0
    }

    fn nrp(k: usize, seed: u64) -> Nrp {
        Nrp::new(
            NrpParams::builder()
                .dimension(k)
                .reweight_epochs(6)
                .lambda(1.0)
                .seed(seed)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn nrp_beats_random_on_sbm() {
        let g = sbm(GraphKind::Undirected, 1);
        let outcome = LinkPrediction::default().evaluate(&g, &nrp(16, 1)).unwrap();
        assert!(outcome.auc > 0.75, "AUC {}", outcome.auc);
        assert_eq!(outcome.num_positives, outcome.num_negatives);
    }

    #[test]
    fn nrp_at_least_matches_approx_ppr() {
        // The headline claim of the paper: reweighting does not hurt and
        // typically helps link prediction.  A single split/seed draw can swing
        // either method's AUC by a few points, so compare averages over a few
        // seeds rather than one pinned draw.
        let mut nrp_mean = 0.0;
        let mut approx_mean = 0.0;
        let seeds = [2u64, 3, 4];
        for &seed in &seeds {
            let g = sbm(GraphKind::Undirected, seed);
            let task = LinkPrediction::default();
            nrp_mean += task.evaluate(&g, &nrp(16, seed)).unwrap().auc / seeds.len() as f64;
            let approx = ApproxPpr::new(ApproxPprParams {
                half_dimension: 8,
                seed,
                ..Default::default()
            });
            approx_mean += task.evaluate(&g, &approx).unwrap().auc / seeds.len() as f64;
        }
        assert!(
            nrp_mean >= approx_mean - 0.03,
            "NRP ({nrp_mean}) should not trail ApproxPPR ({approx_mean}) by a wide margin"
        );
    }

    #[test]
    fn works_on_directed_graphs() {
        let g = sbm(GraphKind::Directed, 3);
        let outcome = LinkPrediction::default().evaluate(&g, &nrp(16, 3)).unwrap();
        assert!(outcome.auc > 0.7, "AUC {}", outcome.auc);
    }

    #[test]
    fn edge_features_strategy_runs_and_discriminates() {
        let g = sbm(GraphKind::Undirected, 4);
        let config = LinkPredictionConfig {
            scoring: ScoringStrategy::EdgeFeatures,
            ..Default::default()
        };
        let outcome = LinkPrediction::new(config)
            .evaluate(&g, &nrp(8, 4))
            .unwrap();
        assert!(outcome.auc > 0.6, "AUC {}", outcome.auc);
    }

    #[test]
    fn dynamic_new_edge_prediction() {
        let instance = evolving_sbm(&EvolvingSbmParams::default()).unwrap();
        let embedding = nrp(16, 5).embed_default(&instance.old_graph).unwrap();
        let outcome = LinkPrediction::default()
            .evaluate_new_edges(&instance.old_graph, &embedding, &instance.new_edges)
            .unwrap();
        assert!(outcome.auc > 0.6, "AUC {}", outcome.auc);
    }

    #[test]
    fn random_embedding_is_near_chance() {
        let g = sbm(GraphKind::Undirected, 6);
        let n = g.num_nodes();
        let random = Embedding::new(
            nrp_linalg::random::gaussian_matrix(n, 8, 1),
            nrp_linalg::random::gaussian_matrix(n, 8, 2),
            "random",
        )
        .unwrap();
        let split = crate::split::link_prediction_split(&g, 0.3, 6).unwrap();
        let outcome = LinkPrediction::default()
            .evaluate_pairs(
                &split.train_graph,
                &random,
                &split.positive_pairs,
                &split.negative_pairs,
            )
            .unwrap();
        assert!(
            (outcome.auc - 0.5).abs() < 0.15,
            "random AUC {}",
            outcome.auc
        );
    }

    #[test]
    fn mismatched_embedding_rejected() {
        let g = sbm(GraphKind::Undirected, 7);
        let tiny =
            Embedding::new(DenseMatrix::zeros(3, 2), DenseMatrix::zeros(3, 2), "tiny").unwrap();
        let split = crate::split::link_prediction_split(&g, 0.3, 7).unwrap();
        let result = LinkPrediction::default().evaluate_pairs(
            &split.train_graph,
            &tiny,
            &split.positive_pairs,
            &split.negative_pairs,
        );
        assert!(result.is_err());
    }

    #[test]
    fn empty_new_edges_rejected() {
        let g = sbm(GraphKind::Undirected, 8);
        let embedding = nrp(8, 8).embed_default(&g).unwrap();
        assert!(LinkPrediction::default()
            .evaluate_new_edges(&g, &embedding, &[])
            .is_err());
    }
}
