//! Evaluation metrics: AUC, precision@K, micro-/macro-F1.

use crate::{EvalError, Result};

/// Area under the ROC curve computed from scored positives and negatives via
/// the Mann–Whitney U statistic (ties contribute half).
pub fn auc(positive_scores: &[f64], negative_scores: &[f64]) -> Result<f64> {
    if positive_scores.is_empty() || negative_scores.is_empty() {
        return Err(EvalError::Degenerate(
            "AUC needs both positive and negative examples".into(),
        ));
    }
    // Sort all scores once and use rank sums: O((p+n) log(p+n)).
    let mut labeled: Vec<(f64, bool)> = positive_scores
        .iter()
        .map(|&s| (s, true))
        .chain(negative_scores.iter().map(|&s| (s, false)))
        .collect();
    if labeled.iter().any(|(s, _)| !s.is_finite()) {
        return Err(EvalError::InvalidParameter("scores must be finite".into()));
    }
    labeled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores are finite"));
    // Assign average ranks to tied groups.
    let mut rank_sum_pos = 0.0_f64;
    let mut i = 0usize;
    let total = labeled.len();
    while i < total {
        let mut j = i;
        while j + 1 < total && labeled[j + 1].0 == labeled[i].0 {
            j += 1;
        }
        // Ranks are 1-based; positions i..=j share the average rank.
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for item in &labeled[i..=j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let p = positive_scores.len() as f64;
    let n = negative_scores.len() as f64;
    let u = rank_sum_pos - p * (p + 1.0) / 2.0;
    Ok(u / (p * n))
}

/// Fraction of the top-`k` highest-scoring items that are relevant.
///
/// `scored` is a list of `(score, is_relevant)` pairs; `k` is clamped to the
/// list length.
pub fn precision_at_k(scored: &[(f64, bool)], k: usize) -> Result<f64> {
    if scored.is_empty() || k == 0 {
        return Err(EvalError::Degenerate(
            "precision@K needs items and K >= 1".into(),
        ));
    }
    let k = k.min(scored.len());
    let mut sorted: Vec<&(f64, bool)> = scored.iter().collect();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are finite"));
    let hits = sorted[..k].iter().filter(|(_, relevant)| *relevant).count();
    Ok(hits as f64 / k as f64)
}

/// Per-label confusion counts used by the F1 computations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelCounts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

/// Builds per-label confusion counts from multi-label ground truth and
/// predictions. `num_labels` is the label-space size.
pub fn label_counts(
    truth: &[Vec<u32>],
    predicted: &[Vec<u32>],
    num_labels: usize,
) -> Result<Vec<LabelCounts>> {
    if truth.len() != predicted.len() {
        return Err(EvalError::InvalidParameter(format!(
            "truth has {} rows but predictions have {}",
            truth.len(),
            predicted.len()
        )));
    }
    let mut counts = vec![LabelCounts::default(); num_labels];
    for (t, p) in truth.iter().zip(predicted) {
        for &label in p {
            let label = label as usize;
            if label >= num_labels {
                return Err(EvalError::InvalidParameter(format!(
                    "label {label} out of range"
                )));
            }
            if t.contains(&(label as u32)) {
                counts[label].tp += 1;
            } else {
                counts[label].fp += 1;
            }
        }
        for &label in t {
            let label = label as usize;
            if label >= num_labels {
                return Err(EvalError::InvalidParameter(format!(
                    "label {label} out of range"
                )));
            }
            if !p.contains(&(label as u32)) {
                counts[label].fn_ += 1;
            }
        }
    }
    Ok(counts)
}

/// Micro-averaged F1: compute global TP/FP/FN then one F1.
pub fn micro_f1(counts: &[LabelCounts]) -> f64 {
    let tp: usize = counts.iter().map(|c| c.tp).sum();
    let fp: usize = counts.iter().map(|c| c.fp).sum();
    let fn_: usize = counts.iter().map(|c| c.fn_).sum();
    f1(tp, fp, fn_)
}

/// Macro-averaged F1: average the per-label F1 over labels that appear.
pub fn macro_f1(counts: &[LabelCounts]) -> f64 {
    let active: Vec<&LabelCounts> = counts.iter().filter(|c| c.tp + c.fp + c.fn_ > 0).collect();
    if active.is_empty() {
        return 0.0;
    }
    active.iter().map(|c| f1(c.tp, c.fp, c.fn_)).sum::<f64>() / active.len() as f64
}

fn f1(tp: usize, fp: usize, fn_: usize) -> f64 {
    let denom = 2 * tp + fp + fn_;
    if denom == 0 {
        0.0
    } else {
        2.0 * tp as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_separation() {
        let auc = auc(&[0.9, 0.8, 0.7], &[0.3, 0.2, 0.1]).unwrap();
        assert!((auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_reversed_separation_is_zero() {
        let auc = auc(&[0.1, 0.2], &[0.8, 0.9]).unwrap();
        assert!(auc.abs() < 1e-12);
    }

    #[test]
    fn auc_random_scores_near_half() {
        let auc = auc(&[0.5, 0.4, 0.6, 0.3], &[0.45, 0.55, 0.35, 0.65]).unwrap();
        assert!((auc - 0.5).abs() < 0.2);
    }

    #[test]
    fn auc_handles_ties() {
        // All scores identical -> AUC exactly 0.5.
        let auc = auc(&[1.0, 1.0, 1.0], &[1.0, 1.0]).unwrap();
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_known_value() {
        // positives: 0.8, 0.4; negatives: 0.6, 0.2
        // pairs: (0.8>0.6), (0.8>0.2), (0.4<0.6), (0.4>0.2) -> 3/4
        let auc = auc(&[0.8, 0.4], &[0.6, 0.2]).unwrap();
        assert!((auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_rejects_empty_or_nonfinite() {
        assert!(auc(&[], &[0.1]).is_err());
        assert!(auc(&[0.1], &[]).is_err());
        assert!(auc(&[f64::NAN], &[0.1]).is_err());
    }

    #[test]
    fn precision_at_k_basic() {
        let scored = vec![(0.9, true), (0.8, false), (0.7, true), (0.1, false)];
        assert!((precision_at_k(&scored, 1).unwrap() - 1.0).abs() < 1e-12);
        assert!((precision_at_k(&scored, 2).unwrap() - 0.5).abs() < 1e-12);
        assert!((precision_at_k(&scored, 4).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn precision_at_k_clamps_k() {
        let scored = vec![(0.9, true), (0.1, true)];
        assert!((precision_at_k(&scored, 100).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precision_at_k_rejects_degenerate() {
        assert!(precision_at_k(&[], 3).is_err());
        assert!(precision_at_k(&[(0.5, true)], 0).is_err());
    }

    #[test]
    fn f1_perfect_predictions() {
        let truth = vec![vec![0], vec![1], vec![0, 1]];
        let counts = label_counts(&truth, &truth, 2).unwrap();
        assert!((micro_f1(&counts) - 1.0).abs() < 1e-12);
        assert!((macro_f1(&counts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_all_wrong_predictions() {
        let truth = vec![vec![0], vec![0]];
        let predicted = vec![vec![1], vec![1]];
        let counts = label_counts(&truth, &predicted, 2).unwrap();
        assert_eq!(micro_f1(&counts), 0.0);
        assert_eq!(macro_f1(&counts), 0.0);
    }

    #[test]
    fn micro_f1_known_value() {
        // truth: node0 {0}, node1 {1}; predictions: node0 {0}, node1 {0}
        // tp=1 (label0 node0), fp=1 (label0 node1), fn=1 (label1 node1)
        let truth = vec![vec![0], vec![1]];
        let predicted = vec![vec![0], vec![0]];
        let counts = label_counts(&truth, &predicted, 2).unwrap();
        assert!((micro_f1(&counts) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn macro_differs_from_micro_under_imbalance() {
        // Label 0 dominates and is predicted well; label 1 is rare and always missed.
        let truth = vec![vec![0], vec![0], vec![0], vec![1]];
        let predicted = vec![vec![0], vec![0], vec![0], vec![0]];
        let counts = label_counts(&truth, &predicted, 2).unwrap();
        assert!(micro_f1(&counts) > macro_f1(&counts));
    }

    #[test]
    fn label_counts_validates_input() {
        assert!(label_counts(&[vec![0]], &[], 1).is_err());
        assert!(label_counts(&[vec![5]], &[vec![0]], 2).is_err());
        assert!(label_counts(&[vec![0]], &[vec![5]], 2).is_err());
    }
}
