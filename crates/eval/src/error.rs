//! Error type for evaluation tasks.

use std::fmt;

use nrp_core::NrpError;
use nrp_graph::GraphError;

/// Errors produced while running an evaluation task.
#[derive(Debug)]
pub enum EvalError {
    /// A parameter was outside its valid range.
    InvalidParameter(String),
    /// The task's input data was unusable (e.g. no positive examples).
    Degenerate(String),
    /// Graph manipulation failed.
    Graph(GraphError),
    /// The embedding method failed.
    Embedding(NrpError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            EvalError::Degenerate(msg) => write!(f, "degenerate task input: {msg}"),
            EvalError::Graph(err) => write!(f, "graph error: {err}"),
            EvalError::Embedding(err) => write!(f, "embedding error: {err}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Graph(err) => Some(err),
            EvalError::Embedding(err) => Some(err),
            _ => None,
        }
    }
}

impl From<GraphError> for EvalError {
    fn from(err: GraphError) -> Self {
        EvalError::Graph(err)
    }
}

impl From<NrpError> for EvalError {
    fn from(err: NrpError) -> Self {
        EvalError::Embedding(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = EvalError::InvalidParameter("ratio".into());
        assert!(err.to_string().contains("ratio"));
        let err: EvalError = GraphError::EmptyGraph.into();
        assert!(std::error::Error::source(&err).is_some());
        let err = EvalError::Degenerate("no positives".into());
        assert!(err.to_string().contains("no positives"));
    }
}
