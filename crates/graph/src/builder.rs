//! Incremental construction of [`Graph`] values.

use crate::{Graph, GraphError, GraphKind, NodeId, Result};

/// A mutable accumulator of edges, finalized into an immutable [`Graph`].
///
/// The builder grows the node count automatically when
/// [`GraphBuilder::add_edge_growing`] is used, which is convenient for
/// edge-list parsing where the node count is not known up front.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    kind: GraphKind,
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    allow_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph of the given kind with `num_nodes` nodes.
    pub fn new(num_nodes: usize, kind: GraphKind) -> Self {
        Self {
            kind,
            num_nodes,
            edges: Vec::new(),
            allow_self_loops: false,
        }
    }

    /// Creates a builder whose node count grows with the inserted edges.
    pub fn growing(kind: GraphKind) -> Self {
        Self::new(0, kind)
    }

    /// Whether self-loops should be kept at build time.  They are dropped by
    /// default because the NRP objective only concerns `u != v` pairs.
    pub fn allow_self_loops(mut self, allow: bool) -> Self {
        self.allow_self_loops = allow;
        self
    }

    /// Number of edges added so far (before de-duplication).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Current node count.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Adds an edge; endpoints must be `< num_nodes`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if (u as usize) >= self.num_nodes {
            return Err(GraphError::NodeOutOfBounds {
                node: u as u64,
                num_nodes: self.num_nodes,
            });
        }
        if (v as usize) >= self.num_nodes {
            return Err(GraphError::NodeOutOfBounds {
                node: v as u64,
                num_nodes: self.num_nodes,
            });
        }
        self.edges.push((u, v));
        Ok(())
    }

    /// Adds an edge, growing the node count to cover both endpoints.
    pub fn add_edge_growing(&mut self, u: NodeId, v: NodeId) {
        let needed = (u.max(v) as usize) + 1;
        if needed > self.num_nodes {
            self.num_nodes = needed;
        }
        self.edges.push((u, v));
    }

    /// Adds many edges at once (growing the node count).
    pub fn extend_growing<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge_growing(u, v);
        }
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(self) -> Result<Graph> {
        let edges: Vec<(NodeId, NodeId)> = if self.allow_self_loops {
            self.edges
        } else {
            self.edges.into_iter().filter(|(u, v)| u != v).collect()
        };
        Graph::from_edges(self.num_nodes, &edges, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_size_builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(3, GraphKind::Directed);
        b.add_edge(0, 1).unwrap();
        assert!(b.add_edge(0, 3).is_err());
    }

    #[test]
    fn growing_builder_expands() {
        let mut b = GraphBuilder::growing(GraphKind::Undirected);
        b.add_edge_growing(0, 5);
        b.add_edge_growing(2, 3);
        assert_eq!(b.num_nodes(), 6);
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::growing(GraphKind::Directed);
        b.extend_growing([(0, 0), (0, 1), (1, 1)]);
        let g = b.build().unwrap();
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn empty_builder_reports_empty() {
        let b = GraphBuilder::new(2, GraphKind::Directed);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        let g = b.build().unwrap();
        assert_eq!(g.num_arcs(), 0);
    }

    #[test]
    fn extend_growing_counts_edges() {
        let mut b = GraphBuilder::growing(GraphKind::Directed);
        b.extend_growing([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(b.len(), 3);
        let g = b.build().unwrap();
        assert_eq!(g.num_arcs(), 3);
    }
}
