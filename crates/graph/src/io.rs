//! Plain-text edge-list and label-file I/O.
//!
//! The formats mirror those used by the public releases of the datasets the
//! paper evaluates on (SNAP-style edge lists, one `src dst` pair per line,
//! `#`-prefixed comments; label files with `node label [label ...]` lines).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::{Graph, GraphError, GraphKind, NodeId, Result};

/// Reads an edge list from a reader.  Lines starting with `#` or `%` are
/// treated as comments; fields may be separated by spaces, tabs or commas.
pub fn read_edge_list_from<R: Read>(reader: R, kind: GraphKind) -> Result<Graph> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::growing(kind);
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|s| !s.is_empty());
        let u = parse_node(parts.next(), idx + 1)?;
        let v = parse_node(parts.next(), idx + 1)?;
        builder.add_edge_growing(u, v);
    }
    if builder.is_empty() && builder.num_nodes() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    builder.build()
}

/// Reads an edge list from a file path.
pub fn read_edge_list<P: AsRef<Path>>(path: P, kind: GraphKind) -> Result<Graph> {
    let file = std::fs::File::open(path)?;
    read_edge_list_from(file, kind)
}

/// Writes a graph as an edge list (`src<TAB>dst` per line, input semantics:
/// undirected edges are written once).
pub fn write_edge_list_to<W: Write>(graph: &Graph, writer: W) -> Result<()> {
    let mut writer = BufWriter::new(writer);
    writeln!(
        writer,
        "# nodes {} edges {}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u}\t{v}")?;
    }
    writer.flush()?;
    Ok(())
}

/// Writes a graph as an edge list to a file path.
pub fn write_edge_list<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list_to(graph, file)
}

/// Reads a multi-label file: each line is `node label [label ...]`.
/// Returns one (possibly empty) label vector per node id in `0..num_nodes`.
pub fn read_labels_from<R: Read>(reader: R, num_nodes: usize) -> Result<Vec<Vec<u32>>> {
    let reader = BufReader::new(reader);
    let mut labels = vec![Vec::new(); num_nodes];
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let node = parse_node(parts.next(), idx + 1)? as usize;
        if node >= num_nodes {
            return Err(GraphError::NodeOutOfBounds {
                node: node as u64,
                num_nodes,
            });
        }
        for tok in parts {
            let label: u32 = tok.parse().map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: format!("invalid label '{tok}'"),
            })?;
            labels[node].push(label);
        }
    }
    Ok(labels)
}

/// Reads a label file from a path.
pub fn read_labels<P: AsRef<Path>>(path: P, num_nodes: usize) -> Result<Vec<Vec<u32>>> {
    let file = std::fs::File::open(path)?;
    read_labels_from(file, num_nodes)
}

/// Writes labels as `node label [label ...]` lines (nodes without labels are
/// skipped).
pub fn write_labels_to<W: Write>(labels: &[Vec<u32>], writer: W) -> Result<()> {
    let mut writer = BufWriter::new(writer);
    for (node, ls) in labels.iter().enumerate() {
        if ls.is_empty() {
            continue;
        }
        write!(writer, "{node}")?;
        for l in ls {
            write!(writer, " {l}")?;
        }
        writeln!(writer)?;
    }
    writer.flush()?;
    Ok(())
}

/// Writes labels to a file path.
pub fn write_labels<P: AsRef<Path>>(labels: &[Vec<u32>], path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_labels_to(labels, file)
}

fn parse_node(token: Option<&str>, line: usize) -> Result<NodeId> {
    let token = token.ok_or(GraphError::Parse {
        line,
        message: "missing node id".into(),
    })?;
    token.parse::<NodeId>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid node id '{token}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_edge_list() {
        let text = "# comment\n0 1\n1\t2\n2,3\n";
        let g = read_edge_list_from(text.as_bytes(), GraphKind::Directed).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_arcs(), 3);
        assert!(g.has_arc(2, 3));
    }

    #[test]
    fn undirected_parse_adds_reverse_arcs() {
        let text = "0 1\n";
        let g = read_edge_list_from(text.as_bytes(), GraphKind::Undirected).unwrap();
        assert!(g.has_arc(1, 0));
    }

    #[test]
    fn rejects_garbage_tokens() {
        let text = "0 foo\n";
        let err = read_edge_list_from(text.as_bytes(), GraphKind::Directed).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_missing_endpoint() {
        let text = "0\n";
        let err = read_edge_list_from(text.as_bytes(), GraphKind::Directed).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn empty_input_is_error() {
        let err =
            read_edge_list_from("# only comments\n".as_bytes(), GraphKind::Directed).unwrap_err();
        assert!(matches!(err, GraphError::EmptyGraph));
    }

    #[test]
    fn edge_list_round_trip() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)], GraphKind::Undirected).unwrap();
        let mut buf = Vec::new();
        write_edge_list_to(&g, &mut buf).unwrap();
        let g2 = read_edge_list_from(buf.as_slice(), GraphKind::Undirected).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_arc(u, v));
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("graph.txt");
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)], GraphKind::Directed).unwrap();
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path, GraphKind::Directed).unwrap();
        assert_eq!(g2.num_arcs(), 2);
    }

    #[test]
    fn labels_round_trip() {
        let labels = vec![vec![1, 2], vec![], vec![3]];
        let mut buf = Vec::new();
        write_labels_to(&labels, &mut buf).unwrap();
        let parsed = read_labels_from(buf.as_slice(), 3).unwrap();
        assert_eq!(parsed, labels);
    }

    #[test]
    fn labels_reject_out_of_range_node() {
        let text = "5 1\n";
        let err = read_labels_from(text.as_bytes(), 3).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }

    #[test]
    fn labels_reject_bad_label() {
        let text = "0 abc\n";
        let err = read_labels_from(text.as_bytes(), 3).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }
}
