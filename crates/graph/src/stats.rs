//! Descriptive statistics over graphs (degree distribution, density, …).
//!
//! Used by the `table3_datasets` harness to print the analogue of the
//! paper's dataset-statistics table and by tests that assert generator
//! behaviour (e.g. the Barabási–Albert generator produces a heavy-tailed
//! degree distribution).

use crate::Graph;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of edges in the input interpretation.
    pub num_edges: usize,
    /// Number of directed arcs.
    pub num_arcs: usize,
    /// Minimum out-degree.
    pub min_out_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Fraction of nodes with out-degree zero (dangling nodes).
    pub dangling_fraction: f64,
    /// Arc density `m / (n * (n - 1))`.
    pub density: f64,
}

/// Computes summary statistics for `graph`.
pub fn graph_stats(graph: &Graph) -> GraphStats {
    let n = graph.num_nodes();
    let degrees = graph.out_degrees();
    let min = degrees.iter().copied().min().unwrap_or(0);
    let max = degrees.iter().copied().max().unwrap_or(0);
    let total: usize = degrees.iter().sum();
    let dangling = degrees.iter().filter(|&&d| d == 0).count();
    let pairs = (n as f64) * ((n.saturating_sub(1)) as f64);
    GraphStats {
        num_nodes: n,
        num_edges: graph.num_edges(),
        num_arcs: graph.num_arcs(),
        min_out_degree: min,
        max_out_degree: max,
        mean_out_degree: total as f64 / n as f64,
        dangling_fraction: dangling as f64 / n as f64,
        density: if pairs > 0.0 {
            graph.num_arcs() as f64 / pairs
        } else {
            0.0
        },
    }
}

/// Histogram of out-degrees: `hist[d]` is the number of nodes with
/// out-degree `d` (truncated at `max_degree`, larger degrees are folded into
/// the last bucket).
pub fn degree_histogram(graph: &Graph, max_degree: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_degree + 1];
    for d in graph.out_degrees() {
        let bucket = d.min(max_degree);
        hist[bucket] += 1;
    }
    hist
}

/// Gini coefficient of the out-degree distribution — a scalar measure of
/// degree skew used to sanity-check the power-law generators (values near 0
/// mean uniform degrees, values near 1 mean extremely skewed).
pub fn degree_gini(graph: &Graph) -> f64 {
    let mut degrees: Vec<f64> = graph.out_degrees().iter().map(|&d| d as f64).collect();
    degrees.sort_by(|a, b| a.partial_cmp(b).expect("degrees are finite"));
    let n = degrees.len() as f64;
    let sum: f64 = degrees.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = degrees
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as f64 + 1.0) * d)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphKind;

    #[test]
    fn stats_of_directed_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], GraphKind::Directed).unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.min_out_degree, 0);
        assert!((s.mean_out_degree - 0.75).abs() < 1e-12);
        assert!((s.dangling_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let g =
            Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)], GraphKind::Directed).unwrap();
        let hist = degree_histogram(&g, 2);
        // degrees: 3, 1, 0, 0 -> buckets (0:2, 1:1, >=2:1)
        assert_eq!(hist, vec![2, 1, 1]);
    }

    #[test]
    fn gini_zero_for_regular_graph() {
        let g =
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], GraphKind::Undirected).unwrap();
        assert!(degree_gini(&g).abs() < 1e-9);
    }

    #[test]
    fn gini_positive_for_star() {
        let edges: Vec<(u32, u32)> = (1..10u32).map(|v| (0, v)).collect();
        let g = Graph::from_edges(10, &edges, GraphKind::Directed).unwrap();
        assert!(degree_gini(&g) > 0.5);
    }

    #[test]
    fn density_of_complete_directed_graph_is_one() {
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(4, &edges, GraphKind::Directed).unwrap();
        assert!((graph_stats(&g).density - 1.0).abs() < 1e-12);
    }
}
