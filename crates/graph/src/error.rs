//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced while building, generating or reading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id `>= n`.
    NodeOutOfBounds {
        /// The offending node id.
        node: u64,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// The requested graph has no nodes.
    EmptyGraph,
    /// A generator was asked for an impossible configuration
    /// (e.g. more edges than node pairs).
    InvalidParameter(String),
    /// A line of an edge-list or label file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of bounds for graph with {num_nodes} nodes"
                )
            }
            GraphError::EmptyGraph => write!(f, "graph must contain at least one node"),
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_bounds() {
        let err = GraphError::NodeOutOfBounds {
            node: 12,
            num_nodes: 10,
        };
        assert!(err.to_string().contains("12"));
        assert!(err.to_string().contains("10"));
    }

    #[test]
    fn display_parse() {
        let err = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: GraphError = io.into();
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn invalid_parameter_message() {
        let err = GraphError::InvalidParameter("p must be in [0,1]".into());
        assert!(err.to_string().contains("p must be in [0,1]"));
    }
}
