//! The immutable [`Graph`] type used throughout the workspace.

use crate::csr::CsrAdjacency;
use crate::{GraphError, NodeId, Result};

/// Whether the input edges are interpreted as directed arcs or undirected
/// edges.
///
/// The paper handles undirected graphs by replacing each undirected edge
/// `(u, v)` with the two arcs `(u, v)` and `(v, u)` (Section 3.1); this type
/// records which interpretation a [`Graph`] was built with so that the
/// evaluation tasks can report per-kind behaviour (e.g. the edge-features
/// scoring fallback for single-vector methods on directed graphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Edges are one-way arcs.
    Directed,
    /// Edges connect both endpoints; internally stored as two arcs.
    Undirected,
}

impl GraphKind {
    /// True if this is [`GraphKind::Directed`].
    pub fn is_directed(self) -> bool {
        matches!(self, GraphKind::Directed)
    }
}

/// An immutable graph with CSR out-adjacency and in-adjacency.
///
/// `num_arcs` counts *directed* arcs: for an undirected graph each input edge
/// contributes two arcs, matching the `m` used in the paper's complexity
/// analysis for undirected inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    kind: GraphKind,
    out_adj: CsrAdjacency,
    in_adj: CsrAdjacency,
    num_input_edges: usize,
}

impl Graph {
    /// Builds a graph over `num_nodes` nodes from an edge list.
    ///
    /// For [`GraphKind::Undirected`], every edge `(u, v)` also inserts the
    /// reverse arc. Self-loops are dropped (the PPR random walk definition
    /// never benefits from them and the paper's proximity objective only
    /// concerns `u != v`). Duplicate edges are collapsed.
    pub fn from_edges(
        num_nodes: usize,
        edges: &[(NodeId, NodeId)],
        kind: GraphKind,
    ) -> Result<Self> {
        let mut arcs: Vec<(NodeId, NodeId)> = Vec::with_capacity(match kind {
            GraphKind::Directed => edges.len(),
            GraphKind::Undirected => edges.len() * 2,
        });
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            arcs.push((u, v));
            if !kind.is_directed() {
                arcs.push((v, u));
            }
        }
        let out_adj = CsrAdjacency::from_arcs(num_nodes, &arcs)?;
        let in_adj = out_adj.transpose();
        let num_input_edges = match kind {
            GraphKind::Directed => out_adj.num_arcs(),
            GraphKind::Undirected => out_adj.num_arcs() / 2,
        };
        Ok(Self {
            kind,
            out_adj,
            in_adj,
            num_input_edges,
        })
    }

    /// The interpretation (directed / undirected) this graph was built with.
    #[inline]
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.out_adj.num_nodes()
    }

    /// Number of directed arcs `m` (undirected edges count twice).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.out_adj.num_arcs()
    }

    /// Number of edges as given in the input interpretation
    /// (undirected edges count once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_input_edges
    }

    /// Out-neighbours of `u`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.out_adj.neighbors(u)
    }

    /// In-neighbours of `u`, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.in_adj.neighbors(u)
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_adj.degree(u)
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_adj.degree(u)
    }

    /// Whether the arc `(u, v)` exists.
    #[inline]
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.out_adj.contains(u, v)
    }

    /// Whether `u` and `v` are connected in either direction.
    #[inline]
    pub fn has_edge_any_direction(&self, u: NodeId, v: NodeId) -> bool {
        self.out_adj.contains(u, v) || self.out_adj.contains(v, u)
    }

    /// Iterates over all directed arcs.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out_adj.arcs()
    }

    /// Iterates over the edges in the input interpretation: for undirected
    /// graphs, each unordered pair is yielded once with `u <= v`.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        match self.kind {
            GraphKind::Directed => self.arcs().collect(),
            GraphKind::Undirected => self.arcs().filter(|&(u, v)| u < v).collect(),
        }
    }

    /// The out-adjacency CSR structure.
    #[inline]
    pub fn out_adjacency(&self) -> &CsrAdjacency {
        &self.out_adj
    }

    /// The in-adjacency CSR structure (transpose of the out-adjacency).
    #[inline]
    pub fn in_adjacency(&self) -> &CsrAdjacency {
        &self.in_adj
    }

    /// Out-degree vector.
    pub fn out_degrees(&self) -> Vec<usize> {
        self.out_adj.degrees()
    }

    /// In-degree vector.
    pub fn in_degrees(&self) -> Vec<usize> {
        self.in_adj.degrees()
    }

    /// Returns the graph with every arc reversed (the "transpose graph" used
    /// by STRAP's backward PPR). For undirected graphs this is a clone.
    pub fn reverse(&self) -> Self {
        Self {
            kind: self.kind,
            out_adj: self.in_adj.clone(),
            in_adj: self.out_adj.clone(),
            num_input_edges: self.num_input_edges,
        }
    }

    /// Number of common out-neighbours of `u` and `v` (used by the Fig. 1
    /// motivation test and by simple heuristics in the evaluation crate).
    pub fn common_out_neighbors(&self, u: NodeId, v: NodeId) -> usize {
        let (mut a, mut b) = (
            self.out_neighbors(u).iter().peekable(),
            self.out_neighbors(v).iter().peekable(),
        );
        let mut count = 0;
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    count += 1;
                    a.next();
                    b.next();
                }
            }
        }
        count
    }

    /// Returns a new graph with the given subset of arcs removed.
    ///
    /// `removed` is interpreted in the graph's input semantics: for an
    /// undirected graph, removing `(u, v)` removes both arcs. Used by the
    /// link-prediction split.
    pub fn remove_edges(&self, removed: &[(NodeId, NodeId)]) -> Result<Self> {
        use std::collections::HashSet;
        let mut kill: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(removed.len() * 2);
        for &(u, v) in removed {
            kill.insert((u, v));
            if !self.kind.is_directed() {
                kill.insert((v, u));
            }
        }
        let arcs: Vec<(NodeId, NodeId)> = self.arcs().filter(|a| !kill.contains(a)).collect();
        // Arcs are already symmetric for undirected graphs, so rebuild as directed arcs
        // and restore the kind manually.
        let out_adj = CsrAdjacency::from_arcs(self.num_nodes(), &arcs)?;
        let in_adj = out_adj.transpose();
        let num_input_edges = match self.kind {
            GraphKind::Directed => out_adj.num_arcs(),
            GraphKind::Undirected => out_adj.num_arcs() / 2,
        };
        Ok(Self {
            kind: self.kind,
            out_adj,
            in_adj,
            num_input_edges,
        })
    }

    /// Checks structural invariants; used by tests and debug assertions.
    pub fn validate(&self) -> Result<()> {
        if self.out_adj.num_nodes() != self.in_adj.num_nodes() {
            return Err(GraphError::InvalidParameter(
                "out/in adjacency node count mismatch".into(),
            ));
        }
        if self.out_adj.num_arcs() != self.in_adj.num_arcs() {
            return Err(GraphError::InvalidParameter(
                "out/in adjacency arc count mismatch".into(),
            ));
        }
        if !self.kind.is_directed() {
            for (u, v) in self.arcs() {
                if !self.has_arc(v, u) {
                    return Err(GraphError::InvalidParameter(format!(
                        "undirected graph missing reciprocal arc ({v}, {u})"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_directed() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], GraphKind::Directed).unwrap()
    }

    fn triangle_undirected() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], GraphKind::Undirected).unwrap()
    }

    #[test]
    fn directed_counts() {
        let g = path_directed();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_arcs(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(3), 1);
    }

    #[test]
    fn undirected_counts_double_arcs() {
        let g = triangle_undirected();
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.num_edges(), 3);
        for u in 0..3 {
            assert_eq!(g.out_degree(u), 2);
            assert_eq!(g.in_degree(u), 2);
        }
    }

    #[test]
    fn self_loops_dropped() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (1, 1)], GraphKind::Directed).unwrap();
        assert_eq!(g.num_arcs(), 1);
        assert!(!g.has_arc(0, 0));
    }

    #[test]
    fn in_adjacency_is_transpose() {
        let g = path_directed();
        assert_eq!(g.in_neighbors(1), &[0]);
        assert_eq!(g.in_neighbors(2), &[1]);
        assert!(g.in_neighbors(0).is_empty());
    }

    #[test]
    fn edges_undirected_yields_each_pair_once() {
        let g = triangle_undirected();
        let mut e = g.edges();
        e.sort();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn reverse_swaps_directions() {
        let g = path_directed();
        let r = g.reverse();
        assert!(r.has_arc(1, 0));
        assert!(!r.has_arc(0, 1));
        assert_eq!(r.num_arcs(), g.num_arcs());
    }

    #[test]
    fn common_out_neighbors_counts_intersection() {
        let g = Graph::from_edges(
            5,
            &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3)],
            GraphKind::Directed,
        )
        .unwrap();
        assert_eq!(g.common_out_neighbors(0, 1), 2);
        assert_eq!(g.common_out_neighbors(2, 3), 0);
    }

    #[test]
    fn remove_edges_directed() {
        let g = path_directed();
        let g2 = g.remove_edges(&[(1, 2)]).unwrap();
        assert!(!g2.has_arc(1, 2));
        assert!(g2.has_arc(0, 1));
        assert_eq!(g2.num_arcs(), 2);
    }

    #[test]
    fn remove_edges_undirected_removes_both_arcs() {
        let g = triangle_undirected();
        let g2 = g.remove_edges(&[(0, 1)]).unwrap();
        assert!(!g2.has_arc(0, 1));
        assert!(!g2.has_arc(1, 0));
        assert_eq!(g2.num_edges(), 2);
        g2.validate().unwrap();
    }

    #[test]
    fn validate_accepts_well_formed() {
        path_directed().validate().unwrap();
        triangle_undirected().validate().unwrap();
    }

    #[test]
    fn has_edge_any_direction() {
        let g = path_directed();
        assert!(g.has_edge_any_direction(1, 0));
        assert!(g.has_edge_any_direction(0, 1));
        assert!(!g.has_edge_any_direction(0, 3));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (1, 0)], GraphKind::Undirected).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_arcs(), 2);
    }
}
