//! The 9-node example graph of the paper's Fig. 1.
//!
//! The paper does not list the edge set explicitly, but the text and Table 1
//! pin down its key structural properties, which this reconstruction
//! satisfies:
//!
//! * nodes `v1..v5` form a dense cluster, `v6..v9` a sparse tail;
//! * `v2` and `v4` are *not* adjacent but share exactly three common
//!   neighbours (`v1`, `v3`, `v5`);
//! * `v7` and `v9` are *not* adjacent and share exactly one common neighbour
//!   (`v8`);
//! * despite that, the PPR value `π(v9, v7)` exceeds `π(v2, v4)` — the
//!   motivating deficiency of vanilla PPR that node reweighting fixes.
//!
//! Nodes are 0-indexed here: `v1 ↦ 0`, …, `v9 ↦ 8`.

use crate::{Graph, GraphKind};

/// Index of `v1` in the example graph (nodes are `v1 ↦ 0` … `v9 ↦ 8`).
pub const V1: u32 = 0;
/// Index of `v2`.
pub const V2: u32 = 1;
/// Index of `v3`.
pub const V3: u32 = 2;
/// Index of `v4`.
pub const V4: u32 = 3;
/// Index of `v5`.
pub const V5: u32 = 4;
/// Index of `v6`.
pub const V6: u32 = 5;
/// Index of `v7`.
pub const V7: u32 = 6;
/// Index of `v8`.
pub const V8: u32 = 7;
/// Index of `v9`.
pub const V9: u32 = 8;

/// The undirected edge list of the Fig. 1 reconstruction.
pub fn example_edges() -> Vec<(u32, u32)> {
    vec![
        (V1, V2),
        (V1, V4),
        (V1, V5),
        (V2, V3),
        (V2, V5),
        (V3, V4),
        (V4, V5),
        (V5, V6),
        (V6, V7),
        (V7, V8),
        (V8, V9),
    ]
}

/// Builds the 9-node example graph of the paper's Fig. 1 (undirected).
pub fn example_graph() -> Graph {
    Graph::from_edges(9, &example_edges(), GraphKind::Undirected)
        .expect("example graph edge list is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_graph_shape() {
        let g = example_graph();
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(g.num_edges(), 11);
        g.validate().unwrap();
    }

    #[test]
    fn v2_v4_share_three_common_neighbors_and_are_not_adjacent() {
        let g = example_graph();
        assert!(!g.has_arc(V2, V4));
        assert_eq!(g.common_out_neighbors(V2, V4), 3);
    }

    #[test]
    fn v7_v9_share_one_common_neighbor_and_are_not_adjacent() {
        let g = example_graph();
        assert!(!g.has_arc(V7, V9));
        assert_eq!(g.common_out_neighbors(V7, V9), 1);
    }

    #[test]
    fn cluster_nodes_have_higher_degree_than_tail() {
        let g = example_graph();
        assert!(g.out_degree(V2) > g.out_degree(V9));
        assert!(g.out_degree(V5) >= 4);
        assert_eq!(g.out_degree(V9), 1);
    }
}
