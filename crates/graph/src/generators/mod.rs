//! Synthetic graph generators.
//!
//! These stand in for the paper's real datasets (Wiki, BlogCatalog, Youtube,
//! TWeibo, Orkut, Twitter, Friendster, VK, Digg), which are not redistributed
//! here.  Each generator is deterministic given a seed, so the benchmark
//! harnesses produce reproducible tables.
//!
//! * [`erdos_renyi`] / [`erdos_renyi_nm`] — the random-graph family the paper
//!   itself uses for its scalability study (Fig. 10).
//! * [`barabasi_albert`] — heavy-tailed degree distributions, the regime in
//!   which degree reweighting matters most.
//! * [`stochastic_block_model`] — community structure with planted labels,
//!   driving the link-prediction / classification / reconstruction tasks.
//! * [`watts_strogatz`] — small-world graphs for additional coverage.
//! * [`example`] — the 9-node graph of the paper's Fig. 1.
//! * [`evolving`] — old/new edge splits for the dynamic link-prediction
//!   experiment (Fig. 9).
//! * [`simple`] — deterministic toy graphs (paths, cycles, stars, grids)
//!   used heavily by unit tests.

pub mod evolving;
pub mod example;
pub mod simple;

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::{Graph, GraphError, GraphKind, NodeId, Result};

/// Deterministic RNG used by every generator in this crate.
pub(crate) fn rng_from_seed(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// G(n, p) Erdős–Rényi graph: every ordered (directed) or unordered
/// (undirected) pair is an edge independently with probability `p`.
///
/// Uses geometric skipping so the cost is proportional to the number of
/// generated edges rather than to `n²`, which keeps the Fig. 10 scalability
/// sweeps fast.
pub fn erdos_renyi(num_nodes: usize, p: f64, kind: GraphKind, seed: u64) -> Result<Graph> {
    if num_nodes == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter(format!(
            "p must be in [0,1], got {p}"
        )));
    }
    let mut rng = rng_from_seed(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    if p > 0.0 {
        let n = num_nodes as u64;
        let total_pairs: u64 = match kind {
            GraphKind::Directed => n * (n - 1),
            GraphKind::Undirected => n * (n - 1) / 2,
        };
        let log_q = (1.0 - p).ln();
        let mut idx: i64 = -1;
        loop {
            // Geometric skip: number of non-edges until the next edge.
            let r: f64 = rng.gen::<f64>();
            let skip = if p >= 1.0 {
                1.0
            } else {
                ((1.0 - r).ln() / log_q).floor() + 1.0
            };
            idx += skip as i64;
            if idx as u64 >= total_pairs {
                break;
            }
            let (u, v) = match kind {
                GraphKind::Directed => decode_directed_pair(idx as u64, n),
                GraphKind::Undirected => decode_undirected_pair(idx as u64, n),
            };
            edges.push((u as NodeId, v as NodeId));
        }
    }
    Graph::from_edges(num_nodes, &edges, kind)
}

/// G(n, m) Erdős–Rényi graph with exactly (approximately, after removing
/// duplicates) `num_edges` edges, the variant used by the paper's
/// scalability experiment where `n` and `m` are varied independently.
pub fn erdos_renyi_nm(
    num_nodes: usize,
    num_edges: usize,
    kind: GraphKind,
    seed: u64,
) -> Result<Graph> {
    if num_nodes < 2 {
        return Err(GraphError::InvalidParameter("need at least 2 nodes".into()));
    }
    let max_pairs = match kind {
        GraphKind::Directed => num_nodes * (num_nodes - 1),
        GraphKind::Undirected => num_nodes * (num_nodes - 1) / 2,
    };
    if num_edges > max_pairs {
        return Err(GraphError::InvalidParameter(format!(
            "requested {num_edges} edges but only {max_pairs} pairs exist"
        )));
    }
    let mut rng = rng_from_seed(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(num_edges);
    // Sample with replacement and rely on Graph's de-duplication; for the
    // sparse regimes we target (m << n^2) the duplicate rate is negligible,
    // and we oversample slightly to compensate.
    let oversample = num_edges + num_edges / 50 + 8;
    while edges.len() < oversample {
        let u = rng.gen_range(0..num_nodes) as NodeId;
        let v = rng.gen_range(0..num_nodes) as NodeId;
        if u == v {
            continue;
        }
        let (u, v) = match kind {
            GraphKind::Directed => (u, v),
            GraphKind::Undirected => (u.min(v), u.max(v)),
        };
        edges.push((u, v));
    }
    edges.sort_unstable();
    edges.dedup();
    let mut rng2 = rng_from_seed(seed ^ 0x9e37_79b9_7f4a_7c15);
    edges.shuffle(&mut rng2);
    edges.truncate(num_edges);
    Graph::from_edges(num_nodes, &edges, kind)
}

/// Barabási–Albert preferential-attachment graph: starts from a small clique
/// and attaches each new node to `m_attach` existing nodes with probability
/// proportional to their current degree.
pub fn barabasi_albert(
    num_nodes: usize,
    m_attach: usize,
    kind: GraphKind,
    seed: u64,
) -> Result<Graph> {
    if m_attach == 0 {
        return Err(GraphError::InvalidParameter("m_attach must be >= 1".into()));
    }
    if num_nodes <= m_attach {
        return Err(GraphError::InvalidParameter(format!(
            "num_nodes ({num_nodes}) must exceed m_attach ({m_attach})"
        )));
    }
    let mut rng = rng_from_seed(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(num_nodes * m_attach);
    // Repeated-endpoint list implements preferential attachment: a node
    // appears once per incident edge, so sampling uniformly from the list is
    // degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * num_nodes * m_attach);
    // Seed clique over the first m_attach + 1 nodes.
    for u in 0..=(m_attach as NodeId) {
        for v in 0..u {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (m_attach + 1)..num_nodes {
        let u = u as NodeId;
        // A Vec with a linear dedup scan, not a HashSet: m_attach is tiny,
        // and HashSet iteration order is randomized per process, which made
        // the emitted edge order (and hence the graph) nondeterministic for
        // a fixed seed.
        let mut targets: Vec<NodeId> = Vec::with_capacity(m_attach);
        while targets.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != u && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((u, t));
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    Graph::from_edges(num_nodes, &edges, kind)
}

/// Stochastic block model with `block_sizes.len()` communities.
///
/// Within-community pairs are edges with probability `p_in`, cross-community
/// pairs with probability `p_out`.  Returns the graph and the community
/// assignment of every node; [`planted_labels`] turns the assignment into a
/// (possibly noisy, possibly multi-label) label set for node classification.
pub fn stochastic_block_model(
    block_sizes: &[usize],
    p_in: f64,
    p_out: f64,
    kind: GraphKind,
    seed: u64,
) -> Result<(Graph, Vec<u32>)> {
    if block_sizes.is_empty() || block_sizes.contains(&0) {
        return Err(GraphError::InvalidParameter(
            "block sizes must be non-empty and positive".into(),
        ));
    }
    for &p in &[p_in, p_out] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidParameter(format!(
                "probabilities must be in [0,1], got {p}"
            )));
        }
    }
    let num_nodes: usize = block_sizes.iter().sum();
    let mut community = vec![0u32; num_nodes];
    let mut start = 0usize;
    for (c, &size) in block_sizes.iter().enumerate() {
        for node in start..start + size {
            community[node] = c as u32;
        }
        start += size;
    }
    let mut rng = rng_from_seed(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for u in 0..num_nodes {
        let range_start = if kind.is_directed() { 0 } else { u + 1 };
        for v in range_start..num_nodes {
            if u == v {
                continue;
            }
            let p = if community[u] == community[v] {
                p_in
            } else {
                p_out
            };
            if rng.gen::<f64>() < p {
                edges.push((u as NodeId, v as NodeId));
            }
        }
    }
    let graph = Graph::from_edges(num_nodes, &edges, kind)?;
    Ok((graph, community))
}

/// Turns a community assignment into per-node label sets for the node
/// classification task.  With probability `noise` a node receives a uniformly
/// random label instead of its community label; with probability
/// `extra_label_prob` it additionally receives a second random label,
/// exercising the multi-label code path (the paper's datasets are
/// multi-label).
pub fn planted_labels(
    community: &[u32],
    num_labels: u32,
    noise: f64,
    extra_label_prob: f64,
    seed: u64,
) -> Vec<Vec<u32>> {
    let mut rng = rng_from_seed(seed);
    community
        .iter()
        .map(|&c| {
            let primary = if rng.gen::<f64>() < noise {
                rng.gen_range(0..num_labels)
            } else {
                c % num_labels
            };
            let mut labels = vec![primary];
            if rng.gen::<f64>() < extra_label_prob {
                let extra = rng.gen_range(0..num_labels);
                if extra != primary {
                    labels.push(extra);
                }
            }
            labels
        })
        .collect()
}

/// Watts–Strogatz small-world graph: a ring lattice where each node connects
/// to its `k_ring` nearest neighbours, with each edge rewired with
/// probability `beta`.
pub fn watts_strogatz(num_nodes: usize, k_ring: usize, beta: f64, seed: u64) -> Result<Graph> {
    if !k_ring.is_multiple_of(2) || k_ring == 0 {
        return Err(GraphError::InvalidParameter(
            "k_ring must be a positive even number".into(),
        ));
    }
    if num_nodes <= k_ring {
        return Err(GraphError::InvalidParameter(
            "num_nodes must exceed k_ring".into(),
        ));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter(format!(
            "beta must be in [0,1], got {beta}"
        )));
    }
    let mut rng = rng_from_seed(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(num_nodes * k_ring / 2);
    for u in 0..num_nodes {
        for offset in 1..=(k_ring / 2) {
            let v = (u + offset) % num_nodes;
            if rng.gen::<f64>() < beta {
                // Rewire to a uniformly random non-self target.
                let mut w = rng.gen_range(0..num_nodes);
                while w == u {
                    w = rng.gen_range(0..num_nodes);
                }
                edges.push((u as NodeId, w as NodeId));
            } else {
                edges.push((u as NodeId, v as NodeId));
            }
        }
    }
    Graph::from_edges(num_nodes, &edges, GraphKind::Undirected)
}

fn decode_directed_pair(idx: u64, n: u64) -> (u64, u64) {
    // Ordered pairs without self loops: row u has n-1 entries.
    let u = idx / (n - 1);
    let mut v = idx % (n - 1);
    if v >= u {
        v += 1;
    }
    (u, v)
}

fn decode_undirected_pair(idx: u64, n: u64) -> (u64, u64) {
    // Unordered pairs (u < v), lexicographic by u.  Solve for u such that
    // offset(u) <= idx < offset(u + 1) where offset(u) = u*n - u*(u+1)/2.
    let mut lo = 0u64;
    let mut hi = n - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let offset = mid * n - mid * (mid + 1) / 2;
        if offset <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let offset = u * n - u * (u + 1) / 2;
    let v = u + 1 + (idx - offset);
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_p_zero_has_no_edges() {
        let g = erdos_renyi(50, 0.0, GraphKind::Undirected, 1).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn erdos_renyi_edge_count_matches_expectation() {
        let n = 200;
        let p = 0.05;
        let g = erdos_renyi(n, p, GraphKind::Undirected, 42).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.num_edges() as f64;
        // within 25% of expectation for this size
        assert!(
            (actual - expected).abs() < 0.25 * expected,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    fn erdos_renyi_directed_edge_count() {
        let n = 150;
        let p = 0.03;
        let g = erdos_renyi(n, p, GraphKind::Directed, 7).unwrap();
        let expected = p * (n * (n - 1)) as f64;
        let actual = g.num_arcs() as f64;
        assert!((actual - expected).abs() < 0.3 * expected);
    }

    #[test]
    fn erdos_renyi_is_deterministic() {
        let a = erdos_renyi(100, 0.05, GraphKind::Undirected, 9).unwrap();
        let b = erdos_renyi(100, 0.05, GraphKind::Undirected, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn erdos_renyi_rejects_bad_p() {
        assert!(erdos_renyi(10, 1.5, GraphKind::Directed, 0).is_err());
        assert!(erdos_renyi(10, -0.1, GraphKind::Directed, 0).is_err());
    }

    #[test]
    fn erdos_renyi_nm_produces_requested_edges() {
        let g = erdos_renyi_nm(500, 2000, GraphKind::Directed, 3).unwrap();
        assert_eq!(g.num_arcs(), 2000);
        let g = erdos_renyi_nm(500, 1500, GraphKind::Undirected, 3).unwrap();
        assert_eq!(g.num_edges(), 1500);
    }

    #[test]
    fn erdos_renyi_nm_rejects_too_many_edges() {
        assert!(erdos_renyi_nm(5, 100, GraphKind::Undirected, 0).is_err());
    }

    #[test]
    fn barabasi_albert_has_heavy_tail() {
        let g = barabasi_albert(2000, 3, GraphKind::Undirected, 5).unwrap();
        let max_deg = g.out_degrees().into_iter().max().unwrap();
        let mean = g.num_arcs() as f64 / g.num_nodes() as f64;
        assert!(
            max_deg as f64 > 5.0 * mean,
            "max degree {max_deg} should dominate mean {mean}"
        );
        assert!(crate::stats::degree_gini(&g) > 0.2);
    }

    #[test]
    fn barabasi_albert_edge_count() {
        let n = 500;
        let m = 4;
        let g = barabasi_albert(n, m, GraphKind::Undirected, 11).unwrap();
        // Roughly m edges per added node plus the seed clique.
        let expected = (n - m - 1) * m + m * (m + 1) / 2;
        assert!((g.num_edges() as i64 - expected as i64).abs() <= (expected / 10) as i64);
    }

    #[test]
    fn barabasi_albert_rejects_bad_params() {
        assert!(barabasi_albert(5, 0, GraphKind::Undirected, 0).is_err());
        assert!(barabasi_albert(3, 5, GraphKind::Undirected, 0).is_err());
    }

    #[test]
    fn sbm_is_assortative() {
        let (g, community) =
            stochastic_block_model(&[100, 100], 0.08, 0.005, GraphKind::Undirected, 13).unwrap();
        let mut within = 0usize;
        let mut across = 0usize;
        for (u, v) in g.edges() {
            if community[u as usize] == community[v as usize] {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > 3 * across, "within={within}, across={across}");
        assert_eq!(community.len(), 200);
    }

    #[test]
    fn sbm_directed_has_asymmetric_arcs() {
        let (g, _) = stochastic_block_model(&[60, 60], 0.1, 0.01, GraphKind::Directed, 21).unwrap();
        let asym = g.arcs().filter(|&(u, v)| !g.has_arc(v, u)).count();
        assert!(asym > 0, "directed SBM should contain one-way arcs");
    }

    #[test]
    fn sbm_rejects_empty_blocks() {
        assert!(stochastic_block_model(&[], 0.1, 0.1, GraphKind::Directed, 0).is_err());
        assert!(stochastic_block_model(&[3, 0], 0.1, 0.1, GraphKind::Directed, 0).is_err());
    }

    #[test]
    fn planted_labels_mostly_match_communities() {
        let community: Vec<u32> = (0..1000).map(|i| (i % 4) as u32).collect();
        let labels = planted_labels(&community, 4, 0.1, 0.0, 77);
        let matches = labels
            .iter()
            .zip(&community)
            .filter(|(ls, &c)| ls.contains(&(c % 4)))
            .count();
        assert!(
            matches > 850,
            "only {matches} of 1000 labels match their community"
        );
    }

    #[test]
    fn planted_labels_can_be_multilabel() {
        let community: Vec<u32> = (0..500).map(|i| (i % 3) as u32).collect();
        let labels = planted_labels(&community, 6, 0.0, 0.5, 3);
        assert!(labels.iter().any(|ls| ls.len() > 1));
        assert!(labels.iter().all(|ls| !ls.is_empty()));
    }

    #[test]
    fn watts_strogatz_degree_is_k_when_beta_zero() {
        let g = watts_strogatz(60, 4, 0.0, 1).unwrap();
        for u in 0..60 {
            assert_eq!(g.out_degree(u), 4);
        }
    }

    #[test]
    fn watts_strogatz_rejects_odd_k() {
        assert!(watts_strogatz(10, 3, 0.1, 0).is_err());
    }

    #[test]
    fn decode_undirected_pair_is_bijective_prefix() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..(n * (n - 1) / 2) {
            let (u, v) = decode_undirected_pair(idx, n);
            assert!(u < v && v < n, "idx {idx} -> ({u},{v})");
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn decode_directed_pair_is_bijective_prefix() {
        let n = 6u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..(n * (n - 1)) {
            let (u, v) = decode_directed_pair(idx, n);
            assert!(u != v && u < n && v < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len() as u64, n * (n - 1));
    }
}
