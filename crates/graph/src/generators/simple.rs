//! Deterministic toy graphs used by unit tests and documentation examples.

use crate::{Graph, GraphError, GraphKind, NodeId, Result};

/// A directed path `0 -> 1 -> … -> n-1`.
pub fn directed_path(num_nodes: usize) -> Result<Graph> {
    let edges: Vec<(NodeId, NodeId)> = (0..num_nodes.saturating_sub(1))
        .map(|u| (u as NodeId, (u + 1) as NodeId))
        .collect();
    Graph::from_edges(num_nodes, &edges, GraphKind::Directed)
}

/// An undirected cycle over `num_nodes` nodes.
pub fn cycle(num_nodes: usize) -> Result<Graph> {
    if num_nodes < 3 {
        return Err(GraphError::InvalidParameter(
            "cycle needs at least 3 nodes".into(),
        ));
    }
    let edges: Vec<(NodeId, NodeId)> = (0..num_nodes)
        .map(|u| (u as NodeId, ((u + 1) % num_nodes) as NodeId))
        .collect();
    Graph::from_edges(num_nodes, &edges, GraphKind::Undirected)
}

/// An undirected star: node 0 is connected to every other node.
pub fn star(num_nodes: usize) -> Result<Graph> {
    if num_nodes < 2 {
        return Err(GraphError::InvalidParameter(
            "star needs at least 2 nodes".into(),
        ));
    }
    let edges: Vec<(NodeId, NodeId)> = (1..num_nodes).map(|v| (0, v as NodeId)).collect();
    Graph::from_edges(num_nodes, &edges, GraphKind::Undirected)
}

/// A complete undirected graph.
pub fn complete(num_nodes: usize) -> Result<Graph> {
    if num_nodes < 2 {
        return Err(GraphError::InvalidParameter(
            "complete graph needs at least 2 nodes".into(),
        ));
    }
    let mut edges = Vec::with_capacity(num_nodes * (num_nodes - 1) / 2);
    for u in 0..num_nodes {
        for v in (u + 1)..num_nodes {
            edges.push((u as NodeId, v as NodeId));
        }
    }
    Graph::from_edges(num_nodes, &edges, GraphKind::Undirected)
}

/// An undirected `rows x cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Result<Graph> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidParameter(
            "grid dimensions must be positive".into(),
        ));
    }
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges, GraphKind::Undirected)
}

/// Two cliques of size `clique_size` joined by a single bridge edge — a handy
/// worst case for community-sensitive methods.
pub fn barbell(clique_size: usize) -> Result<Graph> {
    if clique_size < 2 {
        return Err(GraphError::InvalidParameter(
            "cliques need at least 2 nodes".into(),
        ));
    }
    let n = 2 * clique_size;
    let mut edges = Vec::new();
    for offset in [0, clique_size] {
        for u in 0..clique_size {
            for v in (u + 1)..clique_size {
                edges.push(((offset + u) as NodeId, (offset + v) as NodeId));
            }
        }
    }
    edges.push(((clique_size - 1) as NodeId, clique_size as NodeId));
    Graph::from_edges(n, &edges, GraphKind::Undirected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_degrees() {
        let g = directed_path(5).unwrap();
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(6).unwrap();
        for u in 0..6 {
            assert_eq!(g.out_degree(u), 2);
        }
    }

    #[test]
    fn star_center_degree() {
        let g = star(8).unwrap();
        assert_eq!(g.out_degree(0), 7);
        for u in 1..8 {
            assert_eq!(g.out_degree(u), 1);
        }
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6).unwrap();
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(3, 4).unwrap();
        // horizontal: 3*3 = 9, vertical: 2*4 = 8
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.num_nodes(), 12);
    }

    #[test]
    fn barbell_has_bridge() {
        let g = barbell(4).unwrap();
        assert!(g.has_arc(3, 4));
        assert_eq!(g.num_edges(), 2 * 6 + 1);
    }

    #[test]
    fn degenerate_sizes_rejected() {
        assert!(cycle(2).is_err());
        assert!(star(1).is_err());
        assert!(complete(1).is_err());
        assert!(grid(0, 3).is_err());
        assert!(barbell(1).is_err());
    }
}
