//! Evolving-graph workloads for the dynamic link-prediction experiment
//! (paper Fig. 9 / Table 4).
//!
//! The paper embeds an *old* snapshot of a social network and predicts the
//! *new* links that appear in a later snapshot.  We reproduce the setup with
//! a two-phase stochastic block model: the old snapshot is an SBM sample, and
//! the new links are an independent SBM sample over the same communities
//! restricted to pairs that were not already connected.  Community structure
//! persisting across snapshots is exactly what makes the prediction task
//! solvable, mirroring the real datasets (VK friendships, Digg follows).

use rand::Rng;

use super::rng_from_seed;
use crate::{Graph, GraphError, GraphKind, NodeId, Result};

/// An evolving-graph instance: the old snapshot plus the new edges appearing
/// in the second snapshot.
#[derive(Debug, Clone)]
pub struct EvolvingGraph {
    /// The old snapshot, used to learn embeddings.
    pub old_graph: Graph,
    /// Edges present only in the new snapshot — the positives to predict.
    pub new_edges: Vec<(NodeId, NodeId)>,
    /// Community assignment shared by both snapshots.
    pub community: Vec<u32>,
}

/// Parameters of the evolving SBM generator.
#[derive(Debug, Clone)]
pub struct EvolvingSbmParams {
    /// Community sizes.
    pub block_sizes: Vec<usize>,
    /// Within-community edge probability of the old snapshot.
    pub p_in_old: f64,
    /// Cross-community edge probability of the old snapshot.
    pub p_out_old: f64,
    /// Within-community probability of a *new* edge appearing.
    pub p_in_new: f64,
    /// Cross-community probability of a *new* edge appearing.
    pub p_out_new: f64,
    /// Directed or undirected snapshots.
    pub kind: GraphKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvolvingSbmParams {
    fn default() -> Self {
        Self {
            block_sizes: vec![150, 150, 150],
            p_in_old: 0.06,
            p_out_old: 0.004,
            p_in_new: 0.02,
            p_out_new: 0.001,
            kind: GraphKind::Undirected,
            seed: 0,
        }
    }
}

/// Generates an evolving SBM instance.
pub fn evolving_sbm(params: &EvolvingSbmParams) -> Result<EvolvingGraph> {
    if params.block_sizes.is_empty() || params.block_sizes.contains(&0) {
        return Err(GraphError::InvalidParameter(
            "block sizes must be non-empty and positive".into(),
        ));
    }
    for &p in &[
        params.p_in_old,
        params.p_out_old,
        params.p_in_new,
        params.p_out_new,
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidParameter(format!(
                "probabilities must be in [0,1], got {p}"
            )));
        }
    }
    let num_nodes: usize = params.block_sizes.iter().sum();
    let mut community = vec![0u32; num_nodes];
    let mut start = 0usize;
    for (c, &size) in params.block_sizes.iter().enumerate() {
        for node in start..start + size {
            community[node] = c as u32;
        }
        start += size;
    }
    let mut rng = rng_from_seed(params.seed);
    let mut old_edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut new_edges: Vec<(NodeId, NodeId)> = Vec::new();
    for u in 0..num_nodes {
        let range_start = if params.kind.is_directed() { 0 } else { u + 1 };
        for v in range_start..num_nodes {
            if u == v {
                continue;
            }
            let same = community[u] == community[v];
            let p_old = if same {
                params.p_in_old
            } else {
                params.p_out_old
            };
            let p_new = if same {
                params.p_in_new
            } else {
                params.p_out_new
            };
            if rng.gen::<f64>() < p_old {
                old_edges.push((u as NodeId, v as NodeId));
            } else if rng.gen::<f64>() < p_new {
                new_edges.push((u as NodeId, v as NodeId));
            }
        }
    }
    let old_graph = Graph::from_edges(num_nodes, &old_edges, params.kind)?;
    Ok(EvolvingGraph {
        old_graph,
        new_edges,
        community,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_edges_absent_from_old_snapshot() {
        let inst = evolving_sbm(&EvolvingSbmParams::default()).unwrap();
        for &(u, v) in &inst.new_edges {
            assert!(
                !inst.old_graph.has_arc(u, v),
                "new edge ({u},{v}) already in old graph"
            );
        }
        assert!(!inst.new_edges.is_empty());
    }

    #[test]
    fn communities_cover_all_nodes() {
        let inst = evolving_sbm(&EvolvingSbmParams::default()).unwrap();
        assert_eq!(inst.community.len(), inst.old_graph.num_nodes());
        assert_eq!(inst.community.iter().copied().max().unwrap(), 2);
    }

    #[test]
    fn new_edges_are_mostly_within_communities() {
        let inst = evolving_sbm(&EvolvingSbmParams::default()).unwrap();
        let within = inst
            .new_edges
            .iter()
            .filter(|&&(u, v)| inst.community[u as usize] == inst.community[v as usize])
            .count();
        assert!(
            within * 2 > inst.new_edges.len(),
            "expected mostly intra-community new edges"
        );
    }

    #[test]
    fn directed_variant_generates_one_way_edges() {
        let params = EvolvingSbmParams {
            kind: GraphKind::Directed,
            seed: 5,
            ..Default::default()
        };
        let inst = evolving_sbm(&params).unwrap();
        assert!(inst.old_graph.kind().is_directed());
        assert!(!inst.new_edges.is_empty());
    }

    #[test]
    fn invalid_probability_rejected() {
        let params = EvolvingSbmParams {
            p_in_new: 1.5,
            ..Default::default()
        };
        assert!(evolving_sbm(&params).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = evolving_sbm(&EvolvingSbmParams::default()).unwrap();
        let b = evolving_sbm(&EvolvingSbmParams::default()).unwrap();
        assert_eq!(a.new_edges, b.new_edges);
        assert_eq!(a.old_graph, b.old_graph);
    }
}
