//! # nrp-graph
//!
//! Sparse graph substrate used by the NRP reproduction.
//!
//! The crate provides:
//!
//! * [`Graph`] — an immutable, compressed sparse row (CSR) representation of a
//!   directed or undirected graph with O(1) access to out-neighbours and
//!   in-neighbours, exactly the access pattern the NRP propagation
//!   (`X_i = (1-α) P X_{i-1} + X_1`) and the evaluation tasks need.
//! * [`GraphBuilder`] — a mutable edge accumulator with de-duplication and
//!   self-loop handling.
//! * [`generators`] — synthetic workloads standing in for the paper's
//!   datasets: Erdős–Rényi, Barabási–Albert, stochastic block models with
//!   planted labels, Watts–Strogatz, the 9-node example graph of Fig. 1 and
//!   an evolving-graph generator for the dynamic link-prediction experiment.
//! * [`io`] — plain-text edge-list and label-file readers/writers.
//!
//! Node identifiers are dense `u32` indices in `0..n`; this keeps the CSR
//! index arrays at 4 bytes per edge endpoint, which matters for the
//! million-edge synthetic graphs exercised by the scalability benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrAdjacency;
pub use error::GraphError;
pub use graph::{Graph, GraphKind};

/// Dense node identifier in `0..n`.
pub type NodeId = u32;

/// Convenience result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
