//! Compressed sparse row adjacency structure.
//!
//! [`CsrAdjacency`] stores one direction of a graph's adjacency: for every
//! node `u` the (sorted, de-duplicated) list of its successors.  It is the
//! storage behind both the out-adjacency and in-adjacency of [`crate::Graph`]
//! and the sparse operand of the `P · X` propagation kernels in
//! `nrp-linalg`.

use crate::{GraphError, NodeId, Result};

/// Immutable CSR adjacency: `indptr` has `n + 1` entries, the neighbours of
/// node `u` are `indices[indptr[u]..indptr[u + 1]]`, sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrAdjacency {
    num_nodes: usize,
    indptr: Vec<usize>,
    indices: Vec<NodeId>,
}

impl CsrAdjacency {
    /// Builds a CSR adjacency from a list of directed arcs `(src, dst)`.
    ///
    /// Arcs are sorted and de-duplicated; duplicate arcs collapse to one.
    /// Returns an error if any endpoint is `>= num_nodes` or if
    /// `num_nodes == 0`.
    pub fn from_arcs(num_nodes: usize, arcs: &[(NodeId, NodeId)]) -> Result<Self> {
        if num_nodes == 0 {
            return Err(GraphError::EmptyGraph);
        }
        for &(u, v) in arcs {
            if (u as usize) >= num_nodes {
                return Err(GraphError::NodeOutOfBounds {
                    node: u as u64,
                    num_nodes,
                });
            }
            if (v as usize) >= num_nodes {
                return Err(GraphError::NodeOutOfBounds {
                    node: v as u64,
                    num_nodes,
                });
            }
        }
        // Counting sort by source, then sort each row and dedup.
        let mut counts = vec![0usize; num_nodes + 1];
        for &(u, _) in arcs {
            counts[u as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            counts[i + 1] += counts[i];
        }
        let mut indices = vec![0 as NodeId; arcs.len()];
        let mut cursor = counts.clone();
        for &(u, v) in arcs {
            let pos = cursor[u as usize];
            indices[pos] = v;
            cursor[u as usize] += 1;
        }
        let mut indptr = Vec::with_capacity(num_nodes + 1);
        indptr.push(0);
        let mut write = 0usize;
        let mut dedup_indices = Vec::with_capacity(indices.len());
        for u in 0..num_nodes {
            let row = &mut indices[counts[u]..counts[u + 1]];
            row.sort_unstable();
            let mut prev: Option<NodeId> = None;
            for &v in row.iter() {
                if prev != Some(v) {
                    dedup_indices.push(v);
                    write += 1;
                    prev = Some(v);
                }
            }
            indptr.push(write);
        }
        Ok(Self {
            num_nodes,
            indptr,
            indices: dedup_indices,
        })
    }

    /// Builds an empty adjacency (no arcs) over `num_nodes` nodes.
    pub fn empty(num_nodes: usize) -> Result<Self> {
        Self::from_arcs(num_nodes, &[])
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of stored arcs (after de-duplication).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.indices.len()
    }

    /// The neighbours of `u`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.indices[self.indptr[u]..self.indptr[u + 1]]
    }

    /// Out-degree of `u` in this direction.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.indptr[u + 1] - self.indptr[u]
    }

    /// Whether the arc `(u, v)` is present (binary search).
    #[inline]
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The raw row-pointer array (`n + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The raw column-index array.
    #[inline]
    pub fn indices(&self) -> &[NodeId] {
        &self.indices
    }

    /// Iterates over all arcs `(src, dst)` in row order.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes).flat_map(move |u| {
            self.neighbors(u as NodeId)
                .iter()
                .map(move |&v| (u as NodeId, v))
        })
    }

    /// Returns the transposed adjacency (every arc reversed).
    pub fn transpose(&self) -> Self {
        let arcs: Vec<(NodeId, NodeId)> = self.arcs().map(|(u, v)| (v, u)).collect();
        // Arcs are within bounds by construction, so this cannot fail.
        Self::from_arcs(self.num_nodes, &arcs).expect("transpose of a valid CSR is valid")
    }

    /// Degree vector for all nodes.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_nodes)
            .map(|u| self.degree(u as NodeId))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrAdjacency {
        CsrAdjacency::from_arcs(4, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn neighbors_sorted_and_complete() {
        let csr = small();
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[2]);
        assert_eq!(csr.neighbors(2), &[3]);
        assert_eq!(csr.neighbors(3), &[0]);
        assert_eq!(csr.num_arcs(), 5);
    }

    #[test]
    fn duplicates_are_collapsed() {
        let csr = CsrAdjacency::from_arcs(3, &[(0, 1), (0, 1), (0, 2), (0, 2), (0, 2)]).unwrap();
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.num_arcs(), 2);
    }

    #[test]
    fn degree_matches_neighbor_len() {
        let csr = small();
        for u in 0..4 {
            assert_eq!(csr.degree(u), csr.neighbors(u).len());
        }
    }

    #[test]
    fn contains_is_exact() {
        let csr = small();
        assert!(csr.contains(0, 2));
        assert!(!csr.contains(2, 0));
        assert!(!csr.contains(1, 1));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let err = CsrAdjacency::from_arcs(3, &[(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NodeOutOfBounds {
                node: 5,
                num_nodes: 3
            }
        ));
    }

    #[test]
    fn empty_graph_rejected() {
        assert!(matches!(
            CsrAdjacency::from_arcs(0, &[]),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn transpose_reverses_arcs() {
        let csr = small();
        let t = csr.transpose();
        for (u, v) in csr.arcs() {
            assert!(t.contains(v, u));
        }
        assert_eq!(t.num_arcs(), csr.num_arcs());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let csr = small();
        assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn arcs_iterator_round_trips() {
        let csr = small();
        let arcs: Vec<_> = csr.arcs().collect();
        let rebuilt = CsrAdjacency::from_arcs(4, &arcs).unwrap();
        assert_eq!(rebuilt, csr);
    }

    #[test]
    fn empty_adjacency_has_no_arcs() {
        let csr = CsrAdjacency::empty(7).unwrap();
        assert_eq!(csr.num_nodes(), 7);
        assert_eq!(csr.num_arcs(), 0);
        for u in 0..7 {
            assert!(csr.neighbors(u).is_empty());
        }
    }

    #[test]
    fn degrees_vector() {
        let csr = small();
        assert_eq!(csr.degrees(), vec![2, 1, 1, 1]);
    }
}
