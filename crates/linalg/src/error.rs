//! Error type for linear-algebra operations.

use std::fmt;

/// Errors produced by dense and randomized linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation.
        operation: String,
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// A parameter was outside its valid range.
    InvalidParameter(String),
    /// An iterative routine failed to converge.
    NoConvergence {
        /// Name of the routine.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "shape mismatch in {operation}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            LinalgError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} did not converge after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_mismatch_message_includes_shapes() {
        let err = LinalgError::ShapeMismatch {
            operation: "matmul".into(),
            left: (2, 3),
            right: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn convergence_message() {
        let err = LinalgError::NoConvergence {
            routine: "jacobi",
            iterations: 100,
        };
        assert!(err.to_string().contains("jacobi"));
    }
}
