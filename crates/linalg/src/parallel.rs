//! Deterministic data-parallel execution primitives.
//!
//! Every heavy stage in the workspace — the randomized SVD's block matmuls,
//! STRAP's per-source forward pushes, random-walk generation — parallelizes
//! through the helpers in this module, and they all share one contract:
//!
//! > **The result is bitwise identical for every thread budget, including 1.**
//!
//! Three rules make that true:
//!
//! 1. Work is split into *chunks* whose boundaries depend only on the problem
//!    size (never on the thread count), so floating-point accumulations are
//!    always grouped the same way.
//! 2. Each chunk's result is computed by exactly one worker with a fixed
//!    internal iteration order, so a chunk's value does not depend on which
//!    worker ran it or when.
//! 3. Chunk results are merged (concatenated or folded) in ascending chunk
//!    order on the calling thread.
//!
//! Workers are `std::thread::scope` threads pulling chunk indices from an
//! atomic counter, which gives dynamic load balancing (important for skewed
//! workloads such as per-source PPR pushes) without sacrificing rule 2/3.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Chunk size used by the dense row-parallel kernels.  Any value works; this
/// one keeps scheduling overhead negligible while still splitting matrices of
/// a few thousand rows across a typical core count.
pub const ROW_CHUNK: usize = 128;

/// Chunk size used by the deterministic reductions (`transpose_matmul_with`,
/// `gram_with`).  Must stay fixed across calls: it defines the grouping of
/// the floating-point partial sums.
pub const REDUCE_CHUNK: usize = 4096;

/// Clamps a requested thread budget to something sensible for `work_items`
/// units of work (at least 1, at most one thread per item).
pub fn effective_threads(threads: usize, work_items: usize) -> usize {
    threads.max(1).min(work_items.max(1))
}

/// Splits `0..n` into ranges of `chunk_size` (the last may be shorter).
fn chunk_ranges(n: usize, chunk_size: usize) -> Vec<Range<usize>> {
    let chunk_size = chunk_size.max(1);
    (0..n.div_ceil(chunk_size))
        .map(|c| c * chunk_size..n.min((c + 1) * chunk_size))
        .collect()
}

/// Maps `f` over fixed chunks of `0..n` with up to `threads` workers and
/// returns the per-chunk results **in ascending chunk order**.
///
/// `chunk_size` must not be derived from `threads` — callers pass a constant
/// (or a pure function of `n`) so the chunk grid, and therefore any
/// order-sensitive computation downstream, is identical for every budget.
pub fn par_chunk_map<T, F>(n: usize, chunk_size: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n, chunk_size);
    let num_chunks = ranges.len();
    let threads = effective_threads(threads, num_chunks);
    if threads <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let ranges_ref = &ranges;
    let f_ref = &f;
    let next_ref = &next;
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let c = next_ref.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        local.push((c, f_ref(ranges_ref[c].clone())));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..num_chunks).map(|_| None).collect();
    for local in per_worker {
        for (c, value) in local {
            slots[c] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every chunk produces a result"))
        .collect()
}

/// Fallible variant of [`par_chunk_map`]: the first error **in chunk order**
/// is returned (workers still run every chunk, so side effects must be
/// idempotent; all callers here are pure).
pub fn try_par_chunk_map<T, E, F>(
    n: usize,
    chunk_size: usize,
    threads: usize,
    f: F,
) -> std::result::Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> std::result::Result<T, E> + Sync,
{
    par_chunk_map(n, chunk_size, threads, f)
        .into_iter()
        .collect()
}

/// Deterministic chunked map-reduce: maps fixed chunks of `0..n` in parallel,
/// then folds the chunk results **in ascending chunk order** on the calling
/// thread.  Returns `None` for `n == 0`.
pub fn par_reduce<T, F, G>(
    n: usize,
    chunk_size: usize,
    threads: usize,
    map: F,
    fold: G,
) -> Option<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
    G: FnMut(T, T) -> T,
{
    par_chunk_map(n, chunk_size, threads, map)
        .into_iter()
        .reduce(fold)
}

/// Fills a `rows x cols` row-major buffer where **each row is computed
/// independently** by `fill(row_index, row_slice)`.
///
/// Because a row's value never depends on the chunking, the output is bitwise
/// identical for every thread budget, and also identical to the plain
/// sequential loop `for i in 0..rows { fill(i, row_i) }`.
pub fn par_fill_rows<F>(rows: usize, cols: usize, threads: usize, fill: F) -> Vec<f64>
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let mut data = vec![0.0; rows * cols];
    if rows == 0 || cols == 0 {
        return data;
    }
    let threads = effective_threads(threads, rows.div_ceil(ROW_CHUNK));
    if threads <= 1 {
        for (i, row) in data.chunks_mut(cols).enumerate() {
            fill(i, row);
        }
        return data;
    }
    {
        // Hand out disjoint row blocks through a shared queue; each worker
        // fills whole rows, so assignment order cannot affect the values.
        let queue: Mutex<Vec<(usize, &mut [f64])>> = Mutex::new(
            data.chunks_mut(ROW_CHUNK * cols)
                .enumerate()
                .map(|(c, block)| (c * ROW_CHUNK, block))
                .rev()
                .collect(),
        );
        let queue_ref = &queue;
        let fill_ref = &fill;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(move || loop {
                    let item = queue_ref.lock().expect("row queue poisoned").pop();
                    match item {
                        Some((start_row, block)) => {
                            for (offset, row) in block.chunks_mut(cols).enumerate() {
                                fill_ref(start_row + offset, row);
                            }
                        }
                        None => break,
                    }
                });
            }
        });
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_map_preserves_order_for_any_thread_count() {
        let expected: Vec<Vec<usize>> = chunk_ranges(37, 5)
            .into_iter()
            .map(|r| r.collect())
            .collect();
        for threads in [1usize, 2, 3, 8] {
            let got = par_chunk_map(37, 5, threads, |r| r.collect::<Vec<usize>>());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn reduce_is_bitwise_invariant_across_thread_counts() {
        // Sum of many values whose naive total depends on grouping; with the
        // fixed chunk grid every budget must agree bit-for-bit.
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 37) % 101) as f64 * 1e-3 + 1e9)
            .collect();
        let sum = |threads: usize| {
            par_reduce(
                values.len(),
                REDUCE_CHUNK,
                threads,
                |r| r.map(|i| values[i]).fold(0.0_f64, |a, b| a + b),
                |a, b| a + b,
            )
            .unwrap()
        };
        let reference = sum(1);
        for threads in [2usize, 3, 7] {
            assert_eq!(
                sum(threads).to_bits(),
                reference.to_bits(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn fill_rows_matches_sequential_loop() {
        let rows = 301;
        let cols = 7;
        let fill = |i: usize, row: &mut [f64]| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * cols + j) as f64 * 0.5 - 3.0;
            }
        };
        let sequential = par_fill_rows(rows, cols, 1, fill);
        for threads in [2usize, 4, 16] {
            assert_eq!(par_fill_rows(rows, cols, threads, fill), sequential);
        }
    }

    #[test]
    fn try_chunk_map_returns_first_error_in_chunk_order() {
        let result: std::result::Result<Vec<usize>, usize> = try_par_chunk_map(100, 10, 4, |r| {
            if r.start >= 30 {
                Err(r.start)
            } else {
                Ok(r.start)
            }
        });
        assert_eq!(result, Err(30));
        let ok: std::result::Result<Vec<usize>, usize> =
            try_par_chunk_map(40, 10, 2, |r| Ok::<usize, usize>(r.start));
        assert_eq!(ok.unwrap(), vec![0, 10, 20, 30]);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(par_chunk_map(0, 4, 3, |r| r.len()).is_empty());
        assert_eq!(par_reduce(0, 4, 2, |_| 1usize, |a, b| a + b), None);
        assert!(par_fill_rows(0, 5, 4, |_, _| {}).is_empty());
        assert_eq!(effective_threads(0, 10), 1);
        assert_eq!(effective_threads(16, 3), 3);
    }
}
