//! Deterministic data-parallel execution primitives.
//!
//! Every heavy stage in the workspace — the randomized SVD's block matmuls,
//! STRAP's per-source forward pushes, random-walk generation — parallelizes
//! through the helpers in this module, and they all share one contract:
//!
//! > **The result is bitwise identical for every thread budget, including 1.**
//!
//! Three rules make that true:
//!
//! 1. Work is split into *chunks* whose boundaries depend only on the problem
//!    size (never on the thread count), so floating-point accumulations are
//!    always grouped the same way.
//! 2. Each chunk's result is computed by exactly one worker with a fixed
//!    internal iteration order, so a chunk's value does not depend on which
//!    worker ran it or when.
//! 3. Chunk results are merged (concatenated or folded) in ascending chunk
//!    order on the calling thread.
//!
//! Workers pull chunk indices from an atomic counter, which gives dynamic
//! load balancing (important for skewed workloads such as per-source PPR
//! pushes) without sacrificing rule 2/3.
//!
//! ## Execution policies: scoped threads vs. the persistent [`WorkerPool`]
//!
//! *Where* the workers come from is orthogonal to the contract above and is
//! captured by [`Exec`]:
//!
//! * [`Exec::scoped`] spawns fresh `std::thread::scope` workers per call —
//!   zero setup, but an embedding that issues thousands of small kernel calls
//!   (20 propagation hops × block-Krylov iterations × CGS2 passes) pays the
//!   spawn/join cost every time.
//! * [`Exec::pooled`] dispatches the same fixed chunk grid to a long-lived
//!   [`WorkerPool`], so thread creation is paid **once per pool**, not once
//!   per kernel invocation.  `EmbedContext` in `nrp-core` owns such a pool
//!   and hands a pooled `Exec` to every stage.
//!
//! Because the chunk grid, the one-worker-per-chunk rule and the in-order
//! merge are identical under both policies, **scoped and pooled execution
//! produce bitwise identical results** — the pool only moves the wall clock.

// The pool hands lifetime-erased job pointers to long-lived workers and the
// fill-rows kernel writes disjoint row blocks of one buffer through a shared
// pointer.  Both are narrowly scoped `unsafe` with documented invariants
// (dispatch blocks until every worker finished; chunk indices are handed out
// uniquely by an atomic counter); everything else in this crate is safe code.
#![allow(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

use nrp_obs::{clock, Counter, Gauge, Histogram, MetricsHandle};

/// Chunk size used by the dense row-parallel kernels.  Any value works; this
/// one keeps scheduling overhead negligible while still splitting matrices of
/// a few thousand rows across a typical core count.
pub const ROW_CHUNK: usize = 128;

/// Chunk size used by the deterministic reductions (`transpose_matmul_with`,
/// `gram_with`).  Must stay fixed across calls: it defines the grouping of
/// the floating-point partial sums.
pub const REDUCE_CHUNK: usize = 4096;

/// Clamps a requested thread budget to something sensible for `work_items`
/// units of work (at least 1, at most one thread per item).
pub fn effective_threads(threads: usize, work_items: usize) -> usize {
    threads.max(1).min(work_items.max(1))
}

/// Splits `0..n` into ranges of `chunk_size` (the last may be shorter).
fn chunk_ranges(n: usize, chunk_size: usize) -> Vec<Range<usize>> {
    let chunk_size = chunk_size.max(1);
    (0..n.div_ceil(chunk_size))
        .map(|c| c * chunk_size..n.min((c + 1) * chunk_size))
        .collect()
}

std::thread_local! {
    /// True while the current thread is executing chunks of a pool job (as a
    /// pool worker *or* as the dispatching thread).  A nested dispatch from
    /// inside a chunk falls back to sequential execution instead of
    /// deadlocking on the single job slot.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

/// A lifetime-erased pool job: the chunk closure, the shared chunk counter
/// and the chunk count.
///
/// The `'static` lifetimes are a fiction established by the dispatcher, which
/// guarantees (via [`DispatchGuard`]) that no worker holds these references
/// after `WorkerPool::run` returns — including when the dispatching closure
/// unwinds.
#[derive(Clone, Copy)]
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    next: &'static AtomicUsize,
    num_chunks: usize,
}

struct Slot {
    /// Bumped once per dispatched job so sleeping workers can tell a new job
    /// from the one they already completed.
    epoch: u64,
    /// The job of the current epoch, cleared by the dispatcher as soon as the
    /// chunk counter is exhausted so late-waking workers skip it.
    job: Option<Job>,
    /// How many more pool workers may still join the current job (enforces
    /// the dispatcher's thread budget).
    open_slots: usize,
    /// Workers currently executing chunks of the current job.
    outstanding: usize,
    /// A dispatch is in progress; concurrent dispatchers queue on `free`.
    busy: bool,
    /// A worker panicked while running the current job.
    panicked: bool,
    shutdown: bool,
}

/// Pool telemetry, resolved once at construction (no-ops unless the pool
/// was built via [`WorkerPool::new_with_metrics`] with an enabled handle).
/// Durations flow one way — into the instruments — so the determinism
/// contract is untouched.
#[derive(Default)]
struct PoolMetrics {
    /// Workers engaged in the current job, dispatcher included (0 idle).
    busy: Gauge,
    /// The pool's maximum parallelism.
    capacity: Gauge,
    /// Total jobs dispatched through the pool.
    dispatches: Counter,
    /// Time a dispatcher spent waiting for the single job slot, in µs.
    dispatch_wait_us: Histogram,
}

struct PoolShared {
    /// Every acquisition recovers from poisoning via
    /// `unwrap_or_else(PoisonError::into_inner)` rather than panicking: the
    /// critical sections below touch only `Slot`'s plain integers and flags
    /// (job closures run *outside* the lock, wrapped in `catch_unwind`), so
    /// a poisoned mutex cannot leave `Slot` in a torn state and the serving
    /// path must not die over one.
    slot: Mutex<Slot>,
    /// Workers wait here for a new job epoch.
    work: Condvar,
    /// The dispatcher waits here for `outstanding` to return to zero.
    done: Condvar,
    /// Concurrent dispatchers wait here for the job slot to free up.
    free: Condvar,
    metrics: PoolMetrics,
}

/// A persistent pool of worker threads executing deterministic chunk grids.
///
/// The pool exists purely to amortize thread creation: a job is the same
/// `(chunk grid, closure)` pair the scoped path runs, fed through the same
/// atomic-counter protocol, so results are bitwise identical to scoped (and
/// sequential) execution.  Create one pool per long-running computation (an
/// embedding, a sweep) and reuse it for every kernel call.
///
/// A pool created with [`WorkerPool::new`]`(capacity)` spawns `capacity - 1`
/// helper threads; the dispatching thread itself is always the remaining
/// worker, so `capacity` is the maximum parallelism of a job.  Dispatches are
/// serialized: if the pool is already running a job, the next dispatcher
/// blocks until the slot frees (and a *nested* dispatch from inside a running
/// chunk degrades to sequential execution instead of deadlocking).
///
/// Dropping the pool shuts the workers down and joins them.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with the given total parallelism (clamped to at least
    /// 1).  `capacity - 1` helper threads are spawned immediately; the
    /// dispatching thread supplies the final unit of parallelism.
    ///
    /// A helper thread that fails to spawn (resource exhaustion) is simply
    /// not part of the pool: [`WorkerPool::capacity`] reports what was
    /// actually obtained, and a smaller pool runs every job correctly —
    /// results never depend on the worker count.
    pub fn new(capacity: usize) -> Self {
        Self::new_with_metrics(capacity, &MetricsHandle::noop())
    }

    /// Like [`WorkerPool::new`], but reporting utilization into `metrics`:
    /// a `nrp_pool_workers_busy` gauge (workers engaged in the current job),
    /// `nrp_pool_capacity`, a `nrp_pool_dispatches_total` counter, and a
    /// `nrp_pool_dispatch_wait_us` histogram of the time dispatchers spend
    /// queued on the single job slot.  With a disabled handle this is
    /// exactly [`WorkerPool::new`].
    pub fn new_with_metrics(capacity: usize, metrics: &MetricsHandle) -> Self {
        let helpers = capacity.max(1) - 1;
        let pool_metrics = PoolMetrics {
            busy: metrics.gauge(
                "nrp_pool_workers_busy",
                "Workers engaged in the current pool job (dispatcher included).",
            ),
            capacity: metrics.gauge(
                "nrp_pool_capacity",
                "Maximum parallelism of the worker pool.",
            ),
            dispatches: metrics.counter(
                "nrp_pool_dispatches_total",
                "Jobs dispatched through the worker pool.",
            ),
            dispatch_wait_us: metrics.histogram(
                "nrp_pool_dispatch_wait_us",
                "Time a dispatcher waited for the pool's job slot, in microseconds.",
            ),
        };
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                open_slots: 0,
                outstanding: 0,
                busy: false,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            free: Condvar::new(),
            metrics: pool_metrics,
        });
        let handles: Vec<JoinHandle<()>> = (0..helpers)
            .filter_map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nrp-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .ok()
            })
            .collect();
        shared.metrics.capacity.set(handles.len() as u64 + 1);
        Self { shared, handles }
    }

    /// The maximum parallelism of a job: helper threads plus the dispatcher.
    pub fn capacity(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f(c)` for every chunk index `c` in `0..num_chunks`, using up to
    /// `extra_workers` pool threads alongside the calling thread.
    ///
    /// Each chunk index is handed to exactly one worker by an atomic counter;
    /// the call returns only after every chunk has completed.  Panics from
    /// `f` are re-raised on the calling thread (the pool itself survives).
    fn run(&self, extra_workers: usize, num_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        let extra = extra_workers.min(self.handles.len());
        if extra == 0 || num_chunks <= 1 || IN_POOL_JOB.with(Cell::get) {
            for c in 0..num_chunks {
                f(c);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let job = Job {
            // SAFETY: lifetime erasure only.  The reference handed to workers
            // is valid for the whole dispatch because `DispatchGuard` (dropped
            // below, also on unwind) clears the job slot and blocks until
            // `outstanding == 0` — no worker can touch `f` after that.
            f: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
            },
            // SAFETY: same erasure, same guarantee — `next` lives on this
            // stack frame until `DispatchGuard` has drained every worker.
            next: unsafe { std::mem::transmute::<&AtomicUsize, &'static AtomicUsize>(&next) },
            num_chunks,
        };
        // Telemetry only: how long this dispatcher queued on the job slot.
        // The clock is read through the designated owner (`nrp_obs::clock`)
        // and the value flows one way into the histogram, never into results.
        let wait_start = self
            .shared
            .metrics
            .dispatch_wait_us
            .is_active()
            .then(clock::now);
        {
            let mut slot = self
                .shared
                .slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            while slot.busy {
                slot = self
                    .shared
                    .free
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            slot.busy = true;
            slot.panicked = false;
            slot.epoch = slot.epoch.wrapping_add(1);
            slot.open_slots = extra;
            slot.job = Some(job);
            self.shared.work.notify_all();
        }
        if let Some(started) = wait_start {
            self.shared
                .metrics
                .dispatch_wait_us
                .observe(clock::micros_since(started));
        }
        self.shared.metrics.dispatches.inc();
        self.shared.metrics.busy.set(extra as u64 + 1);
        let guard = DispatchGuard {
            shared: &self.shared,
        };
        IN_POOL_JOB.with(|flag| flag.set(true));
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= num_chunks {
                break;
            }
            f(c);
        }
        // Normal or unwinding, the guard clears the job, waits for the
        // workers, frees the slot and propagates any worker panic.
        drop(guard);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut slot = self
                .shared
                .slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            slot.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Ends a dispatch: clears the job slot, waits for every participating
/// worker to finish (so the lifetime-erased borrows in [`Job`] are dead),
/// releases the slot to queued dispatchers and re-raises worker panics.
/// Runs from `Drop` so an unwinding dispatch closure cannot leave workers
/// holding dangling references.
struct DispatchGuard<'p> {
    shared: &'p PoolShared,
}

impl Drop for DispatchGuard<'_> {
    fn drop(&mut self) {
        IN_POOL_JOB.with(|flag| flag.set(false));
        let mut slot = self
            .shared
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        slot.job = None;
        while slot.outstanding > 0 {
            slot = self
                .shared
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let panicked = slot.panicked;
        slot.busy = false;
        self.shared.free.notify_one();
        drop(slot);
        self.shared.metrics.busy.set(0);
        if panicked && !std::thread::panicking() {
            panic!("worker pool job panicked");
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen_epoch {
                    seen_epoch = slot.epoch;
                    if let Some(job) = slot.job {
                        if slot.open_slots > 0 {
                            slot.open_slots -= 1;
                            slot.outstanding += 1;
                            break job;
                        }
                    }
                    // Job already cleared or fully staffed: skip this epoch.
                    continue;
                }
                slot = shared
                    .work
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Catch panics so one bad chunk closure cannot kill the pool; the
        // dispatcher re-raises via the `panicked` flag.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            IN_POOL_JOB.with(|flag| flag.set(true));
            loop {
                let c = job.next.fetch_add(1, Ordering::Relaxed);
                if c >= job.num_chunks {
                    break;
                }
                (job.f)(c);
            }
        }));
        IN_POOL_JOB.with(|flag| flag.set(false));
        let mut slot = shared.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if result.is_err() {
            slot.panicked = true;
        }
        slot.outstanding -= 1;
        if slot.outstanding == 0 {
            shared.done.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Exec
// ---------------------------------------------------------------------------

/// An execution policy: a thread budget plus (optionally) a persistent
/// [`WorkerPool`] to spend it on.
///
/// `Exec` is cheap to clone (the pool is behind an `Arc`) and is what the
/// `*_exec` kernels take.  The policy never affects results — only where the
/// worker threads come from:
///
/// * [`Exec::sequential`] — everything on the calling thread.
/// * [`Exec::scoped`] — fresh scoped threads per kernel call (the historical
///   behaviour of the `*_with(threads)` entry points).
/// * [`Exec::pooled`] — dispatch to a long-lived pool, paying thread-spawn
///   cost once per pool instead of once per call.
#[derive(Clone, Debug, Default)]
pub struct Exec {
    threads: usize,
    pool: Option<Arc<WorkerPool>>,
}

impl Exec {
    /// Runs everything on the calling thread.
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            pool: None,
        }
    }

    /// Spawns fresh scoped workers per kernel call, up to `threads` of them.
    pub fn scoped(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            pool: None,
        }
    }

    /// Dispatches kernel calls to `pool`, using up to `threads` workers
    /// (clamped to the pool's capacity at dispatch time).
    pub fn pooled(pool: Arc<WorkerPool>, threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            pool: Some(pool),
        }
    }

    /// The thread budget (at least 1).
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Returns the policy with a different thread budget, keeping the pool.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The attached pool, if any.
    pub fn pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// True if this policy can use more than one thread.
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }

    /// Runs `f(c)` for every `c in 0..num_chunks` under this policy.  Each
    /// chunk is executed by exactly one worker; the call returns after all
    /// chunks completed.
    fn run_chunks(&self, num_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        let workers = effective_threads(self.threads(), num_chunks);
        if workers <= 1 || num_chunks <= 1 {
            for c in 0..num_chunks {
                f(c);
            }
            return;
        }
        match &self.pool {
            Some(pool) => pool.run(workers - 1, num_chunks, f),
            None => scoped_run(workers, num_chunks, f),
        }
    }
}

/// The scoped-thread execution path: `workers - 1` spawned threads plus the
/// caller, all pulling chunk indices from one atomic counter.
fn scoped_run(workers: usize, num_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    let next = AtomicUsize::new(0);
    let next_ref = &next;
    std::thread::scope(|scope| {
        for _ in 1..workers {
            scope.spawn(move || loop {
                let c = next_ref.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks {
                    break;
                }
                f(c);
            });
        }
        loop {
            let c = next_ref.fetch_add(1, Ordering::Relaxed);
            if c >= num_chunks {
                break;
            }
            f(c);
        }
    });
}

// ---------------------------------------------------------------------------
// Chunked primitives
// ---------------------------------------------------------------------------

/// Maps `f` over fixed chunks of `0..n` under `exec` and returns the
/// per-chunk results **in ascending chunk order**.
///
/// `chunk_size` must not be derived from the thread budget — callers pass a
/// constant (or a pure function of `n`) so the chunk grid, and therefore any
/// order-sensitive computation downstream, is identical for every budget.
pub fn par_chunk_map_exec<T, F>(n: usize, chunk_size: usize, exec: &Exec, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n, chunk_size);
    let num_chunks = ranges.len();
    if !exec.is_parallel() || num_chunks <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let slots: Vec<OnceLock<T>> = (0..num_chunks).map(|_| OnceLock::new()).collect();
    let slots_ref = &slots;
    let ranges_ref = &ranges;
    let f_ref = &f;
    exec.run_chunks(num_chunks, &|c| {
        // The counter hands each index to exactly one worker, so the slot is
        // always empty here.
        let _ = slots_ref[c].set(f_ref(ranges_ref[c].clone()));
    });
    slots
        .into_iter()
        // nrp-lint: allow(P004) — cannot fire: run_chunks returns only after DispatchGuard drained every worker, and the atomic counter hands each chunk index to exactly one worker, which fills that slot
        .map(|slot| slot.into_inner().expect("every chunk produces a result"))
        .collect()
}

/// Maps `f` over fixed chunks of `0..n` with up to `threads` scoped workers
/// and returns the per-chunk results **in ascending chunk order** (see
/// [`par_chunk_map_exec`] for the pooled variant).
pub fn par_chunk_map<T, F>(n: usize, chunk_size: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(Range<usize>) -> T + Sync,
{
    par_chunk_map_exec(n, chunk_size, &Exec::scoped(threads), f)
}

/// Fallible variant of [`par_chunk_map_exec`]: the first error **in chunk
/// order** is returned (workers still run every chunk, so side effects must
/// be idempotent; all callers here are pure).
pub fn try_par_chunk_map_exec<T, E, F>(
    n: usize,
    chunk_size: usize,
    exec: &Exec,
    f: F,
) -> std::result::Result<Vec<T>, E>
where
    T: Send + Sync,
    E: Send + Sync,
    F: Fn(Range<usize>) -> std::result::Result<T, E> + Sync,
{
    par_chunk_map_exec(n, chunk_size, exec, f)
        .into_iter()
        .collect()
}

/// Fallible variant of [`par_chunk_map`] (scoped workers).
pub fn try_par_chunk_map<T, E, F>(
    n: usize,
    chunk_size: usize,
    threads: usize,
    f: F,
) -> std::result::Result<Vec<T>, E>
where
    T: Send + Sync,
    E: Send + Sync,
    F: Fn(Range<usize>) -> std::result::Result<T, E> + Sync,
{
    try_par_chunk_map_exec(n, chunk_size, &Exec::scoped(threads), f)
}

/// Deterministic chunked map-reduce under `exec`: maps fixed chunks of
/// `0..n` in parallel, then folds the chunk results **in ascending chunk
/// order** on the calling thread.  Returns `None` for `n == 0`.
pub fn par_reduce_exec<T, F, G>(
    n: usize,
    chunk_size: usize,
    exec: &Exec,
    map: F,
    fold: G,
) -> Option<T>
where
    T: Send + Sync,
    F: Fn(Range<usize>) -> T + Sync,
    G: FnMut(T, T) -> T,
{
    par_chunk_map_exec(n, chunk_size, exec, map)
        .into_iter()
        .reduce(fold)
}

/// Deterministic chunked map-reduce with up to `threads` scoped workers (see
/// [`par_reduce_exec`] for the pooled variant).
pub fn par_reduce<T, F, G>(
    n: usize,
    chunk_size: usize,
    threads: usize,
    map: F,
    fold: G,
) -> Option<T>
where
    T: Send + Sync,
    F: Fn(Range<usize>) -> T + Sync,
    G: FnMut(T, T) -> T,
{
    par_reduce_exec(n, chunk_size, &Exec::scoped(threads), map, fold)
}

/// A raw base pointer that may cross thread boundaries.  Only used to carve
/// **disjoint** row blocks out of one output buffer; see the safety argument
/// in [`par_fill_rows_exec`].
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
// SAFETY: the pointer is only dereferenced through disjoint, uniquely-owned
// sub-slices (one per chunk index), and the dispatching call blocks until all
// workers finished — standard scoped-write discipline.
unsafe impl Send for SendPtr {}
// SAFETY: shared access is only ever the `Copy` of the base address itself;
// every dereference goes through the per-chunk disjoint sub-slices described
// above, so concurrent `&SendPtr` use cannot alias a write.
unsafe impl Sync for SendPtr {}

/// Fills a `rows x cols` row-major buffer where **each row is computed
/// independently** by `fill(row_index, row_slice)`, under `exec`.
///
/// Because a row's value never depends on the chunking, the output is bitwise
/// identical for every thread budget, and also identical to the plain
/// sequential loop `for i in 0..rows { fill(i, row_i) }`.  Work is handed out
/// as fixed [`ROW_CHUNK`]-row blocks through the same lock-free chunk counter
/// as every other kernel (no queue, no mutex).
pub fn par_fill_rows_exec<F>(rows: usize, cols: usize, exec: &Exec, fill: F) -> Vec<f64>
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let mut data = vec![0.0; rows * cols];
    if rows == 0 || cols == 0 {
        return data;
    }
    let num_chunks = rows.div_ceil(ROW_CHUNK);
    if !exec.is_parallel() || num_chunks <= 1 {
        for (i, row) in data.chunks_mut(cols).enumerate() {
            fill(i, row);
        }
        return data;
    }
    let base = SendPtr(data.as_mut_ptr());
    let fill_ref = &fill;
    exec.run_chunks(num_chunks, &move |c| {
        // Capture the whole `SendPtr` (not the raw pointer field) so the
        // closure stays `Sync` under edition-2021 disjoint capture.
        let base = base;
        let start_row = c * ROW_CHUNK;
        let end_row = rows.min(start_row + ROW_CHUNK);
        // SAFETY: chunk `c` owns rows `start_row..end_row` exclusively — the
        // chunk counter hands each index to exactly one worker, the blocks of
        // different chunks are disjoint, and `run_chunks` returns (keeping
        // `data` alive and un-aliased) only after every chunk completed.
        let block = unsafe {
            std::slice::from_raw_parts_mut(
                base.0.add(start_row * cols),
                (end_row - start_row) * cols,
            )
        };
        for (offset, row) in block.chunks_mut(cols).enumerate() {
            fill_ref(start_row + offset, row);
        }
    });
    data
}

/// Fills a `rows x cols` row-major buffer with up to `threads` scoped
/// workers (see [`par_fill_rows_exec`] for the pooled variant).
pub fn par_fill_rows<F>(rows: usize, cols: usize, threads: usize, fill: F) -> Vec<f64>
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    par_fill_rows_exec(rows, cols, &Exec::scoped(threads), fill)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn execs(threads: usize) -> Vec<(&'static str, Exec)> {
        vec![
            ("scoped", Exec::scoped(threads)),
            (
                "pooled",
                Exec::pooled(Arc::new(WorkerPool::new(threads)), threads),
            ),
        ]
    }

    #[test]
    fn chunk_map_preserves_order_for_any_thread_count() {
        let expected: Vec<Vec<usize>> = chunk_ranges(37, 5)
            .into_iter()
            .map(|r| r.collect())
            .collect();
        for threads in [1usize, 2, 3, 8] {
            for (label, exec) in execs(threads) {
                let got = par_chunk_map_exec(37, 5, &exec, |r| r.collect::<Vec<usize>>());
                assert_eq!(got, expected, "{label}, threads = {threads}");
            }
        }
    }

    #[test]
    fn reduce_is_bitwise_invariant_across_thread_counts_and_policies() {
        // Sum of many values whose naive total depends on grouping; with the
        // fixed chunk grid every budget must agree bit-for-bit.
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 37) % 101) as f64 * 1e-3 + 1e9)
            .collect();
        let sum = |exec: &Exec| {
            par_reduce_exec(
                values.len(),
                REDUCE_CHUNK,
                exec,
                |r| r.map(|i| values[i]).fold(0.0_f64, |a, b| a + b),
                |a, b| a + b,
            )
            .unwrap()
        };
        let reference = sum(&Exec::sequential());
        for threads in [2usize, 3, 7] {
            for (label, exec) in execs(threads) {
                assert_eq!(
                    sum(&exec).to_bits(),
                    reference.to_bits(),
                    "{label}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn fill_rows_matches_sequential_loop() {
        let rows = 301;
        let cols = 7;
        let fill = |i: usize, row: &mut [f64]| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * cols + j) as f64 * 0.5 - 3.0;
            }
        };
        let sequential = par_fill_rows(rows, cols, 1, fill);
        for threads in [2usize, 4, 16] {
            for (label, exec) in execs(threads) {
                assert_eq!(
                    par_fill_rows_exec(rows, cols, &exec, fill),
                    sequential,
                    "{label}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn try_chunk_map_returns_first_error_in_chunk_order() {
        let result: std::result::Result<Vec<usize>, usize> = try_par_chunk_map(100, 10, 4, |r| {
            if r.start >= 30 {
                Err(r.start)
            } else {
                Ok(r.start)
            }
        });
        assert_eq!(result, Err(30));
        let ok: std::result::Result<Vec<usize>, usize> =
            try_par_chunk_map(40, 10, 2, |r| Ok::<usize, usize>(r.start));
        assert_eq!(ok.unwrap(), vec![0, 10, 20, 30]);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(par_chunk_map(0, 4, 3, |r| r.len()).is_empty());
        assert_eq!(par_reduce(0, 4, 2, |_| 1usize, |a, b| a + b), None);
        assert!(par_fill_rows(0, 5, 4, |_, _| {}).is_empty());
        assert_eq!(effective_threads(0, 10), 1);
        assert_eq!(effective_threads(16, 3), 3);
    }

    #[test]
    fn pool_survives_many_small_dispatches() {
        // The point of the pool: thousands of tiny jobs against one set of
        // threads.  Every dispatch must complete and agree with sequential.
        let pool = Arc::new(WorkerPool::new(4));
        let exec = Exec::pooled(Arc::clone(&pool), 4);
        for round in 0..500usize {
            let got = par_chunk_map_exec(23, 4, &exec, |r| r.start + round);
            let want: Vec<usize> = chunk_ranges(23, 4)
                .iter()
                .map(|r| r.start + round)
                .collect();
            assert_eq!(got, want, "round {round}");
        }
        assert_eq!(pool.capacity(), 4);
    }

    #[test]
    fn pool_is_shared_safely_across_dispatching_threads() {
        // Two threads dispatching into one pool serialize on the job slot
        // and both complete correctly.
        let pool = Arc::new(WorkerPool::new(3));
        std::thread::scope(|scope| {
            for t in 0..2 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let exec = Exec::pooled(pool, 3);
                    for _ in 0..100 {
                        let sums = par_chunk_map_exec(64, 8, &exec, |r| r.sum::<usize>());
                        let want: Vec<usize> = chunk_ranges(64, 8)
                            .iter()
                            .map(|r| r.clone().sum())
                            .collect();
                        assert_eq!(sums, want, "dispatcher {t}");
                    }
                });
            }
        });
    }

    #[test]
    fn nested_dispatch_degrades_to_sequential_instead_of_deadlocking() {
        let pool = Arc::new(WorkerPool::new(2));
        let exec = Exec::pooled(Arc::clone(&pool), 2);
        let inner_exec = exec.clone();
        let got = par_chunk_map_exec(8, 2, &exec, move |r| {
            // A chunk that itself fans out: must run (sequentially) rather
            // than deadlock on the single job slot.
            par_chunk_map_exec(4, 1, &inner_exec, |inner| inner.start)
                .into_iter()
                .sum::<usize>()
                + r.start
        });
        assert_eq!(got, vec![6, 8, 10, 12]);
    }

    #[test]
    fn pool_worker_panic_propagates_and_pool_survives() {
        let pool = Arc::new(WorkerPool::new(4));
        let exec = Exec::pooled(Arc::clone(&pool), 4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_chunk_map_exec(32, 1, &exec, |r| {
                if r.start == 17 {
                    panic!("boom");
                }
                r.start
            })
        }));
        assert!(result.is_err(), "panic must propagate to the dispatcher");
        // The pool remains usable afterwards.
        let got = par_chunk_map_exec(8, 2, &exec, |r| r.start);
        assert_eq!(got, vec![0, 2, 4, 6]);
    }

    #[test]
    fn pooled_budget_is_clamped_to_pool_capacity() {
        let pool = Arc::new(WorkerPool::new(2));
        let exec = Exec::pooled(pool, 64);
        let got = par_chunk_map_exec(100, 7, &exec, |r| r.len());
        let want: Vec<usize> = chunk_ranges(100, 7).iter().map(|r| r.len()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_capacity_pool_runs_jobs_on_the_caller() {
        let pool = Arc::new(WorkerPool::new(1));
        assert_eq!(pool.capacity(), 1);
        let exec = Exec::pooled(pool, 8);
        let got = par_chunk_map_exec(10, 3, &exec, |r| r.start);
        assert_eq!(got, vec![0, 3, 6, 9]);
    }

    #[test]
    fn pool_reports_utilization_metrics() {
        use nrp_obs::SeriesValue;
        let handle = MetricsHandle::enabled();
        let pool = Arc::new(WorkerPool::new_with_metrics(3, &handle));
        let exec = Exec::pooled(Arc::clone(&pool), 3);
        for _ in 0..5 {
            let got = par_chunk_map_exec(64, 4, &exec, |r| r.len());
            assert_eq!(got.len(), 16);
        }
        let snap = handle.snapshot();
        let value = |name: &str| {
            let family = snap
                .families
                .iter()
                .find(|f| f.name == name)
                .unwrap_or_else(|| panic!("family {name} registered"));
            match &family.series[0].value {
                SeriesValue::Counter(v) | SeriesValue::Gauge(v) => *v,
                SeriesValue::Histogram(h) => h.count(),
            }
        };
        assert_eq!(value("nrp_pool_capacity"), 3);
        assert_eq!(value("nrp_pool_workers_busy"), 0, "idle after the job");
        assert_eq!(value("nrp_pool_dispatches_total"), 5);
        assert_eq!(
            value("nrp_pool_dispatch_wait_us"),
            5,
            "one wait observation per dispatch"
        );
        // A metrics-less pool still works and records nothing.
        let plain = Arc::new(WorkerPool::new(2));
        let got = par_chunk_map_exec(10, 2, &Exec::pooled(plain, 2), |r| r.start);
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn exec_accessors() {
        assert_eq!(Exec::sequential().threads(), 1);
        assert!(!Exec::sequential().is_parallel());
        assert_eq!(Exec::scoped(0).threads(), 1);
        let exec = Exec::scoped(2).with_threads(5);
        assert_eq!(exec.threads(), 5);
        assert!(exec.pool().is_none());
        let pooled = Exec::pooled(Arc::new(WorkerPool::new(2)), 2);
        assert!(pooled.pool().is_some());
        assert!(pooled.is_parallel());
    }
}
