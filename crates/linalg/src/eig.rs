//! Symmetric eigendecomposition by the cyclic Jacobi method.
//!
//! The matrices we decompose are small: the `k' x k'` (or `(q+1)·l x (q+1)·l`
//! for block Krylov) projections produced by the randomized SVD, where
//! `k' = k/2 <= 128` in all of the paper's configurations.  Cyclic Jacobi is
//! simple, unconditionally stable, and fast enough at these sizes.

use crate::{DenseMatrix, LinalgError, Result};

/// Eigendecomposition of a symmetric matrix: `a = V diag(λ) Vᵀ` with
/// eigenvalues sorted in descending order and eigenvectors stored as the
/// columns of `vectors`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Matrix whose `j`-th column is the eigenvector for `values[j]`.
    pub vectors: DenseMatrix,
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// The input is symmetrized (`(A + Aᵀ)/2`) to absorb round-off asymmetry from
/// upstream Gram-matrix computations.
pub fn symmetric_eigen(a: &DenseMatrix) -> Result<SymmetricEigen> {
    let (n, m) = a.shape();
    if n != m {
        return Err(LinalgError::ShapeMismatch {
            operation: "symmetric_eigen".into(),
            left: (n, m),
            right: (n, n),
        });
    }
    if n == 0 {
        return Err(LinalgError::InvalidParameter(
            "eigen of empty matrix".into(),
        ));
    }
    // Work on a symmetrized copy.
    let mut s = DenseMatrix::from_fn(n, n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
    let mut v = DenseMatrix::identity(n);
    let scale = s.max_abs().max(1.0);
    let tol = 1e-14 * scale;

    for _sweep in 0..MAX_SWEEPS {
        let mut off_diag = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off_diag = off_diag.max(s.get(p, q).abs());
            }
        }
        if off_diag <= tol {
            return Ok(finish(s, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = s.get(p, q);
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = s.get(p, p);
                let aqq = s.get(q, q);
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let sn = t * c;
                // Apply rotation to S on both sides.
                for k in 0..n {
                    let skp = s.get(k, p);
                    let skq = s.get(k, q);
                    s.set(k, p, c * skp - sn * skq);
                    s.set(k, q, sn * skp + c * skq);
                }
                for k in 0..n {
                    let spk = s.get(p, k);
                    let sqk = s.get(q, k);
                    s.set(p, k, c * spk - sn * sqk);
                    s.set(q, k, sn * spk + c * sqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - sn * vkq);
                    v.set(k, q, sn * vkp + c * vkq);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        routine: "jacobi eigen",
        iterations: MAX_SWEEPS,
    })
}

fn finish(s: DenseMatrix, v: DenseMatrix) -> SymmetricEigen {
    let n = s.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| s.get(i, i)).collect();
    order.sort_by(|&a, &b| {
        diag[b]
            .partial_cmp(&diag[a])
            .expect("eigenvalues are finite")
    });
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = DenseMatrix::from_fn(n, n, |i, j| v.get(i, order[j]));
    SymmetricEigen { values, vectors }
}

/// Computes only the top-`k` eigenpairs (convenience wrapper; the full
/// decomposition is computed internally since the matrices are small).
pub fn top_k_eigen(a: &DenseMatrix, k: usize) -> Result<SymmetricEigen> {
    let full = symmetric_eigen(a)?;
    let k = k.min(full.values.len());
    Ok(SymmetricEigen {
        values: full.values[..k].to_vec(),
        vectors: full.vectors.truncate_cols(k),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian_matrix;

    fn reconstruct(e: &SymmetricEigen) -> DenseMatrix {
        let n = e.vectors.rows();
        let k = e.values.len();
        let mut scaled = e.vectors.clone();
        for j in 0..k {
            for i in 0..n {
                scaled.set(i, j, scaled.get(i, j) * e.values[j]);
            }
        }
        scaled.matmul_transpose(&e.vectors).unwrap()
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        let g = gaussian_matrix(12, 12, 5);
        let a = g.add(&g.transpose()).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let err = reconstruct(&e).sub(&a).unwrap().frobenius_norm() / a.frobenius_norm();
        assert!(err < 1e-10, "relative reconstruction error {err}");
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let g = gaussian_matrix(10, 10, 8);
        let a = g.add(&g.transpose()).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!(crate::qr::orthogonality_defect(&e.vectors) < 1e-10);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let g = gaussian_matrix(15, 15, 21);
        let a = g.add(&g.transpose()).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trace_is_preserved() {
        let g = gaussian_matrix(9, 9, 33);
        let a = g.add(&g.transpose()).unwrap();
        let trace: f64 = (0..9).map(|i| a.get(i, i)).sum();
        let e = symmetric_eigen(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn top_k_truncates() {
        let g = gaussian_matrix(8, 8, 13);
        let a = g.add(&g.transpose()).unwrap();
        let e = top_k_eigen(&a, 3).unwrap();
        assert_eq!(e.values.len(), 3);
        assert_eq!(e.vectors.shape(), (8, 3));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(3, 4);
        assert!(symmetric_eigen(&a).is_err());
    }

    #[test]
    fn psd_gram_matrix_has_nonnegative_eigenvalues() {
        let g = gaussian_matrix(20, 6, 4);
        let gram = g.gram();
        let e = symmetric_eigen(&gram).unwrap();
        for &v in &e.values {
            assert!(v > -1e-9);
        }
    }
}
