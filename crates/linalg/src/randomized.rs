//! Randomized truncated SVD of large (sparse) linear operators.
//!
//! Two variants are provided:
//!
//! * **Subspace iteration** (Halko, Martinsson & Tropp): the classic
//!   randomized range finder with power iterations.
//! * **Block Krylov** (BKSVD, Musco & Musco, NeurIPS 2015): the variant the
//!   paper's Algorithm 1 uses, which attains a `(1 + ε)` spectral-norm
//!   low-rank approximation with `Θ(log n / √ε)` iterations — noticeably
//!   fewer than subspace iteration needs for the same accuracy.
//!
//! Both access the input only through [`LinearOperator::apply`] /
//! [`LinearOperator::apply_transpose`], so the adjacency matrix of a graph is
//! never materialized.

use crate::eig::symmetric_eigen;
use crate::parallel::Exec;
use crate::qr::orthonormalize_exec;
use crate::random::gaussian_matrix;
use crate::{DenseMatrix, LinalgError, LinearOperator, Result};

/// Which randomized range finder to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandomizedSvdMethod {
    /// Halko-style subspace (power) iteration.
    SubspaceIteration,
    /// Musco & Musco block Krylov iteration (the paper's BKSVD).
    BlockKrylov,
}

impl RandomizedSvdMethod {
    /// The serialized name (used by declarative method configurations).
    pub fn as_str(self) -> &'static str {
        match self {
            RandomizedSvdMethod::SubspaceIteration => "subspace-iteration",
            RandomizedSvdMethod::BlockKrylov => "block-krylov",
        }
    }

    /// Parses the serialized name produced by [`RandomizedSvdMethod::as_str`].
    pub fn from_str_name(name: &str) -> Option<Self> {
        match name {
            "subspace-iteration" => Some(RandomizedSvdMethod::SubspaceIteration),
            "block-krylov" => Some(RandomizedSvdMethod::BlockKrylov),
            _ => None,
        }
    }
}

impl serde::Serialize for RandomizedSvdMethod {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_owned())
    }
}

impl serde::Deserialize for RandomizedSvdMethod {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let name = value.as_str().ok_or_else(|| {
            serde::Error::custom(format!("expected SVD method string, got {}", value.kind()))
        })?;
        Self::from_str_name(name).ok_or_else(|| {
            serde::Error::custom(format!(
                "unknown SVD method `{name}` (expected `block-krylov` or `subspace-iteration`)"
            ))
        })
    }
}

/// Output of a randomized truncated SVD: `A ≈ U diag(σ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SvdResult {
    /// Left singular vectors (`nrows x k`).
    pub u: DenseMatrix,
    /// Approximate singular values, descending.
    pub singular_values: Vec<f64>,
    /// Right singular vectors (`ncols x k`).
    pub v: DenseMatrix,
}

impl SvdResult {
    /// Number of retained singular triplets.
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }

    /// Reconstructs the dense approximation `U Σ Vᵀ` (tests / tiny inputs).
    pub fn reconstruct(&self) -> DenseMatrix {
        let mut us = self.u.clone();
        us.scale_cols(&self.singular_values)
            .expect("shapes agree by construction");
        us.matmul_transpose(&self.v)
            .expect("shapes agree by construction")
    }
}

/// Configuration of the randomized SVD.
#[derive(Debug, Clone)]
pub struct RandomizedSvd {
    rank: usize,
    oversample: usize,
    iterations: usize,
    method: RandomizedSvdMethod,
    seed: u64,
    exec: Exec,
}

impl RandomizedSvd {
    /// Creates a configuration targeting the given rank with default
    /// oversampling (8) and iteration count (6) using block Krylov.
    pub fn new(rank: usize) -> Self {
        Self {
            rank,
            oversample: 8,
            iterations: 6,
            method: RandomizedSvdMethod::BlockKrylov,
            seed: 0,
            exec: Exec::sequential(),
        }
    }

    /// Sets the number of extra sketch columns beyond `rank`.
    pub fn oversample(mut self, oversample: usize) -> Self {
        self.oversample = oversample;
        self
    }

    /// Sets the number of power / Krylov iterations.
    ///
    /// For BKSVD the paper's guidance is `Θ(log n / √ε)`; see
    /// [`RandomizedSvd::iterations_for_epsilon`].
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the range-finder variant.
    pub fn method(mut self, method: RandomizedSvdMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the RNG seed for the Gaussian test matrix.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Grants a thread budget (clamped to at least 1) for the block matmuls,
    /// the Krylov basis construction and the final projection, using fresh
    /// scoped workers per kernel call.  The result is bitwise identical for
    /// every budget: all threaded kernels follow the determinism contract of
    /// [`crate::parallel`].  See [`RandomizedSvd::exec`] to reuse a
    /// persistent [`crate::WorkerPool`] instead.
    pub fn threads(mut self, threads: usize) -> Self {
        self.exec = Exec::scoped(threads);
        self
    }

    /// Sets the full execution policy (thread budget plus optional persistent
    /// [`crate::WorkerPool`]).  The policy never affects results — see the
    /// contract on [`RandomizedSvd::threads`].
    pub fn exec(mut self, exec: Exec) -> Self {
        self.exec = exec;
        self
    }

    /// Iteration count suggested by the BKSVD analysis for a relative error
    /// `epsilon` on an `n`-dimensional problem: `ceil(log n / sqrt(epsilon))`
    /// scaled down by a constant factor that is sufficient in practice
    /// (Musco & Musco report small constants; we clamp to `[2, 30]`).
    pub fn iterations_for_epsilon(n: usize, epsilon: f64) -> usize {
        let eps = epsilon.clamp(1e-3, 1.0);
        let raw = ((n.max(2) as f64).ln() / eps.sqrt() / 2.0).ceil() as usize;
        raw.clamp(2, 30)
    }

    /// Runs the randomized SVD on `op`.
    pub fn compute<O: LinearOperator>(&self, op: &O) -> Result<SvdResult> {
        if self.rank == 0 {
            return Err(LinalgError::InvalidParameter(
                "rank must be positive".into(),
            ));
        }
        let (rows, cols) = (op.nrows(), op.ncols());
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidParameter(
                "operator has an empty dimension".into(),
            ));
        }
        let max_rank = rows.min(cols);
        let sketch = (self.rank + self.oversample).min(max_rank).max(1);
        let q = match self.method {
            RandomizedSvdMethod::SubspaceIteration => self.subspace_basis(op, sketch)?,
            RandomizedSvdMethod::BlockKrylov => self.krylov_basis(op, sketch)?,
        };
        // Project: W = Aᵀ Q, then the small Gram matrix C = Wᵀ W = Qᵀ A Aᵀ Q.
        let w = op.apply_transpose_exec(&q, &self.exec)?;
        let gram = w.gram_exec(&self.exec);
        let eig = symmetric_eigen(&gram)?;
        let keep = self.rank.min(eig.values.len());
        let basis = eig.vectors.truncate_cols(keep);
        let singular_values: Vec<f64> = eig.values[..keep]
            .iter()
            .map(|&l| l.max(0.0).sqrt())
            .collect();
        let u = q.matmul_exec(&basis, &self.exec)?;
        let mut v = w.matmul_exec(&basis, &self.exec)?;
        let inv: Vec<f64> = singular_values
            .iter()
            .map(|&s| if s > 1e-300 { 1.0 / s } else { 0.0 })
            .collect();
        v.scale_cols(&inv)?;
        Ok(SvdResult {
            u,
            singular_values,
            v,
        })
    }

    /// Subspace iteration range basis.
    fn subspace_basis<O: LinearOperator>(&self, op: &O, sketch: usize) -> Result<DenseMatrix> {
        let e = &self.exec;
        let omega = gaussian_matrix(op.ncols(), sketch, self.seed.wrapping_add(1));
        let mut q = orthonormalize_exec(&op.apply_exec(&omega, e)?, e)?;
        for _ in 0..self.iterations {
            let z = orthonormalize_exec(&op.apply_transpose_exec(&q, e)?, e)?;
            q = orthonormalize_exec(&op.apply_exec(&z, e)?, e)?;
        }
        Ok(q)
    }

    /// Block Krylov range basis: `orth([A Ω, (A Aᵀ) A Ω, …, (A Aᵀ)^q A Ω])`.
    fn krylov_basis<O: LinearOperator>(&self, op: &O, sketch: usize) -> Result<DenseMatrix> {
        let e = &self.exec;
        let omega = gaussian_matrix(op.ncols(), sketch, self.seed.wrapping_add(1));
        let mut block = orthonormalize_exec(&op.apply_exec(&omega, e)?, e)?;
        let mut krylov = block.clone();
        for _ in 0..self.iterations {
            let z = op.apply_transpose_exec(&block, e)?;
            block = orthonormalize_exec(&op.apply_exec(&z, e)?, e)?;
            krylov = krylov.hstack(&block)?;
        }
        orthonormalize_exec(&krylov, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::AdjacencyOperator;
    use crate::random::gaussian_matrix;
    use crate::svd::gram_svd;
    use nrp_graph::generators::{erdos_renyi, stochastic_block_model};
    use nrp_graph::GraphKind;

    /// Builds a noisy low-rank matrix with a known dominant subspace.
    fn low_rank_plus_noise(
        rows: usize,
        cols: usize,
        rank: usize,
        noise: f64,
        seed: u64,
    ) -> DenseMatrix {
        let u = gaussian_matrix(rows, rank, seed);
        let v = gaussian_matrix(cols, rank, seed + 1);
        let mut a = u.matmul_transpose(&v).unwrap();
        a.scale(5.0);
        let mut e = gaussian_matrix(rows, cols, seed + 2);
        e.scale(noise);
        a.add(&e).unwrap()
    }

    #[test]
    fn recovers_low_rank_structure_block_krylov() {
        let a = low_rank_plus_noise(60, 40, 3, 0.01, 7);
        let result = RandomizedSvd::new(3).seed(1).compute(&a).unwrap();
        let err = result.reconstruct().sub(&a).unwrap().frobenius_norm() / a.frobenius_norm();
        assert!(err < 0.05, "relative error {err}");
    }

    #[test]
    fn recovers_low_rank_structure_subspace_iteration() {
        let a = low_rank_plus_noise(60, 40, 3, 0.01, 11);
        let result = RandomizedSvd::new(3)
            .method(RandomizedSvdMethod::SubspaceIteration)
            .iterations(8)
            .seed(2)
            .compute(&a)
            .unwrap();
        let err = result.reconstruct().sub(&a).unwrap().frobenius_norm() / a.frobenius_norm();
        assert!(err < 0.05, "relative error {err}");
    }

    #[test]
    fn close_to_exact_truncated_svd() {
        let a = low_rank_plus_noise(40, 40, 5, 0.1, 3);
        let exact = gram_svd(&a, 1e-12).unwrap().truncate(5);
        let approx = RandomizedSvd::new(5)
            .iterations(10)
            .seed(4)
            .compute(&a)
            .unwrap();
        for (e, r) in exact.singular_values.iter().zip(&approx.singular_values) {
            assert!(
                (e - r).abs() / e < 0.02,
                "singular value mismatch: exact {e}, approx {r}"
            );
        }
    }

    #[test]
    fn factors_have_requested_shape_and_orthogonality() {
        let a = low_rank_plus_noise(50, 30, 4, 0.05, 9);
        let result = RandomizedSvd::new(4).seed(5).compute(&a).unwrap();
        assert_eq!(result.u.shape(), (50, 4));
        assert_eq!(result.v.shape(), (30, 4));
        assert_eq!(result.rank(), 4);
        assert!(crate::qr::orthogonality_defect(&result.u) < 1e-8);
        assert!(crate::qr::orthogonality_defect(&result.v) < 1e-6);
    }

    #[test]
    fn works_on_graph_adjacency_operator() {
        let (g, _) =
            stochastic_block_model(&[40, 40], 0.2, 0.02, GraphKind::Undirected, 3).unwrap();
        let op = AdjacencyOperator::new(&g);
        let result = RandomizedSvd::new(8).seed(6).compute(&op).unwrap();
        assert_eq!(result.u.rows(), 80);
        assert!(result.u.is_finite() && result.v.is_finite());
        // Compare against the exact SVD of the dense adjacency.
        let dense = crate::operator::to_dense(&op).unwrap();
        let exact = gram_svd(&dense, 1e-12).unwrap();
        // Largest singular value should match closely.
        let rel =
            (result.singular_values[0] - exact.singular_values[0]).abs() / exact.singular_values[0];
        assert!(rel < 0.02, "top singular value off by {rel}");
    }

    #[test]
    fn spectral_error_near_optimal_on_er_graph() {
        let g = erdos_renyi(120, 0.08, GraphKind::Undirected, 5).unwrap();
        let op = AdjacencyOperator::new(&g);
        let k = 10;
        let result = RandomizedSvd::new(k)
            .iterations(8)
            .seed(7)
            .compute(&op)
            .unwrap();
        let dense = crate::operator::to_dense(&op).unwrap();
        let exact = gram_svd(&dense, 1e-12).unwrap();
        // Frobenius error of rank-k approximation must be close to the optimal
        // error sqrt(sum_{i>k} sigma_i^2).
        let optimal: f64 = exact
            .singular_values
            .iter()
            .skip(k)
            .map(|s| s * s)
            .sum::<f64>()
            .sqrt();
        let achieved = result.reconstruct().sub(&dense).unwrap().frobenius_norm();
        assert!(
            achieved <= 1.1 * optimal + 1e-9,
            "achieved {achieved}, optimal {optimal}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = low_rank_plus_noise(30, 30, 3, 0.05, 13);
        let r1 = RandomizedSvd::new(3).seed(42).compute(&a).unwrap();
        let r2 = RandomizedSvd::new(3).seed(42).compute(&a).unwrap();
        assert_eq!(r1.singular_values, r2.singular_values);
        assert_eq!(r1.u, r2.u);
    }

    #[test]
    fn bitwise_identical_across_thread_budgets() {
        let (g, _) =
            stochastic_block_model(&[30, 30], 0.2, 0.03, GraphKind::Undirected, 8).unwrap();
        let op = AdjacencyOperator::new(&g);
        for method in [
            RandomizedSvdMethod::BlockKrylov,
            RandomizedSvdMethod::SubspaceIteration,
        ] {
            let run = |threads: usize| {
                RandomizedSvd::new(6)
                    .method(method)
                    .iterations(4)
                    .seed(21)
                    .threads(threads)
                    .compute(&op)
                    .unwrap()
            };
            let reference = run(1);
            for threads in [2usize, 4, 8] {
                let result = run(threads);
                assert_eq!(result.u, reference.u, "{method:?} threads = {threads}");
                assert_eq!(result.v, reference.v, "{method:?} threads = {threads}");
                assert_eq!(
                    result.singular_values, reference.singular_values,
                    "{method:?} threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn zero_rank_rejected() {
        let a = gaussian_matrix(5, 5, 1);
        assert!(RandomizedSvd::new(0).compute(&a).is_err());
    }

    #[test]
    fn rank_larger_than_dimension_is_clamped() {
        let a = gaussian_matrix(6, 4, 2);
        let result = RandomizedSvd::new(10).compute(&a).unwrap();
        assert!(result.rank() <= 4);
    }

    #[test]
    fn iterations_for_epsilon_monotone() {
        let loose = RandomizedSvd::iterations_for_epsilon(10_000, 0.5);
        let tight = RandomizedSvd::iterations_for_epsilon(10_000, 0.05);
        assert!(tight >= loose);
        assert!(loose >= 2);
        assert!(tight <= 30);
    }
}
