//! Row-major dense matrices.

use crate::{parallel, LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// Rows are contiguous, so per-node embedding rows (`X_v`, `Y_v`) are cheap
/// slices — the access pattern dominating the NRP reweighting loops.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a closure over `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidParameter(format!(
                "data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidParameter(
                "matrix needs at least one row".into(),
            ));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::InvalidParameter(
                "rows have inconsistent lengths".into(),
            ));
        }
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Value at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets the value at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = value;
    }

    /// Adds `value` to the entry at `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += value;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// The underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major data, mutably.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                operation: "matmul".into(),
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams over `other` rows, cache friendly for row-major data.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (j, &b_kj) in b_row.iter().enumerate() {
                    out_row[j] += a_ik * b_kj;
                }
            }
        }
        Ok(out)
    }

    /// Product `selfᵀ * other` without materializing the transpose.
    pub fn transpose_matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                operation: "transpose_matmul".into(),
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a_ri) in a_row.iter().enumerate() {
                if a_ri == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (j, &b_rj) in b_row.iter().enumerate() {
                    out_row[j] += a_ri * b_rj;
                }
            }
        }
        Ok(out)
    }

    /// Product `self * otherᵀ` without materializing the transpose.
    pub fn matmul_transpose(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                operation: "matmul_transpose".into(),
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let dot: f64 = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
                out.set(i, j, dot);
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self`.
    pub fn gram(&self) -> DenseMatrix {
        self.transpose_matmul(self)
            .expect("gram shapes always agree")
    }

    /// [`DenseMatrix::matmul`] over up to `threads` scoped worker threads
    /// (see [`DenseMatrix::matmul_exec`] for pooled execution).
    pub fn matmul_with(&self, other: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        self.matmul_exec(other, &parallel::Exec::scoped(threads))
    }

    /// [`DenseMatrix::matmul`] under an [`parallel::Exec`] policy.
    ///
    /// Every output row is produced by one worker with the same inner loop as
    /// the sequential product, so the result is bitwise identical to
    /// [`DenseMatrix::matmul`] for every thread budget and execution policy.
    pub fn matmul_exec(&self, other: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                operation: "matmul".into(),
                left: self.shape(),
                right: other.shape(),
            });
        }
        if !exec.is_parallel() {
            return self.matmul(other);
        }
        let data = parallel::par_fill_rows_exec(self.rows, other.cols, exec, |i, out_row| {
            let a_row = self.row(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b_kj;
                }
            }
        });
        DenseMatrix::from_vec(self.rows, other.cols, data)
    }

    /// `selfᵀ * other` as a deterministic chunked map-reduce over up to
    /// `threads` scoped worker threads (see
    /// [`DenseMatrix::transpose_matmul_exec`] for pooled execution).
    pub fn transpose_matmul_with(
        &self,
        other: &DenseMatrix,
        threads: usize,
    ) -> Result<DenseMatrix> {
        self.transpose_matmul_exec(other, &parallel::Exec::scoped(threads))
    }

    /// `selfᵀ * other` as a deterministic chunked map-reduce under an
    /// [`parallel::Exec`] policy.
    ///
    /// The accumulation over rows is grouped into fixed chunks
    /// ([`parallel::REDUCE_CHUNK`]) folded in order, so the result is bitwise
    /// identical for every thread budget — including 1, which is why even the
    /// single-threaded path goes through the chunked grouping rather than
    /// falling back to [`DenseMatrix::transpose_matmul`] (whose row-by-row
    /// grouping differs in the last ulp).
    pub fn transpose_matmul_exec(
        &self,
        other: &DenseMatrix,
        exec: &parallel::Exec,
    ) -> Result<DenseMatrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                operation: "transpose_matmul".into(),
                left: self.shape(),
                right: other.shape(),
            });
        }
        let partial = |range: std::ops::Range<usize>| -> DenseMatrix {
            let mut out = DenseMatrix::zeros(self.cols, other.cols);
            for r in range {
                let a_row = self.row(r);
                let b_row = other.row(r);
                for (i, &a_ri) in a_row.iter().enumerate() {
                    if a_ri == 0.0 {
                        continue;
                    }
                    let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                    for (j, &b_rj) in b_row.iter().enumerate() {
                        out_row[j] += a_ri * b_rj;
                    }
                }
            }
            out
        };
        let folded = parallel::par_reduce_exec(
            self.rows,
            parallel::REDUCE_CHUNK,
            exec,
            partial,
            |mut a, b| {
                a.axpy(1.0, &b).expect("partials share a shape");
                a
            },
        );
        Ok(folded.unwrap_or_else(|| DenseMatrix::zeros(self.cols, other.cols)))
    }

    /// Gram matrix `selfᵀ * self` over up to `threads` scoped worker threads
    /// (see [`DenseMatrix::transpose_matmul_with`] for the determinism
    /// contract).
    pub fn gram_with(&self, threads: usize) -> DenseMatrix {
        self.transpose_matmul_with(self, threads)
            .expect("gram shapes always agree")
    }

    /// Gram matrix `selfᵀ * self` under an [`parallel::Exec`] policy (see
    /// [`DenseMatrix::transpose_matmul_exec`] for the determinism contract).
    pub fn gram_exec(&self, exec: &parallel::Exec) -> DenseMatrix {
        self.transpose_matmul_exec(self, exec)
            .expect("gram shapes always agree")
    }

    /// Element-wise scaling in place.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                operation: "add".into(),
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                operation: "sub".into(),
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place `self += factor * other`.
    pub fn axpy(&mut self, factor: f64, other: &DenseMatrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                operation: "axpy".into(),
                left: self.shape(),
                right: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += factor * b;
        }
        Ok(())
    }

    /// Scales row `i` by `factor`.
    pub fn scale_row(&mut self, i: usize, factor: f64) {
        for v in self.row_mut(i) {
            *v *= factor;
        }
    }

    /// Multiplies each row `i` by `factors[i]` (i.e. left-multiplication by a
    /// diagonal matrix).
    pub fn scale_rows(&mut self, factors: &[f64]) -> Result<()> {
        if factors.len() != self.rows {
            return Err(LinalgError::InvalidParameter(format!(
                "expected {} row factors, got {}",
                self.rows,
                factors.len()
            )));
        }
        for (i, &f) in factors.iter().enumerate() {
            self.scale_row(i, f);
        }
        Ok(())
    }

    /// Multiplies each column `j` by `factors[j]` (right-multiplication by a
    /// diagonal matrix).
    pub fn scale_cols(&mut self, factors: &[f64]) -> Result<()> {
        if factors.len() != self.cols {
            return Err(LinalgError::InvalidParameter(format!(
                "expected {} column factors, got {}",
                self.cols,
                factors.len()
            )));
        }
        for i in 0..self.rows {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (v, &f) in row.iter_mut().zip(factors) {
                *v *= f;
            }
        }
        Ok(())
    }

    /// Keeps the first `k` columns, dropping the rest.
    pub fn truncate_cols(&self, k: usize) -> DenseMatrix {
        let k = k.min(self.cols);
        let mut out = DenseMatrix::zeros(self.rows, k);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hstack(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                operation: "hstack".into(),
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Dot product of two rows of (possibly different) matrices.
    pub fn row_dot(a: &DenseMatrix, i: usize, b: &DenseMatrix, j: usize) -> f64 {
        a.row(i).iter().zip(b.row(j)).map(|(x, y)| x * y).sum()
    }
}

/// Dot product of two slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &DenseMatrix, b: &DenseMatrix, tol: f64) -> bool {
        a.shape() == b.shape()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn identity_matmul_is_identity_map() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let i = DenseMatrix::identity(2);
        assert!(approx_eq(&a.matmul(&i).unwrap(), &a, 1e-12));
    }

    #[test]
    fn matmul_known_values() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = DenseMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(approx_eq(&c, &expected, 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[1.0, 0.5], &[0.0, 2.0], &[1.0, 1.0]]).unwrap();
        let fast = a.transpose_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(approx_eq(&fast, &slow, 1e-12));
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]).unwrap();
        let fast = a.matmul_transpose(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert!(approx_eq(&fast, &slow, 1e-12));
    }

    #[test]
    fn gram_is_symmetric() {
        let a = DenseMatrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64 * 0.3 - 1.0);
        let g = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = DenseMatrix::from_fn(4, 7, |i, j| (i + 2 * j) as f64);
        assert!(approx_eq(&a.transpose().transpose(), &a, 0.0));
    }

    #[test]
    fn add_sub_axpy() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]).unwrap();
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.get(0, 0), 1.5);
        let diff = a.sub(&b).unwrap();
        assert_eq!(diff.get(1, 1), 3.5);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.get(0, 1), 3.0);
    }

    #[test]
    fn scale_rows_and_cols() {
        let mut a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        a.scale_rows(&[2.0, 0.5]).unwrap();
        assert_eq!(a.get(0, 1), 4.0);
        assert_eq!(a.get(1, 0), 1.5);
        a.scale_cols(&[1.0, 10.0]).unwrap();
        assert_eq!(a.get(0, 1), 40.0);
    }

    #[test]
    fn scale_rows_length_checked() {
        let mut a = DenseMatrix::zeros(2, 2);
        assert!(a.scale_rows(&[1.0]).is_err());
        assert!(a.scale_cols(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn truncate_and_hstack() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.truncate_cols(2);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get(1, 1), 5.0);
        let h = t.hstack(&t).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.get(0, 3), 2.0);
    }

    #[test]
    fn norms() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.is_finite());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_checks_consistency() {
        assert!(DenseMatrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
        assert!(DenseMatrix::from_rows(&[]).is_err());
    }

    #[test]
    fn row_dot_and_slice_helpers() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(DenseMatrix::row_dot(&a, 0, &a, 1), 11.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_with_is_bitwise_equal_to_sequential() {
        let a = DenseMatrix::from_fn(67, 31, |i, j| ((i * 31 + j) % 13) as f64 * 0.37 - 1.1);
        let b = DenseMatrix::from_fn(31, 9, |i, j| ((i + 2 * j) % 7) as f64 * 0.21 + 0.4);
        let sequential = a.matmul(&b).unwrap();
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(
                a.matmul_with(&b, threads).unwrap(),
                sequential,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn transpose_matmul_with_is_thread_invariant_and_accurate() {
        let a = DenseMatrix::from_fn(143, 5, |i, j| ((i * 5 + j) % 11) as f64 * 0.3 - 0.9);
        let b = DenseMatrix::from_fn(143, 4, |i, j| ((i + j) % 9) as f64 * 0.17 + 0.2);
        let reference = a.transpose_matmul_with(&b, 1).unwrap();
        for threads in [2usize, 4, 7] {
            assert_eq!(a.transpose_matmul_with(&b, threads).unwrap(), reference);
        }
        // Numerically the chunked grouping agrees with the plain product.
        let plain = a.transpose_matmul(&b).unwrap();
        assert!(reference.sub(&plain).unwrap().max_abs() < 1e-10);
        assert_eq!(a.gram_with(3), a.transpose_matmul_with(&a, 1).unwrap());
    }

    #[test]
    fn parallel_products_check_shapes() {
        let a = DenseMatrix::zeros(3, 4);
        let b = DenseMatrix::zeros(5, 2);
        assert!(a.matmul_with(&b, 2).is_err());
        assert!(a.transpose_matmul_with(&b, 2).is_err());
    }

    #[test]
    fn col_extraction() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        assert_eq!(a.col(1), vec![2.0, 4.0, 6.0]);
    }
}
