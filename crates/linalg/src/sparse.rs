//! CSR sparse matrices with `f64` values.
//!
//! [`SparseMatrix`] is used where a *weighted* sparse matrix must be built
//! explicitly — most prominently the truncated PPR proximity matrix assembled
//! by the STRAP baseline — while plain graph adjacency structures are wrapped
//! by the operators in [`crate::operator`] without copying.

use crate::{parallel, DenseMatrix, LinalgError, Result};

/// A CSR sparse matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a sparse matrix from `(row, col, value)` triplets; duplicate
    /// coordinates are summed (in the order they appear in `triplets`).
    ///
    /// Assembly is a two-pass stable counting sort — first by column, then by
    /// row — followed by one in-place compaction of duplicate coordinates:
    /// `O(nnz + rows + cols)` time, no comparison sort.  Because both passes
    /// are stable, entries with equal coordinates keep their input order, so
    /// the floating-point accumulation of duplicates is bitwise identical to
    /// the historical comparison-sort assembly
    /// ([`SparseMatrix::from_triplets_comparison`]).
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        Self::check_triplets(rows, cols, triplets)?;
        let nnz = triplets.len();

        // Pass 1: stable counting sort by column.  `col_pos[c]` walks from
        // the first slot of column c to one past its last.
        let mut col_pos = vec![0usize; cols + 1];
        for &(_, c, _) in triplets {
            col_pos[c + 1] += 1;
        }
        for c in 0..cols {
            col_pos[c + 1] += col_pos[c];
        }
        let mut by_col: Vec<(usize, usize, f64)> = vec![(0, 0, 0.0); nnz];
        for &(r, c, v) in triplets {
            by_col[col_pos[c]] = (r, c, v);
            col_pos[c] += 1;
        }

        // Pass 2: stable counting sort of the column-ordered entries by row.
        // Stability makes each row's slice ascending in column, with
        // duplicate coordinates adjacent and still in input order.
        let mut indptr = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            indptr[r + 1] += 1;
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        let mut row_pos: Vec<usize> = indptr[..rows].to_vec();
        let mut indices = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for &(r, c, v) in &by_col {
            let p = row_pos[r];
            indices[p] = c;
            values[p] = v;
            row_pos[r] = p + 1;
        }

        // Pass 3: compact duplicates in place.  After pass 2, `row_pos[r]`
        // equals the old `indptr[r + 1]`, so the original segment of row r is
        // recoverable even as `indptr` is rewritten to the compacted offsets
        // (the write cursor never overtakes the read cursor).
        let mut write = 0usize;
        for r in 0..rows {
            let seg_start = indptr[r];
            let seg_end = row_pos[r];
            indptr[r] = write;
            let mut read = seg_start;
            while read < seg_end {
                let c = indices[read];
                // Seed with 0.0 and add, exactly like the comparison-sort
                // reference — seeding with the first value directly would
                // preserve a -0.0 sign bit the reference normalizes away.
                let mut acc = 0.0f64;
                while read < seg_end && indices[read] == c {
                    acc += values[read];
                    read += 1;
                }
                indices[write] = c;
                values[write] = acc;
                write += 1;
            }
        }
        indptr[rows] = write;
        indices.truncate(write);
        values.truncate(write);
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Reference assembly by stable comparison sort, kept as the baseline the
    /// hot-path benchmarks (and equivalence tests) compare
    /// [`SparseMatrix::from_triplets`] against.  Identical output, `O(nnz log
    /// nnz)` time.
    pub fn from_triplets_comparison(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        Self::check_triplets(rows, cols, triplets)?;
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut iter = sorted.into_iter().peekable();
        for r in 0..rows {
            while let Some(&(tr, c, _)) = iter.peek() {
                if tr != r {
                    break;
                }
                let mut acc = 0.0;
                while let Some(&(dr, dc, dv)) = iter.peek() {
                    if dr != r || dc != c {
                        break;
                    }
                    acc += dv;
                    iter.next();
                }
                indices.push(c);
                values.push(acc);
            }
            indptr[r + 1] = indices.len();
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    fn check_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Result<()> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(LinalgError::InvalidParameter(format!(
                    "triplet ({r}, {c}) out of bounds for {rows}x{cols} matrix"
                )));
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (possibly zero-valued) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The non-zero entries of row `i` as parallel `(column, value)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let range = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[range.clone()], &self.values[range])
    }

    /// Retrieves an entry (O(row nnz)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Transpose, as one direct CSR-to-CSC counting pass: `O(nnz + cols)`
    /// with no triplet round-trip.  Scattering rows in ascending order keeps
    /// each transposed row's column indices sorted.
    pub fn transpose(&self) -> SparseMatrix {
        let nnz = self.nnz();
        let mut indptr = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            indptr[c + 1] += 1;
        }
        for c in 0..self.cols {
            indptr[c + 1] += indptr[c];
        }
        let mut pos: Vec<usize> = indptr[..self.cols].to_vec();
        let mut indices = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let p = pos[c];
                indices[p] = r;
                values[p] = v;
                pos[c] = p + 1;
            }
        }
        SparseMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Iterates over `(row, col, value)` of all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Sparse × dense product `self * x`.
    pub fn matmul_dense(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != x.rows() {
            return Err(LinalgError::ShapeMismatch {
                operation: "sparse * dense".into(),
                left: (self.rows, self.cols),
                right: x.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, x.cols());
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let out_row = out.row_mut(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let x_row = x.row(c);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        Ok(out)
    }

    /// [`SparseMatrix::matmul_dense`] over up to `threads` scoped worker
    /// threads (see [`SparseMatrix::matmul_dense_exec`] for pooled
    /// execution).
    pub fn matmul_dense_with(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        self.matmul_dense_exec(x, &parallel::Exec::scoped(threads))
    }

    /// [`SparseMatrix::matmul_dense`] under an [`parallel::Exec`] policy.
    ///
    /// Each output row is one CSR-row gather produced by a single worker with
    /// the sequential summation order, so the result is bitwise identical to
    /// [`SparseMatrix::matmul_dense`] for every thread budget and execution
    /// policy.
    pub fn matmul_dense_exec(&self, x: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
        if self.cols != x.rows() {
            return Err(LinalgError::ShapeMismatch {
                operation: "sparse * dense".into(),
                left: (self.rows, self.cols),
                right: x.shape(),
            });
        }
        if !exec.is_parallel() {
            return self.matmul_dense(x);
        }
        let data = parallel::par_fill_rows_exec(self.rows, x.cols(), exec, |r, out_row| {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let x_row = x.row(c);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        });
        DenseMatrix::from_vec(self.rows, x.cols(), data)
    }

    /// Sparse-transpose × dense product `selfᵀ * x`.
    pub fn transpose_matmul_dense(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != x.rows() {
            return Err(LinalgError::ShapeMismatch {
                operation: "sparseᵀ * dense".into(),
                left: (self.cols, self.rows),
                right: x.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.cols, x.cols());
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let x_row = x.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let out_row = out.row_mut(c);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        Ok(out)
    }

    /// Densifies (tests / tiny matrices only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.add_to(r, c, v);
        }
        out
    }

    /// Frobenius norm of the stored entries.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        SparseMatrix::from_triplets(3, 4, &[(0, 1, 2.0), (0, 3, 1.0), (1, 0, -1.0), (2, 2, 5.0)])
            .unwrap()
    }

    #[test]
    fn get_and_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]).unwrap();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn interleaved_cross_row_duplicates_accumulate_correctly() {
        // Regression for the historical duplicate-accumulation branch: the
        // duplicates of one coordinate arrive interleaved with entries of
        // *other* rows and columns (never adjacent in the input), and several
        // coordinates have duplicates at once.
        let triplets = [
            (1, 2, 1.0),
            (0, 1, 10.0),
            (2, 0, 100.0),
            (1, 2, 2.0),
            (0, 3, 5.0),
            (1, 0, 7.0),
            (0, 1, 20.0),
            (2, 0, 200.0),
            (1, 2, 4.0),
            (0, 1, 30.0),
        ];
        let m = SparseMatrix::from_triplets(3, 4, &triplets).unwrap();
        assert_eq!(m.get(0, 1), 60.0);
        assert_eq!(m.get(0, 3), 5.0);
        assert_eq!(m.get(1, 0), 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        assert_eq!(m.get(2, 0), 300.0);
        assert_eq!(m.nnz(), 5, "each coordinate stored once");
        // Row slices stay sorted by column.
        for r in 0..3 {
            let (cols, _) = m.row(r);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {r}: {cols:?}");
        }
        // And the counting-sort assembly matches the comparison-sort
        // reference bit for bit.
        let reference = SparseMatrix::from_triplets_comparison(3, 4, &triplets).unwrap();
        assert_eq!(m, reference);
    }

    #[test]
    fn counting_and_comparison_assembly_agree_on_random_triplets() {
        // Pseudo-random triplets with a high duplicate rate; both assemblies
        // must produce identical structure and bitwise identical values.
        let mut triplets = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let r = (next() % 23) as usize;
            let c = (next() % 17) as usize;
            let v = (next() % 1000) as f64 * 0.37 - 150.0;
            triplets.push((r, c, v));
        }
        let counting = SparseMatrix::from_triplets(23, 17, &triplets).unwrap();
        let comparison = SparseMatrix::from_triplets_comparison(23, 17, &triplets).unwrap();
        assert_eq!(counting, comparison);
        assert_eq!(counting.transpose(), comparison.transpose());
        assert_eq!(counting.transpose().transpose(), counting);
    }

    #[test]
    fn negative_zero_values_assemble_bitwise_like_the_reference() {
        // `assert_eq!` on f64 treats -0.0 == 0.0, so check the bits: both
        // assemblies seed accumulation with +0.0, normalizing a lone -0.0.
        let triplets = [(0usize, 0usize, -0.0f64), (1, 1, -0.0), (1, 1, -0.0)];
        let counting = SparseMatrix::from_triplets(2, 2, &triplets).unwrap();
        let comparison = SparseMatrix::from_triplets_comparison(2, 2, &triplets).unwrap();
        for (r, c) in [(0usize, 0usize), (1, 1)] {
            assert_eq!(
                counting.get(r, c).to_bits(),
                comparison.get(r, c).to_bits(),
                "({r},{c})"
            );
            assert_eq!(counting.get(r, c).to_bits(), 0.0f64.to_bits(), "({r},{c})");
        }
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert!(SparseMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(SparseMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn empty_rows_handled() {
        let m = SparseMatrix::from_triplets(4, 4, &[(3, 3, 1.0)]).unwrap();
        assert_eq!(m.row(0).0.len(), 0);
        assert_eq!(m.row(3).0, &[3]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_dense_matches_dense_matmul() {
        let m = sample();
        let x = DenseMatrix::from_fn(4, 3, |i, j| (i + j) as f64 * 0.5);
        let sparse_result = m.matmul_dense(&x).unwrap();
        let dense_result = m.to_dense().matmul(&x).unwrap();
        assert!(sparse_result.sub(&dense_result).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn transpose_matmul_dense_matches() {
        let m = sample();
        let x = DenseMatrix::from_fn(3, 2, |i, j| (2 * i + j) as f64);
        let fast = m.transpose_matmul_dense(&x).unwrap();
        let slow = m.to_dense().transpose().matmul(&x).unwrap();
        assert!(fast.sub(&slow).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let m = sample();
        let x = DenseMatrix::zeros(3, 3);
        assert!(m.matmul_dense(&x).is_err());
        let y = DenseMatrix::zeros(4, 2);
        assert!(m.transpose_matmul_dense(&y).is_err());
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries.len(), 4);
        assert!(entries.contains(&(1, 0, -1.0)));
    }

    #[test]
    fn frobenius_norm_value() {
        let m = SparseMatrix::from_triplets(2, 2, &[(0, 0, 3.0), (1, 1, 4.0)]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
