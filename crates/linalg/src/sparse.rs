//! CSR sparse matrices with `f64` values.
//!
//! [`SparseMatrix`] is used where a *weighted* sparse matrix must be built
//! explicitly — most prominently the truncated PPR proximity matrix assembled
//! by the STRAP baseline — while plain graph adjacency structures are wrapped
//! by the operators in [`crate::operator`] without copying.

use crate::{parallel, DenseMatrix, LinalgError, Result};

/// A CSR sparse matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a sparse matrix from `(row, col, value)` triplets; duplicate
    /// coordinates are summed.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(LinalgError::InvalidParameter(format!(
                    "triplet ({r}, {c}) out of bounds for {rows}x{cols} matrix"
                )));
            }
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        indptr.push(0);
        let mut current_row = 0usize;
        for (r, c, v) in sorted {
            while current_row < r {
                indptr.push(indices.len());
                current_row += 1;
            }
            if let (Some(&last_c), true) = (indices.last(), indptr.len() == current_row + 1) {
                if last_c == c && !values.is_empty() && indices.len() > *indptr.last().unwrap() {
                    // Duplicate coordinate within the current row: accumulate.
                    *values.last_mut().expect("non-empty") += v;
                    continue;
                }
            }
            indices.push(c);
            values.push(v);
        }
        while current_row < rows {
            indptr.push(indices.len());
            current_row += 1;
        }
        // The loop above pushes one boundary per row advance plus the initial 0;
        // ensure the final boundary is present.
        if indptr.len() == rows {
            indptr.push(indices.len());
        }
        debug_assert_eq!(indptr.len(), rows + 1);
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (possibly zero-valued) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The non-zero entries of row `i` as parallel `(column, value)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let range = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[range.clone()], &self.values[range])
    }

    /// Retrieves an entry (O(row nnz)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> SparseMatrix {
        let triplets: Vec<(usize, usize, f64)> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        SparseMatrix::from_triplets(self.cols, self.rows, &triplets)
            .expect("transpose of a valid matrix is valid")
    }

    /// Iterates over `(row, col, value)` of all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Sparse × dense product `self * x`.
    pub fn matmul_dense(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != x.rows() {
            return Err(LinalgError::ShapeMismatch {
                operation: "sparse * dense".into(),
                left: (self.rows, self.cols),
                right: x.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, x.cols());
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let out_row = out.row_mut(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let x_row = x.row(c);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        Ok(out)
    }

    /// [`SparseMatrix::matmul_dense`] over up to `threads` worker threads.
    ///
    /// Each output row is one CSR-row gather produced by a single worker with
    /// the sequential summation order, so the result is bitwise identical to
    /// [`SparseMatrix::matmul_dense`] for every thread budget.
    pub fn matmul_dense_with(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        if self.cols != x.rows() {
            return Err(LinalgError::ShapeMismatch {
                operation: "sparse * dense".into(),
                left: (self.rows, self.cols),
                right: x.shape(),
            });
        }
        if threads <= 1 {
            return self.matmul_dense(x);
        }
        let data = parallel::par_fill_rows(self.rows, x.cols(), threads, |r, out_row| {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let x_row = x.row(c);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        });
        DenseMatrix::from_vec(self.rows, x.cols(), data)
    }

    /// Sparse-transpose × dense product `selfᵀ * x`.
    pub fn transpose_matmul_dense(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != x.rows() {
            return Err(LinalgError::ShapeMismatch {
                operation: "sparseᵀ * dense".into(),
                left: (self.cols, self.rows),
                right: x.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.cols, x.cols());
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let x_row = x.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let out_row = out.row_mut(c);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        Ok(out)
    }

    /// Densifies (tests / tiny matrices only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.add_to(r, c, v);
        }
        out
    }

    /// Frobenius norm of the stored entries.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        SparseMatrix::from_triplets(3, 4, &[(0, 1, 2.0), (0, 3, 1.0), (1, 0, -1.0), (2, 2, 5.0)])
            .unwrap()
    }

    #[test]
    fn get_and_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]).unwrap();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert!(SparseMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(SparseMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn empty_rows_handled() {
        let m = SparseMatrix::from_triplets(4, 4, &[(3, 3, 1.0)]).unwrap();
        assert_eq!(m.row(0).0.len(), 0);
        assert_eq!(m.row(3).0, &[3]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_dense_matches_dense_matmul() {
        let m = sample();
        let x = DenseMatrix::from_fn(4, 3, |i, j| (i + j) as f64 * 0.5);
        let sparse_result = m.matmul_dense(&x).unwrap();
        let dense_result = m.to_dense().matmul(&x).unwrap();
        assert!(sparse_result.sub(&dense_result).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn transpose_matmul_dense_matches() {
        let m = sample();
        let x = DenseMatrix::from_fn(3, 2, |i, j| (2 * i + j) as f64);
        let fast = m.transpose_matmul_dense(&x).unwrap();
        let slow = m.to_dense().transpose().matmul(&x).unwrap();
        assert!(fast.sub(&slow).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let m = sample();
        let x = DenseMatrix::zeros(3, 3);
        assert!(m.matmul_dense(&x).is_err());
        let y = DenseMatrix::zeros(4, 2);
        assert!(m.transpose_matmul_dense(&y).is_err());
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries.len(), 4);
        assert!(entries.contains(&(1, 0, -1.0)));
    }

    #[test]
    fn frobenius_norm_value() {
        let m = SparseMatrix::from_triplets(2, 2, &[(0, 0, 3.0), (1, 1, 4.0)]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
