//! Linear-operator abstraction over matrices that are never materialized.
//!
//! The randomized SVD and the PPR propagation only ever touch the adjacency
//! matrix `A` and the transition matrix `P` through products with tall-skinny
//! dense matrices.  [`LinearOperator`] captures exactly that interface, and
//! [`AdjacencyOperator`] / [`TransitionOperator`] implement it directly on
//! top of the graph's CSR structure — `O(m·k)` per product and no `n × n`
//! storage, the property that lets NRP scale to large graphs.
//!
//! All operators expose threaded products ([`LinearOperator::apply_with`] /
//! [`LinearOperator::apply_transpose_with`]) with the workspace-wide
//! determinism contract: **the result is bitwise identical for every thread
//! budget**, because every output row is produced by exactly one worker with
//! the same summation order (see [`crate::parallel`]).
//!
//! Dangling nodes (out-degree zero) are handled by an explicit
//! [`DanglingPolicy`].  The default, [`DanglingPolicy::SelfLoop`], treats a
//! dangling node as carrying an implicit self-loop, so every row of `P` sums
//! to 1 and the PPR series conserves probability mass — matching the paper's
//! random-walk semantics (an α-decaying walk at a node with no out-neighbours
//! terminates *there*, it does not vanish) and the forward-push primitive in
//! `nrp-core`.  [`DanglingPolicy::ZeroRow`] keeps the literal `D⁻¹A` matrix
//! with all-zero dangling rows, under which mass leaks out of the series, and
//! [`DanglingPolicy::Teleport`] gives dangling nodes a uniform jump to any
//! node (the PageRank classic) — still mass-conserving, but without pooling
//! the surviving mass at the sink.

use nrp_graph::Graph;

use crate::{parallel, DenseMatrix, LinalgError, Result, SparseMatrix};

/// A real linear operator `A : R^{ncols} -> R^{nrows}` accessed only through
/// matrix products.
pub trait LinearOperator {
    /// Number of rows of the represented matrix.
    fn nrows(&self) -> usize;
    /// Number of columns of the represented matrix.
    fn ncols(&self) -> usize;
    /// Computes `A * x` for a dense `x` with `ncols()` rows.
    fn apply(&self, x: &DenseMatrix) -> Result<DenseMatrix>;
    /// Computes `Aᵀ * x` for a dense `x` with `nrows()` rows.
    fn apply_transpose(&self, x: &DenseMatrix) -> Result<DenseMatrix>;

    /// Computes `A * x` with up to `threads` worker threads.
    ///
    /// Implementations must be bitwise identical for every thread budget and
    /// must agree with [`LinearOperator::apply`]; the default simply runs the
    /// sequential product.
    fn apply_with(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        let _ = threads;
        self.apply(x)
    }

    /// Computes `Aᵀ * x` with up to `threads` worker threads (same contract
    /// as [`LinearOperator::apply_with`]).
    fn apply_transpose_with(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        let _ = threads;
        self.apply_transpose(x)
    }

    /// Computes `A * x` under an [`parallel::Exec`] policy (thread budget
    /// plus optional persistent [`crate::WorkerPool`]).  Same determinism
    /// contract as [`LinearOperator::apply_with`]; the default falls back to
    /// scoped threads via `apply_with`, and the operators in this crate
    /// override it to hand the policy (pool included) to their kernels.
    fn apply_exec(&self, x: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
        self.apply_with(x, exec.threads())
    }

    /// Computes `Aᵀ * x` under an [`parallel::Exec`] policy (same contract
    /// as [`LinearOperator::apply_exec`]).
    fn apply_transpose_exec(&self, x: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
        self.apply_transpose_with(x, exec.threads())
    }
}

fn check_rows(expected: usize, x: &DenseMatrix, operation: &str) -> Result<()> {
    if x.rows() != expected {
        return Err(LinalgError::ShapeMismatch {
            operation: operation.into(),
            left: (expected, expected),
            right: x.shape(),
        });
    }
    Ok(())
}

/// The (unweighted) adjacency matrix `A` of a graph: `A[u, v] = 1` iff the
/// arc `(u, v)` exists.
#[derive(Debug, Clone, Copy)]
pub struct AdjacencyOperator<'g> {
    graph: &'g Graph,
}

impl<'g> AdjacencyOperator<'g> {
    /// Wraps a graph's adjacency structure.
    pub fn new(graph: &'g Graph) -> Self {
        Self { graph }
    }

    fn fill_apply_row(&self, x: &DenseMatrix, u: usize, out_row: &mut [f64]) {
        for &v in self.graph.out_neighbors(u as u32) {
            let x_row = x.row(v as usize);
            for (o, &xv) in out_row.iter_mut().zip(x_row) {
                *o += xv;
            }
        }
    }

    fn fill_transpose_row(&self, x: &DenseMatrix, u: usize, out_row: &mut [f64]) {
        // Row u of Aᵀ has ones at the in-neighbours of u.
        for &v in self.graph.in_neighbors(u as u32) {
            let x_row = x.row(v as usize);
            for (o, &xv) in out_row.iter_mut().zip(x_row) {
                *o += xv;
            }
        }
    }
}

impl LinearOperator for AdjacencyOperator<'_> {
    fn nrows(&self) -> usize {
        self.graph.num_nodes()
    }

    fn ncols(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.apply_with(x, 1)
    }

    fn apply_transpose(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.apply_transpose_with(x, 1)
    }

    fn apply_with(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        self.apply_exec(x, &parallel::Exec::scoped(threads))
    }

    fn apply_transpose_with(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        self.apply_transpose_exec(x, &parallel::Exec::scoped(threads))
    }

    fn apply_exec(&self, x: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
        check_rows(self.ncols(), x, "adjacency * dense")?;
        let n = self.graph.num_nodes();
        let data = parallel::par_fill_rows_exec(n, x.cols(), exec, |u, out_row| {
            self.fill_apply_row(x, u, out_row)
        });
        DenseMatrix::from_vec(n, x.cols(), data)
    }

    fn apply_transpose_exec(&self, x: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
        check_rows(self.nrows(), x, "adjacencyᵀ * dense")?;
        let n = self.graph.num_nodes();
        let data = parallel::par_fill_rows_exec(n, x.cols(), exec, |u, out_row| {
            self.fill_transpose_row(x, u, out_row)
        });
        DenseMatrix::from_vec(n, x.cols(), data)
    }
}

/// How the transition matrix treats dangling nodes (out-degree zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DanglingPolicy {
    /// A dangling node carries an implicit self-loop: its row of `P` is the
    /// unit vector `e_u`, so every row sums to 1 and the PPR series conserves
    /// probability mass.  This matches the paper's walk semantics (a walk at
    /// a node with no out-neighbours terminates there) and the forward-push
    /// primitive, and is the default.
    #[default]
    SelfLoop,
    /// The literal `D⁻¹A` matrix: dangling rows are all-zero and the mass of
    /// a walk that reaches one vanishes from the series.  Kept for
    /// comparisons and for callers that want the raw matrix.
    ZeroRow,
    /// The PageRank classic: a walk at a dangling node jumps to a uniformly
    /// random node, so its row of `P` is `(1/n, …, 1/n)`.  Rows still sum to
    /// 1 (mass-conserving), but the surviving mass spreads over the whole
    /// graph instead of pooling at the sink.
    Teleport,
}

impl DanglingPolicy {
    /// The serialized name (used by declarative method configurations).
    pub fn as_str(self) -> &'static str {
        match self {
            DanglingPolicy::SelfLoop => "self-loop",
            DanglingPolicy::ZeroRow => "zero-row",
            DanglingPolicy::Teleport => "teleport",
        }
    }

    /// Parses the serialized name produced by [`DanglingPolicy::as_str`].
    pub fn from_str_name(name: &str) -> Option<Self> {
        match name {
            "self-loop" => Some(DanglingPolicy::SelfLoop),
            "zero-row" => Some(DanglingPolicy::ZeroRow),
            "teleport" => Some(DanglingPolicy::Teleport),
            _ => None,
        }
    }
}

impl serde::Serialize for DanglingPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_owned())
    }
}

impl serde::Deserialize for DanglingPolicy {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let name = value.as_str().ok_or_else(|| {
            serde::Error::custom(format!(
                "expected dangling-policy string, got {}",
                value.kind()
            ))
        })?;
        Self::from_str_name(name).ok_or_else(|| {
            serde::Error::custom(format!(
                "unknown dangling policy `{name}` (expected self-loop, zero-row or teleport)"
            ))
        })
    }
}

/// The random-walk transition matrix `P` of a graph
/// (`P[u, v] = 1/dout(u)` for each out-neighbour `v` of `u`, with dangling
/// rows resolved by a [`DanglingPolicy`]).
#[derive(Debug, Clone)]
pub struct TransitionOperator<'g> {
    graph: &'g Graph,
    inv_out_degree: Vec<f64>,
    dangling_nodes: Vec<u32>,
    policy: DanglingPolicy,
}

impl<'g> TransitionOperator<'g> {
    /// Wraps a graph as its transition matrix under the default
    /// [`DanglingPolicy::SelfLoop`].
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_policy(graph, DanglingPolicy::default())
    }

    /// Wraps a graph as its transition matrix under an explicit policy.
    pub fn with_policy(graph: &'g Graph, policy: DanglingPolicy) -> Self {
        let n = graph.num_nodes();
        let inv_out_degree = (0..n)
            .map(|u| {
                let d = graph.out_degree(u as u32);
                match (d, policy) {
                    (0, DanglingPolicy::SelfLoop) => 1.0,
                    (0, DanglingPolicy::ZeroRow) => 0.0,
                    (0, DanglingPolicy::Teleport) => 1.0 / n as f64,
                    (d, _) => 1.0 / d as f64,
                }
            })
            .collect();
        let dangling_nodes = (0..n as u32)
            .filter(|&u| graph.out_degree(u) == 0)
            .collect();
        Self {
            graph,
            inv_out_degree,
            dangling_nodes,
            policy,
        }
    }

    /// The dangling-node policy in effect.
    pub fn policy(&self) -> DanglingPolicy {
        self.policy
    }

    /// The vector of `1/dout(u)` values.  A dangling node's entry is its
    /// policy-implied degree: 1 under [`DanglingPolicy::SelfLoop`] (the
    /// implicit self-loop), 0 under [`DanglingPolicy::ZeroRow`] and `1/n`
    /// under [`DanglingPolicy::Teleport`] (the uniform jump).
    pub fn inverse_out_degrees(&self) -> &[f64] {
        &self.inv_out_degree
    }

    fn is_dangling(&self, u: usize) -> bool {
        self.graph.out_degree(u as u32) == 0
    }

    /// The row every Teleport-dangling node maps to under `P * x`: the column
    /// means of `x`.  Computed once per product, sequentially over ascending
    /// rows, so it is identical for every thread budget.  `None` when the
    /// policy never needs it.
    fn teleport_apply_row(&self, x: &DenseMatrix) -> Option<Vec<f64>> {
        if self.policy != DanglingPolicy::Teleport || self.dangling_nodes.is_empty() {
            return None;
        }
        let n = self.graph.num_nodes();
        let mut row = vec![0.0; x.cols()];
        for u in 0..n {
            for (acc, &xv) in row.iter_mut().zip(x.row(u)) {
                *acc += xv;
            }
        }
        let inv = 1.0 / n as f64;
        for acc in &mut row {
            *acc *= inv;
        }
        Some(row)
    }

    /// The contribution Teleport-dangling sources add to *every* row of
    /// `Pᵀ * x`: `(1/n) Σ_{dangling u} x_u`, summed over ascending node ids.
    fn teleport_transpose_row(&self, x: &DenseMatrix) -> Option<Vec<f64>> {
        if self.policy != DanglingPolicy::Teleport || self.dangling_nodes.is_empty() {
            return None;
        }
        let mut row = vec![0.0; x.cols()];
        for &u in &self.dangling_nodes {
            for (acc, &xv) in row.iter_mut().zip(x.row(u as usize)) {
                *acc += xv;
            }
        }
        let inv = 1.0 / self.graph.num_nodes() as f64;
        for acc in &mut row {
            *acc *= inv;
        }
        Some(row)
    }

    fn fill_apply_row(
        &self,
        x: &DenseMatrix,
        u: usize,
        uniform: Option<&[f64]>,
        out_row: &mut [f64],
    ) {
        let neighbors = self.graph.out_neighbors(u as u32);
        if neighbors.is_empty() {
            match self.policy {
                // Row u of P is e_u.
                DanglingPolicy::SelfLoop => out_row.copy_from_slice(x.row(u)),
                DanglingPolicy::ZeroRow => {}
                // Row u of P is (1/n, …, 1/n).
                DanglingPolicy::Teleport => {
                    out_row.copy_from_slice(uniform.expect("teleport row precomputed"))
                }
            }
            return;
        }
        let w = self.inv_out_degree[u];
        for &v in neighbors {
            let x_row = x.row(v as usize);
            for (o, &xv) in out_row.iter_mut().zip(x_row) {
                *o += w * xv;
            }
        }
    }

    fn fill_transpose_row(
        &self,
        x: &DenseMatrix,
        v: usize,
        teleport: Option<&[f64]>,
        out_row: &mut [f64],
    ) {
        // Row v of Pᵀ gathers from the in-neighbours of v (sorted ascending),
        // plus v itself when v is a dangling self-loop.  The self contribution
        // is merged at its sorted position so the summation order matches a
        // scatter over ascending source nodes exactly.
        let mut self_pending = self.is_dangling(v) && self.policy == DanglingPolicy::SelfLoop;
        for &u in self.graph.in_neighbors(v as u32) {
            if self_pending && (u as usize) > v {
                for (o, &xv) in out_row.iter_mut().zip(x.row(v)) {
                    *o += xv;
                }
                self_pending = false;
            }
            // An in-neighbour of v has the arc u → v, so it is never
            // dangling and its weight is 1/dout(u) under both policies.
            let w = self.inv_out_degree[u as usize];
            debug_assert!(w > 0.0 && !self.is_dangling(u as usize));
            let x_row = x.row(u as usize);
            for (o, &xv) in out_row.iter_mut().zip(x_row) {
                *o += w * xv;
            }
        }
        if self_pending {
            for (o, &xv) in out_row.iter_mut().zip(x.row(v)) {
                *o += xv;
            }
        }
        // Teleport-dangling sources scatter 1/n into every column of P, so
        // every output row gains the same precomputed vector.  Added after
        // the neighbour gathers — a fixed per-row order, hence still bitwise
        // identical for every thread budget.
        if let Some(teleport) = teleport {
            for (o, &t) in out_row.iter_mut().zip(teleport) {
                *o += t;
            }
        }
    }

    /// Computes `P * x` with up to `threads` worker threads over disjoint row
    /// chunks.  Bitwise identical to [`LinearOperator::apply`]: every output
    /// row is produced by exactly one thread with the same summation order,
    /// so results do not depend on the thread budget.
    pub fn apply_parallel(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        self.apply_with(x, threads)
    }
}

impl LinearOperator for TransitionOperator<'_> {
    fn nrows(&self) -> usize {
        self.graph.num_nodes()
    }

    fn ncols(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.apply_with(x, 1)
    }

    fn apply_transpose(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.apply_transpose_with(x, 1)
    }

    fn apply_with(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        self.apply_exec(x, &parallel::Exec::scoped(threads))
    }

    fn apply_transpose_with(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        self.apply_transpose_exec(x, &parallel::Exec::scoped(threads))
    }

    fn apply_exec(&self, x: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
        check_rows(self.ncols(), x, "transition * dense")?;
        let n = self.graph.num_nodes();
        let uniform = self.teleport_apply_row(x);
        let data = parallel::par_fill_rows_exec(n, x.cols(), exec, |u, out_row| {
            self.fill_apply_row(x, u, uniform.as_deref(), out_row)
        });
        DenseMatrix::from_vec(n, x.cols(), data)
    }

    fn apply_transpose_exec(&self, x: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
        check_rows(self.nrows(), x, "transitionᵀ * dense")?;
        let n = self.graph.num_nodes();
        let teleport = self.teleport_transpose_row(x);
        let data = parallel::par_fill_rows_exec(n, x.cols(), exec, |v, out_row| {
            self.fill_transpose_row(x, v, teleport.as_deref(), out_row)
        });
        DenseMatrix::from_vec(n, x.cols(), data)
    }
}

impl LinearOperator for DenseMatrix {
    fn nrows(&self) -> usize {
        self.rows()
    }

    fn ncols(&self) -> usize {
        self.cols()
    }

    fn apply(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.matmul(x)
    }

    fn apply_transpose(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.transpose_matmul(x)
    }

    fn apply_with(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        self.matmul_with(x, threads)
    }

    fn apply_exec(&self, x: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
        self.matmul_exec(x, exec)
    }
    // apply_transpose_with/_exec keep the sequential default: the
    // accumulation over rows would need the chunked-reduce grouping, which
    // differs in the last ulp from `transpose_matmul`.  Dense operators only
    // appear in tests and tiny problems, so there is nothing to win.
}

impl LinearOperator for SparseMatrix {
    fn nrows(&self) -> usize {
        self.rows()
    }

    fn ncols(&self) -> usize {
        self.cols()
    }

    fn apply(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.matmul_dense(x)
    }

    fn apply_transpose(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.transpose_matmul_dense(x)
    }

    fn apply_with(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        self.matmul_dense_with(x, threads)
    }

    fn apply_exec(&self, x: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
        self.matmul_dense_exec(x, exec)
    }
    // apply_transpose_with/_exec keep the sequential default; callers that
    // need a threaded transpose product wrap the matrix in a
    // [`SparseTransposePair`] so both directions are row-parallel gathers.
}

/// A sparse matrix paired with its precomputed transpose, so that both
/// `A * x` and `Aᵀ * x` are row-parallel CSR gathers — the form the
/// randomized SVD needs to spend its thread budget on sparse inputs (STRAP's
/// proximity matrix).  Gathering over the transpose visits sources in the
/// same ascending order as the sequential scatter, so results are bitwise
/// identical to [`SparseMatrix::transpose_matmul_dense`].
#[derive(Debug, Clone)]
pub struct SparseTransposePair {
    forward: SparseMatrix,
    transpose: SparseMatrix,
}

impl SparseTransposePair {
    /// Builds the pair, materializing the transpose once.
    pub fn new(matrix: SparseMatrix) -> Self {
        let transpose = matrix.transpose();
        Self {
            forward: matrix,
            transpose,
        }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &SparseMatrix {
        &self.forward
    }
}

impl LinearOperator for SparseTransposePair {
    fn nrows(&self) -> usize {
        self.forward.rows()
    }

    fn ncols(&self) -> usize {
        self.forward.cols()
    }

    fn apply(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.forward.matmul_dense(x)
    }

    fn apply_transpose(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.transpose.matmul_dense(x)
    }

    fn apply_with(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        self.forward.matmul_dense_with(x, threads)
    }

    fn apply_transpose_with(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        self.transpose.matmul_dense_with(x, threads)
    }

    fn apply_exec(&self, x: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
        self.forward.matmul_dense_exec(x, exec)
    }

    fn apply_transpose_exec(&self, x: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
        self.transpose.matmul_dense_exec(x, exec)
    }
}

/// Densifies an operator by applying it to the identity (tests only).
pub fn to_dense<O: LinearOperator>(op: &O) -> Result<DenseMatrix> {
    op.apply(&DenseMatrix::identity(op.ncols()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::{Graph, GraphKind};

    fn toy() -> Graph {
        Graph::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)],
            GraphKind::Directed,
        )
        .unwrap()
    }

    /// 0 → 1 → 2 with 2 dangling, plus 3 → 2 so node 2 has two in-neighbours.
    fn dangling_graph() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (3, 2), (3, 0)], GraphKind::Directed).unwrap()
    }

    #[test]
    fn adjacency_apply_matches_dense() {
        let g = toy();
        let op = AdjacencyOperator::new(&g);
        let dense = to_dense(&op).unwrap();
        assert_eq!(dense.get(0, 1), 1.0);
        assert_eq!(dense.get(0, 2), 1.0);
        assert_eq!(dense.get(1, 0), 0.0);
        let x = DenseMatrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let fast = op.apply(&x).unwrap();
        let slow = dense.matmul(&x).unwrap();
        assert!(fast.sub(&slow).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn adjacency_transpose_matches_dense_transpose() {
        let g = toy();
        let op = AdjacencyOperator::new(&g);
        let dense = to_dense(&op).unwrap();
        let x = DenseMatrix::from_fn(4, 2, |i, j| (i + j) as f64 + 0.5);
        let fast = op.apply_transpose(&x).unwrap();
        let slow = dense.transpose().matmul(&x).unwrap();
        assert!(fast.sub(&slow).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn transition_rows_sum_to_one_under_self_loop_policy() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)], GraphKind::Directed).unwrap();
        let op = TransitionOperator::new(&g);
        assert_eq!(op.policy(), DanglingPolicy::SelfLoop);
        let dense = to_dense(&op).unwrap();
        for u in 0..3 {
            let sum: f64 = dense.row(u).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {u} sums to {sum}");
        }
        // Dangling rows are unit vectors at the node itself.
        assert_eq!(dense.get(1, 1), 1.0);
        assert_eq!(dense.get(2, 2), 1.0);
        assert_eq!(dense.get(0, 1), 0.5);
        assert_eq!(op.inverse_out_degrees(), &[0.5, 1.0, 1.0]);
    }

    #[test]
    fn transition_zero_row_policy_keeps_dangling_rows_empty() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)], GraphKind::Directed).unwrap();
        let op = TransitionOperator::with_policy(&g, DanglingPolicy::ZeroRow);
        let dense = to_dense(&op).unwrap();
        let row1: f64 = dense.row(1).iter().sum();
        assert_eq!(row1, 0.0);
        assert_eq!(op.inverse_out_degrees(), &[0.5, 0.0, 0.0]);
    }

    #[test]
    fn transition_teleport_policy_spreads_dangling_mass_uniformly() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2)], GraphKind::Directed).unwrap();
        let op = TransitionOperator::with_policy(&g, DanglingPolicy::Teleport);
        let dense = to_dense(&op).unwrap();
        for u in 0..4 {
            let sum: f64 = dense.row(u).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {u} sums to {sum}");
        }
        // Dangling rows are uniform, non-dangling rows untouched.
        for v in 0..4 {
            assert!((dense.get(1, v) - 0.25).abs() < 1e-15);
            assert!((dense.get(3, v) - 0.25).abs() < 1e-15);
        }
        assert_eq!(dense.get(0, 1), 0.5);
        assert_eq!(op.inverse_out_degrees(), &[0.5, 0.25, 0.25, 0.25]);
        assert_eq!(op.policy(), DanglingPolicy::Teleport);
    }

    #[test]
    fn dangling_policy_names_round_trip() {
        for policy in [
            DanglingPolicy::SelfLoop,
            DanglingPolicy::ZeroRow,
            DanglingPolicy::Teleport,
        ] {
            assert_eq!(DanglingPolicy::from_str_name(policy.as_str()), Some(policy));
            let value = serde::Serialize::to_value(&policy);
            let back: DanglingPolicy = serde::Deserialize::from_value(&value).unwrap();
            assert_eq!(back, policy);
        }
        assert!(DanglingPolicy::from_str_name("uniform").is_none());
        let bad = serde::Value::String("uniform".into());
        assert!(<DanglingPolicy as serde::Deserialize>::from_value(&bad).is_err());
    }

    #[test]
    fn transition_transpose_matches_dense_for_all_policies() {
        for policy in [
            DanglingPolicy::SelfLoop,
            DanglingPolicy::ZeroRow,
            DanglingPolicy::Teleport,
        ] {
            for g in [toy(), dangling_graph()] {
                let op = TransitionOperator::with_policy(&g, policy);
                let dense = to_dense(&op).unwrap();
                let x = DenseMatrix::from_fn(4, 2, |i, j| ((i + 1) * (j + 2)) as f64);
                let fast = op.apply_transpose(&x).unwrap();
                let slow = dense.transpose().matmul(&x).unwrap();
                assert!(
                    fast.sub(&slow).unwrap().frobenius_norm() < 1e-12,
                    "{policy:?}"
                );
            }
        }
    }

    #[test]
    fn dense_matrix_as_operator() {
        let a = DenseMatrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let x = DenseMatrix::from_fn(4, 2, |i, j| (i + j) as f64);
        assert_eq!(a.apply(&x).unwrap(), a.matmul(&x).unwrap());
        assert_eq!(a.apply_with(&x, 3).unwrap(), a.matmul(&x).unwrap());
        let y = DenseMatrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        assert_eq!(
            a.apply_transpose(&y).unwrap(),
            a.transpose().matmul(&y).unwrap()
        );
    }

    #[test]
    fn sparse_matrix_as_operator() {
        let m = SparseMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (2, 0, 1.0)]).unwrap();
        let x = DenseMatrix::identity(3);
        let applied = m.apply(&x).unwrap();
        assert_eq!(applied.get(0, 1), 2.0);
        assert_eq!(applied.get(2, 0), 1.0);
    }

    #[test]
    fn sparse_transpose_pair_matches_plain_sparse_products() {
        let m = SparseMatrix::from_triplets(
            5,
            4,
            &[
                (0, 1, 2.0),
                (1, 3, -1.0),
                (2, 0, 0.5),
                (4, 2, 3.0),
                (4, 0, 1.5),
            ],
        )
        .unwrap();
        let pair = SparseTransposePair::new(m.clone());
        let x = DenseMatrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.1 + 1.0);
        let y = DenseMatrix::from_fn(5, 3, |i, j| (i + 2 * j) as f64 * 0.2 - 0.5);
        assert_eq!(pair.apply(&x).unwrap(), m.matmul_dense(&x).unwrap());
        assert_eq!(
            pair.apply_transpose(&y).unwrap(),
            m.transpose_matmul_dense(&y).unwrap()
        );
        for threads in [1usize, 2, 5] {
            assert_eq!(
                pair.apply_with(&x, threads).unwrap(),
                pair.apply(&x).unwrap()
            );
            assert_eq!(
                pair.apply_transpose_with(&y, threads).unwrap(),
                pair.apply_transpose(&y).unwrap()
            );
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let g = toy();
        let op = AdjacencyOperator::new(&g);
        let x = DenseMatrix::zeros(5, 2);
        assert!(op.apply(&x).is_err());
        assert!(op.apply_transpose(&x).is_err());
    }

    #[test]
    fn parallel_transition_apply_matches_sequential() {
        for policy in [
            DanglingPolicy::SelfLoop,
            DanglingPolicy::ZeroRow,
            DanglingPolicy::Teleport,
        ] {
            for g in [toy(), dangling_graph()] {
                let op = TransitionOperator::with_policy(&g, policy);
                let x = DenseMatrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.25 + 0.1);
                let sequential = op.apply(&x).unwrap();
                let sequential_t = op.apply_transpose(&x).unwrap();
                for threads in [1usize, 2, 3, 8] {
                    assert_eq!(
                        op.apply_parallel(&x, threads).unwrap(),
                        sequential,
                        "{policy:?}, threads = {threads}"
                    );
                    assert_eq!(
                        op.apply_transpose_with(&x, threads).unwrap(),
                        sequential_t,
                        "{policy:?}, threads = {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn undirected_adjacency_operator_is_symmetric() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], GraphKind::Undirected).unwrap();
        let op = AdjacencyOperator::new(&g);
        let dense = to_dense(&op).unwrap();
        assert!(dense.sub(&dense.transpose()).unwrap().frobenius_norm() < 1e-12);
    }
}
