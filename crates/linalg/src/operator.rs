//! Linear-operator abstraction over matrices that are never materialized.
//!
//! The randomized SVD and the PPR propagation only ever touch the adjacency
//! matrix `A` and the transition matrix `P = D⁻¹A` through products with
//! tall-skinny dense matrices.  [`LinearOperator`] captures exactly that
//! interface, and [`AdjacencyOperator`] / [`TransitionOperator`] implement it
//! directly on top of the graph's CSR structure — `O(m·k)` per product and no
//! `n × n` storage, the property that lets NRP scale to large graphs.

use nrp_graph::Graph;

use crate::{DenseMatrix, LinalgError, Result, SparseMatrix};

/// A real linear operator `A : R^{ncols} -> R^{nrows}` accessed only through
/// matrix products.
pub trait LinearOperator {
    /// Number of rows of the represented matrix.
    fn nrows(&self) -> usize;
    /// Number of columns of the represented matrix.
    fn ncols(&self) -> usize;
    /// Computes `A * x` for a dense `x` with `ncols()` rows.
    fn apply(&self, x: &DenseMatrix) -> Result<DenseMatrix>;
    /// Computes `Aᵀ * x` for a dense `x` with `nrows()` rows.
    fn apply_transpose(&self, x: &DenseMatrix) -> Result<DenseMatrix>;
}

fn check_rows(expected: usize, x: &DenseMatrix, operation: &str) -> Result<()> {
    if x.rows() != expected {
        return Err(LinalgError::ShapeMismatch {
            operation: operation.into(),
            left: (expected, expected),
            right: x.shape(),
        });
    }
    Ok(())
}

/// The (unweighted) adjacency matrix `A` of a graph: `A[u, v] = 1` iff the
/// arc `(u, v)` exists.
#[derive(Debug, Clone, Copy)]
pub struct AdjacencyOperator<'g> {
    graph: &'g Graph,
}

impl<'g> AdjacencyOperator<'g> {
    /// Wraps a graph's adjacency structure.
    pub fn new(graph: &'g Graph) -> Self {
        Self { graph }
    }
}

impl LinearOperator for AdjacencyOperator<'_> {
    fn nrows(&self) -> usize {
        self.graph.num_nodes()
    }

    fn ncols(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        check_rows(self.ncols(), x, "adjacency * dense")?;
        let n = self.graph.num_nodes();
        let mut out = DenseMatrix::zeros(n, x.cols());
        for u in 0..n {
            let out_row = out.row_mut(u);
            for &v in self.graph.out_neighbors(u as u32) {
                let x_row = x.row(v as usize);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += xv;
                }
            }
        }
        Ok(out)
    }

    fn apply_transpose(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        check_rows(self.nrows(), x, "adjacencyᵀ * dense")?;
        let n = self.graph.num_nodes();
        let mut out = DenseMatrix::zeros(n, x.cols());
        for u in 0..n {
            // Row u of Aᵀ has ones at the in-neighbours of u.
            let out_row = out.row_mut(u);
            for &v in self.graph.in_neighbors(u as u32) {
                let x_row = x.row(v as usize);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += xv;
                }
            }
        }
        Ok(out)
    }
}

/// The random-walk transition matrix `P = D⁻¹A` of a graph
/// (`P[u, v] = 1/dout(u)` for each out-neighbour `v` of `u`).
///
/// Rows of dangling nodes (out-degree zero) are all-zero, matching the
/// "terminate the walk" semantics the paper's PPR definition implies for
/// nodes without out-neighbours.
#[derive(Debug, Clone)]
pub struct TransitionOperator<'g> {
    graph: &'g Graph,
    inv_out_degree: Vec<f64>,
}

impl<'g> TransitionOperator<'g> {
    /// Wraps a graph as its transition matrix.
    pub fn new(graph: &'g Graph) -> Self {
        let inv_out_degree = (0..graph.num_nodes())
            .map(|u| {
                let d = graph.out_degree(u as u32);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            })
            .collect();
        Self {
            graph,
            inv_out_degree,
        }
    }

    /// The vector of `1/dout(u)` values (0 for dangling nodes).
    pub fn inverse_out_degrees(&self) -> &[f64] {
        &self.inv_out_degree
    }

    /// Computes `P * x` with up to `threads` worker threads over disjoint row
    /// chunks.  Bitwise identical to [`LinearOperator::apply`]: every output
    /// row is produced by exactly one thread with the same summation order,
    /// so results do not depend on the thread budget.
    pub fn apply_parallel(&self, x: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
        let n = self.graph.num_nodes();
        let threads = threads.clamp(1, n.max(1));
        if threads == 1 {
            return self.apply(x);
        }
        check_rows(self.ncols(), x, "transition * dense")?;
        let cols = x.cols();
        let chunk = n.div_ceil(threads);
        let chunks: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(n);
                if start >= end {
                    break;
                }
                handles.push(scope.spawn(move || {
                    let mut out = vec![0.0; (end - start) * cols];
                    for u in start..end {
                        let w = self.inv_out_degree[u];
                        if w == 0.0 {
                            continue;
                        }
                        let out_row = &mut out[(u - start) * cols..(u - start + 1) * cols];
                        for &v in self.graph.out_neighbors(u as u32) {
                            let x_row = x.row(v as usize);
                            for (o, &xv) in out_row.iter_mut().zip(x_row) {
                                *o += w * xv;
                            }
                        }
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let mut data = Vec::with_capacity(n * cols);
        for part in chunks {
            data.extend_from_slice(&part);
        }
        DenseMatrix::from_vec(n, cols, data)
    }
}

impl LinearOperator for TransitionOperator<'_> {
    fn nrows(&self) -> usize {
        self.graph.num_nodes()
    }

    fn ncols(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        check_rows(self.ncols(), x, "transition * dense")?;
        let n = self.graph.num_nodes();
        let mut out = DenseMatrix::zeros(n, x.cols());
        for u in 0..n {
            let w = self.inv_out_degree[u];
            if w == 0.0 {
                continue;
            }
            let out_row = out.row_mut(u);
            for &v in self.graph.out_neighbors(u as u32) {
                let x_row = x.row(v as usize);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += w * xv;
                }
            }
        }
        Ok(out)
    }

    fn apply_transpose(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        check_rows(self.nrows(), x, "transitionᵀ * dense")?;
        let n = self.graph.num_nodes();
        let mut out = DenseMatrix::zeros(n, x.cols());
        for u in 0..n {
            let w = self.inv_out_degree[u];
            if w == 0.0 {
                continue;
            }
            let x_row = x.row(u);
            for &v in self.graph.out_neighbors(u as u32) {
                let out_row = out.row_mut(v as usize);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += w * xv;
                }
            }
        }
        Ok(out)
    }
}

impl LinearOperator for DenseMatrix {
    fn nrows(&self) -> usize {
        self.rows()
    }

    fn ncols(&self) -> usize {
        self.cols()
    }

    fn apply(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.matmul(x)
    }

    fn apply_transpose(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.transpose_matmul(x)
    }
}

impl LinearOperator for SparseMatrix {
    fn nrows(&self) -> usize {
        self.rows()
    }

    fn ncols(&self) -> usize {
        self.cols()
    }

    fn apply(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.matmul_dense(x)
    }

    fn apply_transpose(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.transpose_matmul_dense(x)
    }
}

/// Densifies an operator by applying it to the identity (tests only).
pub fn to_dense<O: LinearOperator>(op: &O) -> Result<DenseMatrix> {
    op.apply(&DenseMatrix::identity(op.ncols()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::{Graph, GraphKind};

    fn toy() -> Graph {
        Graph::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)],
            GraphKind::Directed,
        )
        .unwrap()
    }

    #[test]
    fn adjacency_apply_matches_dense() {
        let g = toy();
        let op = AdjacencyOperator::new(&g);
        let dense = to_dense(&op).unwrap();
        assert_eq!(dense.get(0, 1), 1.0);
        assert_eq!(dense.get(0, 2), 1.0);
        assert_eq!(dense.get(1, 0), 0.0);
        let x = DenseMatrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let fast = op.apply(&x).unwrap();
        let slow = dense.matmul(&x).unwrap();
        assert!(fast.sub(&slow).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn adjacency_transpose_matches_dense_transpose() {
        let g = toy();
        let op = AdjacencyOperator::new(&g);
        let dense = to_dense(&op).unwrap();
        let x = DenseMatrix::from_fn(4, 2, |i, j| (i + j) as f64 + 0.5);
        let fast = op.apply_transpose(&x).unwrap();
        let slow = dense.transpose().matmul(&x).unwrap();
        assert!(fast.sub(&slow).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn transition_rows_sum_to_one_or_zero() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)], GraphKind::Directed).unwrap();
        let op = TransitionOperator::new(&g);
        let dense = to_dense(&op).unwrap();
        let row0: f64 = dense.row(0).iter().sum();
        let row1: f64 = dense.row(1).iter().sum();
        assert!((row0 - 1.0).abs() < 1e-12);
        assert_eq!(row1, 0.0); // dangling node
        assert_eq!(dense.get(0, 1), 0.5);
    }

    #[test]
    fn transition_transpose_matches_dense() {
        let g = toy();
        let op = TransitionOperator::new(&g);
        let dense = to_dense(&op).unwrap();
        let x = DenseMatrix::from_fn(4, 2, |i, j| ((i + 1) * (j + 2)) as f64);
        let fast = op.apply_transpose(&x).unwrap();
        let slow = dense.transpose().matmul(&x).unwrap();
        assert!(fast.sub(&slow).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn dense_matrix_as_operator() {
        let a = DenseMatrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let x = DenseMatrix::from_fn(4, 2, |i, j| (i + j) as f64);
        assert_eq!(a.apply(&x).unwrap(), a.matmul(&x).unwrap());
        let y = DenseMatrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        assert_eq!(
            a.apply_transpose(&y).unwrap(),
            a.transpose().matmul(&y).unwrap()
        );
    }

    #[test]
    fn sparse_matrix_as_operator() {
        let m = SparseMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (2, 0, 1.0)]).unwrap();
        let x = DenseMatrix::identity(3);
        let applied = m.apply(&x).unwrap();
        assert_eq!(applied.get(0, 1), 2.0);
        assert_eq!(applied.get(2, 0), 1.0);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let g = toy();
        let op = AdjacencyOperator::new(&g);
        let x = DenseMatrix::zeros(5, 2);
        assert!(op.apply(&x).is_err());
        assert!(op.apply_transpose(&x).is_err());
    }

    #[test]
    fn parallel_transition_apply_matches_sequential() {
        let g = toy();
        let op = TransitionOperator::new(&g);
        let x = DenseMatrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.25 + 0.1);
        let sequential = op.apply(&x).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let parallel = op.apply_parallel(&x, threads).unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn undirected_adjacency_operator_is_symmetric() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], GraphKind::Undirected).unwrap();
        let op = AdjacencyOperator::new(&g);
        let dense = to_dense(&op).unwrap();
        assert!(dense.sub(&dense.transpose()).unwrap().frobenius_norm() < 1e-12);
    }
}
