//! Seeded random matrix generation.
//!
//! The randomized SVD needs standard-normal test matrices; rather than pull
//! in `rand_distr` we sample Gaussians with the Box–Muller transform, which
//! is plenty for sketching purposes and keeps the dependency set minimal.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::DenseMatrix;

/// A seeded source of standard-normal samples.
#[derive(Debug, Clone)]
pub struct GaussianSampler {
    rng: ChaCha8Rng,
    cached: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
            cached: None,
        }
    }

    /// Draws one standard-normal sample.
    pub fn sample(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent normals.
        let u1: f64 = loop {
            let u = self.rng.gen::<f64>();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }
}

/// A `rows x cols` matrix with i.i.d. standard-normal entries.
pub fn gaussian_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut sampler = GaussianSampler::new(seed);
    DenseMatrix::from_fn(rows, cols, |_, _| sampler.sample())
}

/// A `rows x cols` matrix with i.i.d. normal entries scaled by `1/sqrt(cols)`
/// (the scaling used by RandNE-style random projections so that projected
/// norms are preserved in expectation).
pub fn scaled_gaussian_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut m = gaussian_matrix(rows, cols, seed);
    m.scale(1.0 / (cols as f64).sqrt());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments_are_roughly_standard() {
        let m = gaussian_matrix(200, 50, 7);
        let n = (m.rows() * m.cols()) as f64;
        let mean: f64 = m.data().iter().sum::<f64>() / n;
        let var: f64 = m
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn sampler_is_deterministic() {
        let a = gaussian_matrix(10, 10, 3);
        let b = gaussian_matrix(10, 10, 3);
        assert_eq!(a, b);
        let c = gaussian_matrix(10, 10, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn scaled_projection_preserves_norms_in_expectation() {
        // y = x^T * proj; E[||y||^2] = ||x||^2 = 400.  A single 64-column
        // projection has std ≈ 70 around that mean, so average several seeds
        // to keep the test far from the tolerance boundary.
        let x = vec![1.0; 400];
        let mut mean_norm_sq = 0.0;
        let seeds = [11u64, 12, 13, 14, 15];
        for &seed in &seeds {
            let proj = scaled_gaussian_matrix(400, 64, seed);
            let mut y = vec![0.0; 64];
            for (i, &xi) in x.iter().enumerate() {
                for (j, yj) in y.iter_mut().enumerate() {
                    *yj += xi * proj.get(i, j);
                }
            }
            mean_norm_sq += y.iter().map(|v| v * v).sum::<f64>() / seeds.len() as f64;
        }
        assert!(
            (mean_norm_sq - 400.0).abs() < 120.0,
            "projected norm {mean_norm_sq} too far from 400"
        );
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut s = GaussianSampler::new(1);
        for _ in 0..100 {
            let u = s.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn all_samples_finite() {
        let m = gaussian_matrix(100, 10, 999);
        assert!(m.is_finite());
    }
}
