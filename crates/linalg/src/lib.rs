//! # nrp-linalg
//!
//! Dense and randomized linear-algebra kernels required by the NRP
//! reproduction. Everything is implemented from scratch on top of `Vec<f64>`
//! so the workspace has no dependency on external BLAS/LAPACK or sparse
//! linear-algebra crates:
//!
//! * [`DenseMatrix`] — row-major dense matrices with the handful of
//!   operations the algorithms need (products, transposes, norms).
//! * [`qr`] — thin QR factorization by modified Gram–Schmidt with
//!   re-orthogonalization ("twice is enough"), used to orthonormalize
//!   randomized range bases.
//! * [`eig`] — a cyclic Jacobi symmetric eigensolver for the small
//!   `k' × k'` projected matrices.
//! * [`svd`] — exact SVD of small or tall-thin matrices via the
//!   eigendecomposition of the Gram matrix.
//! * [`randomized`] — randomized truncated SVD of large sparse operators:
//!   both plain subspace iteration (Halko et al.) and the block-Krylov
//!   variant (BKSVD, Musco & Musco 2015) the paper's Algorithm 1 calls for.
//! * [`sparse`] — CSR sparse matrices with `f64` values and sparse × dense
//!   products, plus the [`LinearOperator`] abstraction that lets the
//!   randomized SVD run directly on graph adjacency structures without
//!   materializing them as matrices.
//! * [`random`] — seeded Gaussian matrix generation (Box–Muller).
//! * [`parallel`] — deterministic chunked map/reduce with stable chunk
//!   ordering; every multi-threaded kernel in the workspace is built on it
//!   and is bitwise identical for any thread budget.  Work runs either on
//!   per-call scoped threads or on a persistent [`WorkerPool`] selected by an
//!   [`Exec`] policy — same chunk grid, same results, spawn cost paid once.

// Unsafe is denied everywhere except the two documented blocks in
// `parallel` (lifetime erasure for pool jobs, disjoint row-block writes),
// which carry their own `allow` and safety arguments.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod eig;
pub mod error;
pub mod matrix;
pub mod operator;
pub mod parallel;
pub mod qr;
pub mod random;
pub mod randomized;
pub mod sparse;
pub mod svd;

pub use error::LinalgError;
pub use matrix::DenseMatrix;
pub use operator::{
    AdjacencyOperator, DanglingPolicy, LinearOperator, SparseTransposePair, TransitionOperator,
};
pub use parallel::{Exec, WorkerPool};
pub use randomized::{RandomizedSvd, RandomizedSvdMethod, SvdResult};
pub use sparse::SparseMatrix;

/// Convenience result alias for linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
