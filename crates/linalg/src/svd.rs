//! Exact SVD of small or tall-thin dense matrices.
//!
//! We only ever need the SVD of matrices with one small dimension (the
//! projected sketch `B = Qᵀ A` has at most a few hundred rows), so the SVD is
//! computed from the eigendecomposition of the smaller Gram matrix:
//! `A = U Σ Vᵀ` with `AᵀA = V Σ² Vᵀ` (when `cols <= rows`) or
//! `AAᵀ = U Σ² Uᵀ` (when `rows < cols`).

use crate::eig::symmetric_eigen;
use crate::{DenseMatrix, LinalgError, Result};

/// A (possibly truncated) singular value decomposition `A ≈ U Σ Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `rows x k`.
    pub u: DenseMatrix,
    /// Singular values, descending, length `k`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `cols x k`.
    pub v: DenseMatrix,
}

impl Svd {
    /// Reconstructs `U Σ Vᵀ`.
    pub fn reconstruct(&self) -> DenseMatrix {
        let mut us = self.u.clone();
        us.scale_cols(&self.singular_values)
            .expect("dimension agrees by construction");
        us.matmul_transpose(&self.v)
            .expect("dimension agrees by construction")
    }

    /// Truncates to the top `k` singular triplets.
    pub fn truncate(&self, k: usize) -> Svd {
        let k = k.min(self.singular_values.len());
        Svd {
            u: self.u.truncate_cols(k),
            singular_values: self.singular_values[..k].to_vec(),
            v: self.v.truncate_cols(k),
        }
    }
}

/// Computes the SVD of `a` via the Gram-matrix eigendecomposition.
///
/// Singular values below `rel_tol * max_singular_value` are dropped (the
/// corresponding directions are numerically rank-deficient).
pub fn gram_svd(a: &DenseMatrix, rel_tol: f64) -> Result<Svd> {
    let (rows, cols) = a.shape();
    if rows == 0 || cols == 0 {
        return Err(LinalgError::InvalidParameter("svd of empty matrix".into()));
    }
    if cols <= rows {
        // AᵀA = V Σ² Vᵀ, U = A V Σ⁻¹.
        let gram = a.gram();
        let eig = symmetric_eigen(&gram)?;
        let (values, v) = clip(eig.values, eig.vectors, rel_tol);
        let sigma: Vec<f64> = values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let mut u = a.matmul(&v)?;
        let inv: Vec<f64> = sigma
            .iter()
            .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
            .collect();
        u.scale_cols(&inv)?;
        Ok(Svd {
            u,
            singular_values: sigma,
            v,
        })
    } else {
        // AAᵀ = U Σ² Uᵀ, V = Aᵀ U Σ⁻¹.
        let gram = a.matmul_transpose(a)?;
        let eig = symmetric_eigen(&gram)?;
        let (values, u) = clip(eig.values, eig.vectors, rel_tol);
        let sigma: Vec<f64> = values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let mut v = a.transpose_matmul(&u)?;
        let inv: Vec<f64> = sigma
            .iter()
            .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
            .collect();
        v.scale_cols(&inv)?;
        Ok(Svd {
            u,
            singular_values: sigma,
            v,
        })
    }
}

/// Convenience wrapper: top-`k` truncated SVD of a dense matrix.
pub fn truncated_svd(a: &DenseMatrix, k: usize) -> Result<Svd> {
    Ok(gram_svd(a, 1e-12)?.truncate(k))
}

fn clip(values: Vec<f64>, vectors: DenseMatrix, rel_tol: f64) -> (Vec<f64>, DenseMatrix) {
    let max = values.first().copied().unwrap_or(0.0).max(0.0);
    let cutoff = rel_tol * rel_tol * max; // eigenvalues are squared singular values
    let keep = values
        .iter()
        .filter(|&&l| l > cutoff && l > 0.0)
        .count()
        .max(1);
    (values[..keep].to_vec(), vectors.truncate_cols(keep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthogonality_defect;
    use crate::random::gaussian_matrix;

    #[test]
    fn reconstruction_of_full_rank_matrix() {
        let a = gaussian_matrix(12, 5, 3);
        let svd = gram_svd(&a, 1e-12).unwrap();
        let err = svd.reconstruct().sub(&a).unwrap().frobenius_norm() / a.frobenius_norm();
        assert!(err < 1e-9, "relative error {err}");
    }

    #[test]
    fn wide_matrix_uses_left_gram() {
        let a = gaussian_matrix(4, 20, 5);
        let svd = gram_svd(&a, 1e-12).unwrap();
        let err = svd.reconstruct().sub(&a).unwrap().frobenius_norm() / a.frobenius_norm();
        assert!(err < 1e-9);
        assert_eq!(svd.u.rows(), 4);
        assert_eq!(svd.v.rows(), 20);
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let a = gaussian_matrix(10, 7, 9);
        let svd = gram_svd(&a, 1e-12).unwrap();
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn factors_are_orthonormal() {
        let a = gaussian_matrix(15, 6, 17);
        let svd = gram_svd(&a, 1e-12).unwrap();
        assert!(orthogonality_defect(&svd.u) < 1e-8);
        assert!(orthogonality_defect(&svd.v) < 1e-8);
    }

    #[test]
    fn known_diagonal_singular_values() {
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]).unwrap();
        let svd = gram_svd(&a, 1e-12).unwrap();
        assert!((svd.singular_values[0] - 4.0).abs() < 1e-10);
        assert!((svd.singular_values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn truncated_svd_is_best_low_rank_in_frobenius() {
        // Rank-1 truncation of a matrix with a dominant direction.
        let u = gaussian_matrix(20, 1, 1);
        let v = gaussian_matrix(8, 1, 2);
        let mut low_rank = u.matmul_transpose(&v).unwrap();
        low_rank.scale(10.0);
        let noise = {
            let mut n = gaussian_matrix(20, 8, 3);
            n.scale(0.01);
            n
        };
        let a = low_rank.add(&noise).unwrap();
        let svd = truncated_svd(&a, 1).unwrap();
        let err = svd.reconstruct().sub(&a).unwrap().frobenius_norm() / a.frobenius_norm();
        assert!(
            err < 0.05,
            "rank-1 approximation should capture the dominant direction, err={err}"
        );
    }

    #[test]
    fn rank_deficient_matrix_clips_singular_values() {
        // Two identical columns -> rank 1.
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let svd = gram_svd(&a, 1e-9).unwrap();
        assert_eq!(svd.singular_values.len(), 1);
    }

    #[test]
    fn truncate_keeps_top_k() {
        let a = gaussian_matrix(9, 6, 23);
        let svd = gram_svd(&a, 1e-12).unwrap();
        let t = svd.truncate(2);
        assert_eq!(t.singular_values.len(), 2);
        assert_eq!(t.u.cols(), 2);
        assert_eq!(t.v.cols(), 2);
        assert_eq!(t.singular_values[0], svd.singular_values[0]);
    }

    #[test]
    fn empty_matrix_rejected() {
        assert!(gram_svd(&DenseMatrix::zeros(0, 3), 1e-12).is_err());
    }
}
