//! Thin QR factorization by modified Gram–Schmidt.
//!
//! Randomized SVD only needs an orthonormal basis of the sketch's column
//! space; modified Gram–Schmidt with one re-orthogonalization pass ("twice is
//! enough", Giraud et al.) delivers orthogonality to machine precision for
//! the well-conditioned sketches produced by Gaussian test matrices, at a
//! fraction of the implementation complexity of Householder reflections.

use crate::matrix::{dot, norm2};
use crate::{DenseMatrix, LinalgError, Result};

/// Result of a thin QR factorization `A = Q R` with `Q` having orthonormal
/// columns.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// The `m x k` orthonormal factor (`k <= min(m, n)`, rank-deficient
    /// columns are dropped).
    pub q: DenseMatrix,
    /// The `k x n` upper-triangular factor.
    pub r: DenseMatrix,
}

/// Computes a thin QR factorization of `a` (`m x n`, `m >= n` expected but
/// not required). Columns that are (numerically) linearly dependent on
/// earlier columns are dropped from `Q`.
pub fn thin_qr(a: &DenseMatrix) -> Result<QrFactors> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::InvalidParameter("qr of empty matrix".into()));
    }
    // Work with columns: copy A into column-major vectors.
    let mut cols: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut q_cols: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut r = DenseMatrix::zeros(n, n);
    let mut kept: Vec<usize> = Vec::with_capacity(n);
    let norm_scale = a.frobenius_norm().max(1.0);
    let tol = 1e-12 * norm_scale;
    for j in 0..n {
        let mut v = std::mem::take(&mut cols[j]);
        // Two passes of modified Gram–Schmidt against the kept columns.
        for _pass in 0..2 {
            for (qi, &orig_col) in q_cols.iter().zip(&kept) {
                let coeff = dot(qi, &v);
                r.add_to(orig_col, j, coeff);
                for (vk, qk) in v.iter_mut().zip(qi) {
                    *vk -= coeff * qk;
                }
            }
        }
        let norm = norm2(&v);
        if norm > tol {
            r.set(j, j, norm);
            for vk in &mut v {
                *vk /= norm;
            }
            q_cols.push(v);
            kept.push(j);
        }
        // else: dependent column, dropped from Q (R row stays zero).
    }
    let k = q_cols.len();
    let mut q = DenseMatrix::zeros(m, k);
    for (jq, col) in q_cols.iter().enumerate() {
        for (i, &val) in col.iter().enumerate() {
            q.set(i, jq, val);
        }
    }
    // Compact R: keep only the rows corresponding to kept pivots.
    let mut r_compact = DenseMatrix::zeros(k, n);
    for (new_row, &orig) in kept.iter().enumerate() {
        r_compact.row_mut(new_row).copy_from_slice(r.row(orig));
    }
    Ok(QrFactors { q, r: r_compact })
}

/// Returns an orthonormal basis of the column space of `a` (just the `Q`
/// factor of [`thin_qr`]).
pub fn orthonormalize(a: &DenseMatrix) -> Result<DenseMatrix> {
    Ok(thin_qr(a)?.q)
}

/// Measures how far the columns of `q` are from orthonormality:
/// `max |QᵀQ - I|`.
pub fn orthogonality_defect(q: &DenseMatrix) -> f64 {
    let gram = q.gram();
    let k = gram.rows();
    let mut defect = 0.0_f64;
    for i in 0..k {
        for j in 0..k {
            let target = if i == j { 1.0 } else { 0.0 };
            defect = defect.max((gram.get(i, j) - target).abs());
        }
    }
    defect
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian_matrix;

    #[test]
    fn qr_reconstructs_input() {
        let a = gaussian_matrix(20, 6, 3);
        let QrFactors { q, r } = thin_qr(&a).unwrap();
        let approx = q.matmul(&r).unwrap();
        let err = approx.sub(&a).unwrap().frobenius_norm();
        assert!(err < 1e-10, "reconstruction error {err}");
    }

    #[test]
    fn q_is_orthonormal() {
        let a = gaussian_matrix(50, 8, 11);
        let q = orthonormalize(&a).unwrap();
        assert!(orthogonality_defect(&q) < 1e-12);
        assert_eq!(q.shape(), (50, 8));
    }

    #[test]
    fn rank_deficient_columns_are_dropped() {
        // Third column = first + second.
        let a = DenseMatrix::from_rows(&[
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 1.0, 2.0],
            &[2.0, 0.0, 2.0],
        ])
        .unwrap();
        let q = orthonormalize(&a).unwrap();
        assert_eq!(q.cols(), 2);
        assert!(orthogonality_defect(&q) < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = gaussian_matrix(10, 5, 7);
        let QrFactors { q: _, r } = thin_qr(&a).unwrap();
        for i in 0..r.rows() {
            for j in 0..i.min(r.cols()) {
                assert!(r.get(i, j).abs() < 1e-12, "R[{i},{j}] = {}", r.get(i, j));
            }
        }
    }

    #[test]
    fn orthonormalize_is_idempotent_up_to_rotation() {
        let a = gaussian_matrix(30, 4, 2);
        let q1 = orthonormalize(&a).unwrap();
        let q2 = orthonormalize(&q1).unwrap();
        // Column spaces must agree: projector difference should vanish.
        let p1 = q1.matmul(&q1.transpose()).unwrap();
        let p2 = q2.matmul(&q2.transpose()).unwrap();
        assert!(p1.sub(&p2).unwrap().frobenius_norm() < 1e-10);
    }

    #[test]
    fn empty_matrix_rejected() {
        let a = DenseMatrix::zeros(0, 0);
        assert!(thin_qr(&a).is_err());
    }
}
