//! Thin QR factorization by modified Gram–Schmidt.
//!
//! Randomized SVD only needs an orthonormal basis of the sketch's column
//! space; modified Gram–Schmidt with one re-orthogonalization pass ("twice is
//! enough", Giraud et al.) delivers orthogonality to machine precision for
//! the well-conditioned sketches produced by Gaussian test matrices, at a
//! fraction of the implementation complexity of Householder reflections.

use crate::matrix::{dot, norm2};
use crate::{parallel, DenseMatrix, LinalgError, Result};

/// Result of a thin QR factorization `A = Q R` with `Q` having orthonormal
/// columns.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// The `m x k` orthonormal factor (`k <= min(m, n)`, rank-deficient
    /// columns are dropped).
    pub q: DenseMatrix,
    /// The `k x n` upper-triangular factor.
    pub r: DenseMatrix,
}

/// Computes a thin QR factorization of `a` (`m x n`, `m >= n` expected but
/// not required). Columns that are (numerically) linearly dependent on
/// earlier columns are dropped from `Q`.
pub fn thin_qr(a: &DenseMatrix) -> Result<QrFactors> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::InvalidParameter("qr of empty matrix".into()));
    }
    // Work with columns: copy A into column-major vectors.
    let mut cols: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut q_cols: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut r = DenseMatrix::zeros(n, n);
    let mut kept: Vec<usize> = Vec::with_capacity(n);
    let norm_scale = a.frobenius_norm().max(1.0);
    let tol = 1e-12 * norm_scale;
    for j in 0..n {
        let mut v = std::mem::take(&mut cols[j]);
        // Two passes of modified Gram–Schmidt against the kept columns.
        for _pass in 0..2 {
            for (qi, &orig_col) in q_cols.iter().zip(&kept) {
                let coeff = dot(qi, &v);
                r.add_to(orig_col, j, coeff);
                for (vk, qk) in v.iter_mut().zip(qi) {
                    *vk -= coeff * qk;
                }
            }
        }
        let norm = norm2(&v);
        if norm > tol {
            r.set(j, j, norm);
            for vk in &mut v {
                *vk /= norm;
            }
            q_cols.push(v);
            kept.push(j);
        }
        // else: dependent column, dropped from Q (R row stays zero).
    }
    let k = q_cols.len();
    let mut q = DenseMatrix::zeros(m, k);
    for (jq, col) in q_cols.iter().enumerate() {
        for (i, &val) in col.iter().enumerate() {
            q.set(i, jq, val);
        }
    }
    // Compact R: keep only the rows corresponding to kept pivots.
    let mut r_compact = DenseMatrix::zeros(k, n);
    for (new_row, &orig) in kept.iter().enumerate() {
        r_compact.row_mut(new_row).copy_from_slice(r.row(orig));
    }
    Ok(QrFactors { q, r: r_compact })
}

/// Returns an orthonormal basis of the column space of `a` (just the `Q`
/// factor of [`thin_qr`]).
pub fn orthonormalize(a: &DenseMatrix) -> Result<DenseMatrix> {
    Ok(thin_qr(a)?.q)
}

/// Returns an orthonormal basis of the column space of `a` using up to
/// `threads` scoped worker threads (see [`orthonormalize_exec`] for pooled
/// execution).
pub fn orthonormalize_with(a: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
    orthonormalize_exec(a, &parallel::Exec::scoped(threads))
}

/// Returns an orthonormal basis of the column space of `a` under an
/// [`parallel::Exec`] policy.
///
/// Uses classical Gram–Schmidt with one re-orthogonalization pass (CGS2,
/// "twice is enough" — Giraud et al.), whose two kernels parallelize without
/// changing any floating-point ordering: the projection coefficients
/// `Qᵀv` are independent whole-column dot products, and the update
/// `v ← v − Q (Qᵀv)` is independent per row.  The result is therefore
/// **bitwise identical for every thread budget** — the property the
/// randomized SVD's thread-invariance contract relies on.  (It differs in the
/// last ulps from the modified-Gram–Schmidt [`orthonormalize`], which is why
/// the two are separate entry points: callers pick one and stay with it.)
///
/// Columns numerically dependent on earlier columns are dropped, as in
/// [`thin_qr`].
pub fn orthonormalize_exec(a: &DenseMatrix, exec: &parallel::Exec) -> Result<DenseMatrix> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::InvalidParameter("qr of empty matrix".into()));
    }
    let tol = 1e-12 * a.frobenius_norm().max(1.0);
    let mut q_cols: Vec<Vec<f64>> = Vec::with_capacity(n.min(m));
    for j in 0..n {
        let mut v = a.col(j);
        for _pass in 0..2 {
            if q_cols.is_empty() {
                break;
            }
            // coeffs[i] = q_i · v — each dot is computed whole by one worker,
            // so the chunking over columns cannot affect any value.
            let coeffs: Vec<f64> = if !exec.is_parallel() {
                q_cols.iter().map(|qi| dot(qi, &v)).collect()
            } else {
                parallel::par_chunk_map_exec(q_cols.len(), 8, exec, |range| {
                    range.map(|i| dot(&q_cols[i], &v)).collect::<Vec<f64>>()
                })
                .into_iter()
                .flatten()
                .collect()
            };
            // v ← v − Σᵢ coeffs[i] · qᵢ.  Each element accumulates over i in
            // ascending order, so the allocation-free column-streaming
            // sequential path and the row-parallel path perform the exact
            // same per-element operation chain — bitwise identical.
            if !exec.is_parallel() {
                for (qi, &c) in q_cols.iter().zip(&coeffs) {
                    for (vk, qk) in v.iter_mut().zip(qi) {
                        *vk -= c * qk;
                    }
                }
            } else {
                v = parallel::par_fill_rows_exec(m, 1, exec, |row, out| {
                    let mut acc = v[row];
                    for (qi, &c) in q_cols.iter().zip(&coeffs) {
                        acc -= c * qi[row];
                    }
                    out[0] = acc;
                });
            }
        }
        let norm = norm2(&v);
        if norm > tol {
            for vk in &mut v {
                *vk /= norm;
            }
            q_cols.push(v);
        }
        // else: dependent column, dropped.
    }
    let k = q_cols.len();
    let mut q = DenseMatrix::zeros(m, k);
    for (jq, col) in q_cols.iter().enumerate() {
        for (i, &val) in col.iter().enumerate() {
            q.set(i, jq, val);
        }
    }
    Ok(q)
}

/// Measures how far the columns of `q` are from orthonormality:
/// `max |QᵀQ - I|`.
pub fn orthogonality_defect(q: &DenseMatrix) -> f64 {
    let gram = q.gram();
    let k = gram.rows();
    let mut defect = 0.0_f64;
    for i in 0..k {
        for j in 0..k {
            let target = if i == j { 1.0 } else { 0.0 };
            defect = defect.max((gram.get(i, j) - target).abs());
        }
    }
    defect
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian_matrix;

    #[test]
    fn qr_reconstructs_input() {
        let a = gaussian_matrix(20, 6, 3);
        let QrFactors { q, r } = thin_qr(&a).unwrap();
        let approx = q.matmul(&r).unwrap();
        let err = approx.sub(&a).unwrap().frobenius_norm();
        assert!(err < 1e-10, "reconstruction error {err}");
    }

    #[test]
    fn q_is_orthonormal() {
        let a = gaussian_matrix(50, 8, 11);
        let q = orthonormalize(&a).unwrap();
        assert!(orthogonality_defect(&q) < 1e-12);
        assert_eq!(q.shape(), (50, 8));
    }

    #[test]
    fn rank_deficient_columns_are_dropped() {
        // Third column = first + second.
        let a = DenseMatrix::from_rows(&[
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 1.0, 2.0],
            &[2.0, 0.0, 2.0],
        ])
        .unwrap();
        let q = orthonormalize(&a).unwrap();
        assert_eq!(q.cols(), 2);
        assert!(orthogonality_defect(&q) < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = gaussian_matrix(10, 5, 7);
        let QrFactors { q: _, r } = thin_qr(&a).unwrap();
        for i in 0..r.rows() {
            for j in 0..i.min(r.cols()) {
                assert!(r.get(i, j).abs() < 1e-12, "R[{i},{j}] = {}", r.get(i, j));
            }
        }
    }

    #[test]
    fn orthonormalize_is_idempotent_up_to_rotation() {
        let a = gaussian_matrix(30, 4, 2);
        let q1 = orthonormalize(&a).unwrap();
        let q2 = orthonormalize(&q1).unwrap();
        // Column spaces must agree: projector difference should vanish.
        let p1 = q1.matmul(&q1.transpose()).unwrap();
        let p2 = q2.matmul(&q2.transpose()).unwrap();
        assert!(p1.sub(&p2).unwrap().frobenius_norm() < 1e-10);
    }

    #[test]
    fn empty_matrix_rejected() {
        let a = DenseMatrix::zeros(0, 0);
        assert!(thin_qr(&a).is_err());
        assert!(orthonormalize_with(&a, 4).is_err());
    }

    #[test]
    fn cgs2_basis_is_orthonormal_and_spans_the_input() {
        let a = gaussian_matrix(60, 9, 17);
        let q = orthonormalize_with(&a, 3).unwrap();
        assert_eq!(q.shape(), (60, 9));
        assert!(orthogonality_defect(&q) < 1e-12);
        // Same column space as the MGS basis: projectors agree.
        let q_mgs = orthonormalize(&a).unwrap();
        let p1 = q.matmul(&q.transpose()).unwrap();
        let p2 = q_mgs.matmul(&q_mgs.transpose()).unwrap();
        assert!(p1.sub(&p2).unwrap().frobenius_norm() < 1e-10);
    }

    #[test]
    fn cgs2_is_bitwise_invariant_across_thread_counts() {
        let a = gaussian_matrix(123, 11, 23);
        let reference = orthonormalize_with(&a, 1).unwrap();
        for threads in [2usize, 4, 8] {
            assert_eq!(
                orthonormalize_with(&a, threads).unwrap(),
                reference,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn cgs2_drops_dependent_columns() {
        let a = DenseMatrix::from_rows(&[
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 1.0, 2.0],
            &[2.0, 0.0, 2.0],
        ])
        .unwrap();
        let q = orthonormalize_with(&a, 2).unwrap();
        assert_eq!(q.cols(), 2);
        assert!(orthogonality_defect(&q) < 1e-12);
    }
}
