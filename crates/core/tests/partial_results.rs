//! Partial-result cancellation: `EmbedContext::with_partial_results` turns
//! a raised cancel flag into "return the best embedding so far" instead of
//! `Err(Cancelled)`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nrp_core::reweight::{learn_weights_with, NodeWeights, ReweightConfig};
use nrp_core::{ApproxPpr, ApproxPprParams, EmbedContext, Embedder, Nrp, NrpError, NrpParams};
use nrp_graph::generators::stochastic_block_model;
use nrp_graph::{Graph, GraphKind};

fn test_graph() -> Graph {
    let (graph, _labels) = stochastic_block_model(&[60, 60, 60], 0.2, 0.01, GraphKind::Directed, 5)
        .expect("SBM generates");
    graph
}

fn raised_flag() -> Arc<AtomicBool> {
    Arc::new(AtomicBool::new(true))
}

#[test]
fn default_context_still_fails_with_cancelled() {
    let graph = test_graph();
    let params = NrpParams::builder().dimension(8).seed(3).build().unwrap();
    let ctx = EmbedContext::new().with_cancel_flag(raised_flag());
    let outcome = Nrp::new(params).embed(&graph, &ctx);
    assert!(matches!(outcome, Err(NrpError::Cancelled)));
}

#[test]
fn cancellation_before_any_work_is_still_an_error_even_with_partial() {
    // With the flag raised before the run starts there is nothing partial
    // to hand back, so opting in must not change the entry-point error.
    let graph = test_graph();
    let params = NrpParams::builder().dimension(8).seed(3).build().unwrap();
    let ctx = EmbedContext::new()
        .with_cancel_flag(raised_flag())
        .with_partial_results();
    let outcome = Nrp::new(params).embed(&graph, &ctx);
    assert!(matches!(outcome, Err(NrpError::Cancelled)));
}

#[test]
fn partial_reweight_returns_the_weights_so_far() {
    let graph = test_graph();
    let approx = ApproxPpr::new(ApproxPprParams {
        half_dimension: 4,
        num_hops: 4,
        seed: 3,
        ..ApproxPprParams::default()
    });
    let ctx = EmbedContext::new();
    let (x, y) = approx.factorize_with(&graph, &ctx).unwrap();
    let config = ReweightConfig {
        epochs: 5,
        seed: 3,
        ..ReweightConfig::default()
    };

    // Cancelled at epoch 0 with partial results: the epoch loop breaks
    // before doing any work, handing back the initial weights.
    let partial_ctx = EmbedContext::new()
        .with_cancel_flag(raised_flag())
        .with_partial_results();
    let weights = learn_weights_with(&graph, &x, &y, &config, &partial_ctx)
        .expect("partial results turn cancellation into an early return");
    let initial = NodeWeights::initialize(&graph);
    assert_eq!(weights.forward, initial.forward);
    assert_eq!(weights.backward, initial.backward);

    // Without the opt-in the same cancellation is an error.
    let strict_ctx = EmbedContext::new().with_cancel_flag(raised_flag());
    let outcome = learn_weights_with(&graph, &x, &y, &config, &strict_ctx);
    assert!(matches!(outcome, Err(NrpError::Cancelled)));
}

#[test]
fn mid_run_cancellation_with_partial_yields_a_usable_embedding() {
    // Timing-based: the watcher raises the flag shortly after the run
    // starts.  Whichever stage the flag lands in, the contract is the same
    // — either the run had not produced anything yet (entry-point
    // cancellation, an error) or it returns a well-formed, finite
    // embedding.  On this graph the run takes long enough that the partial
    // path is what actually executes.
    let graph = test_graph();
    let params = NrpParams::builder()
        .dimension(16)
        .num_hops(8)
        .reweight_epochs(10)
        .seed(3)
        .build()
        .unwrap();
    let flag = Arc::new(AtomicBool::new(false));
    let ctx = EmbedContext::new()
        .with_cancel_flag(Arc::clone(&flag))
        .with_partial_results();
    let watcher = {
        let flag = Arc::clone(&flag);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            flag.store(true, Ordering::SeqCst);
        })
    };
    let outcome = Nrp::new(params).embed(&graph, &ctx);
    watcher.join().unwrap();
    match outcome {
        Ok(output) => {
            let embedding = output.into_parts().0;
            let n = graph.num_nodes();
            assert_eq!(embedding.dimension(), 16);
            for u in 0..n as u32 {
                for v in [0u32, (n as u32) / 2, (n as u32) - 1] {
                    assert!(
                        embedding.score(u, v).is_finite(),
                        "partial embedding has a non-finite score at ({u},{v})"
                    );
                }
            }
        }
        Err(NrpError::Cancelled) => {
            // The flag won the race to the entry check — legal, nothing
            // partial existed yet.
        }
        Err(other) => panic!("unexpected error: {other}"),
    }
}
