//! Asserts the zero-allocation contract of the forward-push hot path: with a
//! warmed [`PushWorkspace`], `forward_push_into` performs **no heap
//! allocation at all**, for any source.
//!
//! The proof is a counting global allocator: every `alloc`/`realloc` in the
//! test binary bumps an atomic, and the assertion window around the pushes
//! must observe zero bumps.  The test is single-threaded within the window
//! (no other test runs concurrently in this binary), so the counter is
//! attributable to the pushes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use nrp_core::push::{forward_push_into, PushWorkspace};
use nrp_core::DanglingPolicy;
use nrp_graph::generators::stochastic_block_model;
use nrp_graph::{Graph, GraphKind, NodeId};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation verbatim to the `System` allocator; the
// counter is a side effect with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards to `System::alloc` with the caller's layout unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwards the caller's pointer/layout pair to `System::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards the caller's arguments to `System::realloc` verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: forwards to `System::alloc_zeroed` with the layout unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn test_graph() -> Graph {
    stochastic_block_model(&[60, 60], 0.1, 0.02, GraphKind::Directed, 5)
        .expect("valid SBM parameters")
        .0
}

#[test]
fn warm_workspace_pushes_allocate_nothing() {
    let graph = test_graph();
    let n = graph.num_nodes();
    // Pre-sizing for the graph makes even the first push allocation-free;
    // the warm-up sweep below additionally covers the lazily-grown path.
    let mut ws = PushWorkspace::with_capacity(n);
    for source in 0..n as NodeId {
        forward_push_into(
            &graph,
            source,
            0.15,
            1e-4,
            DanglingPolicy::SelfLoop,
            &mut ws,
        )
        .expect("push succeeds");
    }

    // The measured window: one full sweep over every source with the warm
    // workspace must not touch the allocator.
    let mut total_pushes = 0usize;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for source in 0..n as NodeId {
        let outcome = forward_push_into(
            &graph,
            source,
            0.15,
            1e-4,
            DanglingPolicy::SelfLoop,
            &mut ws,
        )
        .expect("push succeeds");
        total_pushes += outcome.num_pushes;
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "forward_push_into allocated {} times across {n} warm-workspace sources",
        after - before
    );
    assert!(total_pushes > 0, "the sweep did real work");
    assert!(ws.estimates().iter().any(|&(_, p)| p > 0.0));
}

#[test]
fn workspace_grown_from_a_smaller_graph_is_also_allocation_free() {
    // The lazily-grown path: warm the workspace on a small graph first, let
    // `ensure` grow it to the big graph, then assert the grown buffers
    // really hold the full sweep without reallocating (reserve must target
    // capacity n, not `n - old_capacity` more).
    let small = stochastic_block_model(&[10, 10], 0.2, 0.05, GraphKind::Directed, 3)
        .expect("valid SBM parameters")
        .0;
    let graph = test_graph();
    let n = graph.num_nodes();
    let mut ws = PushWorkspace::new();
    forward_push_into(&small, 0, 0.15, 1e-4, DanglingPolicy::SelfLoop, &mut ws)
        .expect("push succeeds");
    for source in 0..n as NodeId {
        forward_push_into(
            &graph,
            source,
            0.15,
            1e-4,
            DanglingPolicy::SelfLoop,
            &mut ws,
        )
        .expect("push succeeds");
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for source in 0..n as NodeId {
        forward_push_into(
            &graph,
            source,
            0.15,
            1e-4,
            DanglingPolicy::SelfLoop,
            &mut ws,
        )
        .expect("push succeeds");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "grown-then-warm workspace allocated {} times",
        after - before
    );
}

#[test]
fn pre_sized_workspace_first_push_allocates_nothing() {
    let graph = test_graph();
    let n = graph.num_nodes();
    let mut ws = PushWorkspace::with_capacity(n);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    forward_push_into(&graph, 7, 0.15, 1e-4, DanglingPolicy::SelfLoop, &mut ws)
        .expect("push succeeds");
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "with_capacity({n}) must make even the first push allocation-free"
    );
}
