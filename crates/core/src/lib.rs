//! # nrp-core
//!
//! The paper's contribution: **NRP (Node-Reweighted PageRank)** homogeneous
//! network embeddings, together with the **ApproxPPR** baseline it builds on
//! (Yang et al., *Homogeneous Network Embedding for Massive Graphs via
//! Reweighted Personalized PageRank*, PVLDB 13(5), 2020).
//!
//! The pipeline has two stages:
//!
//! 1. [`approx_ppr::ApproxPpr`] (paper Algorithm 1) factorizes the truncated
//!    personalized-PageRank series `Π' = Σ_{i=1..ℓ1} α(1-α)^i P^i` into
//!    forward embeddings `X` and backward embeddings `Y` such that
//!    `X_u · Y_v ≈ π(u, v)`, without ever materializing the `n × n` PPR
//!    matrix: a randomized block-Krylov SVD of the adjacency matrix provides
//!    the initial factors and `ℓ1 - 1` sparse propagations fold in the
//!    higher-order terms.
//! 2. [`reweight`] (paper Algorithms 2–4) learns per-node forward and
//!    backward weights by coordinate descent so that the total embedded
//!    proximity out of (into) each node matches its out- (in-) degree, fixing
//!    the "PPR is a relative measure" deficiency illustrated by the paper's
//!    Fig. 1.  [`nrp::Nrp`] (Algorithm 3) glues the stages together.
//!
//! Supporting modules: [`ppr`] computes exact PPR matrices for small graphs
//! (ground truth in tests and the Table 1 harness), [`push`] implements
//! forward-push approximate single-source PPR (used by the STRAP baseline),
//! and [`embedding`] defines the [`embedding::Embedding`] container plus the
//! [`embedding::Embedder`] trait shared by every method in the workspace.
//!
//! The public API is organized around two pieces:
//!
//! * [`config::MethodConfig`] — every method described as serde-backed data
//!   (`{"method": "NRP", ...}`), with paper defaults for missing fields, a
//!   JSON/TOML round trip and a registry that resolves a config to a boxed
//!   [`embedding::Embedder`] via [`config::MethodConfig::build`].
//! * [`context::EmbedContext`] / [`context::EmbedOutput`] — the v2 embedding
//!   interface: runs accept a context (seed override, thread budget,
//!   cancellation flag) and return the embedding together with per-stage
//!   wall-clock metadata.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx_ppr;
pub mod config;
pub mod context;
pub mod embedding;
pub mod error;
pub mod nrp;
pub mod ppr;
pub mod push;
pub mod reweight;

/// Deterministic data-parallel primitives (re-exported from `nrp-linalg`):
/// scoped-thread chunked map/reduce with stable chunk ordering.  Everything
/// built on this module is bitwise identical for any thread budget — the
/// contract behind [`EmbedContext::with_threads`](context::EmbedContext).
pub use nrp_linalg::parallel;

pub use approx_ppr::{ApproxPpr, ApproxPprParams};
pub use config::{flat_toml_to_value, register_method, registered_methods, MethodConfig};
pub use context::{EmbedContext, EmbedOutput, RunMetadata, StageClock, StageTiming};
pub use embedding::{Embedder, Embedding};
pub use error::{NrpError, PushParamError};
pub use nrp::{Nrp, NrpParams};
pub use nrp_linalg::DanglingPolicy;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NrpError>;
