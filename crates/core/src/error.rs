//! Error type for embedding construction.

use std::fmt;

use nrp_graph::GraphError;
use nrp_linalg::LinalgError;

/// An invalid forward-push parameter, captured as typed fields.
///
/// Push validation runs on the warm serving path (`forward_push_into`),
/// which must not allocate — so the error is `Copy` and formats lazily on
/// `Display` instead of carrying a `format!`-built message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PushParamError {
    /// `alpha` outside the open interval `(0, 1)`.
    Alpha(f64),
    /// `r_max` not strictly positive.
    RMax(f64),
    /// `source` at or past the graph's node count.
    SourceOutOfBounds {
        /// The out-of-range node id.
        source: u32,
        /// The graph's node count.
        nodes: usize,
    },
}

impl fmt::Display for PushParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushParamError::Alpha(alpha) => write!(f, "alpha must be in (0,1), got {alpha}"),
            PushParamError::RMax(r_max) => write!(f, "r_max must be positive, got {r_max}"),
            PushParamError::SourceOutOfBounds { source, nodes } => {
                write!(f, "source {source} out of bounds for {nodes} nodes")
            }
        }
    }
}

/// Errors produced while constructing embeddings.
#[derive(Debug)]
pub enum NrpError {
    /// A parameter was outside its valid range.
    InvalidParameter(String),
    /// A forward-push parameter was outside its valid range (typed: the
    /// warm path reports it without allocating).
    PushParam(PushParamError),
    /// The underlying graph operation failed.
    Graph(GraphError),
    /// The underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// Serialization or file I/O failed.
    Io(std::io::Error),
    /// Embedding (de)serialization failed.
    Serialization(String),
    /// The run was cancelled through its `EmbedContext` flag.
    Cancelled,
    /// A `MethodConfig` named a method with no registered builder.
    UnknownMethod(String),
}

impl fmt::Display for NrpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NrpError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            NrpError::PushParam(err) => write!(f, "invalid parameter: {err}"),
            NrpError::Graph(err) => write!(f, "graph error: {err}"),
            NrpError::Linalg(err) => write!(f, "linear algebra error: {err}"),
            NrpError::Io(err) => write!(f, "i/o error: {err}"),
            NrpError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            NrpError::Cancelled => write!(f, "embedding run cancelled"),
            NrpError::UnknownMethod(msg) => write!(f, "unknown method: {msg}"),
        }
    }
}

impl std::error::Error for NrpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NrpError::Graph(err) => Some(err),
            NrpError::Linalg(err) => Some(err),
            NrpError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<PushParamError> for NrpError {
    fn from(err: PushParamError) -> Self {
        NrpError::PushParam(err)
    }
}

impl From<GraphError> for NrpError {
    fn from(err: GraphError) -> Self {
        NrpError::Graph(err)
    }
}

impl From<LinalgError> for NrpError {
    fn from(err: LinalgError) -> Self {
        NrpError::Linalg(err)
    }
}

impl From<std::io::Error> for NrpError {
    fn from(err: std::io::Error) -> Self {
        NrpError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let err = NrpError::InvalidParameter("alpha out of range".into());
        assert!(err.to_string().contains("alpha"));
        let err: NrpError = GraphError::EmptyGraph.into();
        assert!(err.to_string().contains("graph"));
        let err: NrpError = LinalgError::InvalidParameter("rank".into()).into();
        assert!(err.to_string().contains("linear algebra"));
    }

    #[test]
    fn sources_are_preserved() {
        let err: NrpError = GraphError::EmptyGraph.into();
        assert!(std::error::Error::source(&err).is_some());
        let err = NrpError::InvalidParameter("x".into());
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn push_param_errors_format_lazily() {
        let err: NrpError = PushParamError::Alpha(1.5).into();
        assert_eq!(
            err.to_string(),
            "invalid parameter: alpha must be in (0,1), got 1.5"
        );
        let err: NrpError = PushParamError::RMax(0.0).into();
        assert!(err.to_string().contains("r_max must be positive"));
        let err: NrpError = PushParamError::SourceOutOfBounds {
            source: 9,
            nodes: 4,
        }
        .into();
        assert_eq!(
            err.to_string(),
            "invalid parameter: source 9 out of bounds for 4 nodes"
        );
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn new_variants_display() {
        assert!(NrpError::Cancelled.to_string().contains("cancelled"));
        let err = NrpError::UnknownMethod("GCN is not registered".into());
        assert!(err.to_string().contains("GCN"));
        assert!(std::error::Error::source(&err).is_none());
    }
}
