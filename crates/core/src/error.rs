//! Error type for embedding construction.

use std::fmt;

use nrp_graph::GraphError;
use nrp_linalg::LinalgError;

/// Errors produced while constructing embeddings.
#[derive(Debug)]
pub enum NrpError {
    /// A parameter was outside its valid range.
    InvalidParameter(String),
    /// The underlying graph operation failed.
    Graph(GraphError),
    /// The underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// Serialization or file I/O failed.
    Io(std::io::Error),
    /// Embedding (de)serialization failed.
    Serialization(String),
    /// The run was cancelled through its `EmbedContext` flag.
    Cancelled,
    /// A `MethodConfig` named a method with no registered builder.
    UnknownMethod(String),
}

impl fmt::Display for NrpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NrpError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            NrpError::Graph(err) => write!(f, "graph error: {err}"),
            NrpError::Linalg(err) => write!(f, "linear algebra error: {err}"),
            NrpError::Io(err) => write!(f, "i/o error: {err}"),
            NrpError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            NrpError::Cancelled => write!(f, "embedding run cancelled"),
            NrpError::UnknownMethod(msg) => write!(f, "unknown method: {msg}"),
        }
    }
}

impl std::error::Error for NrpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NrpError::Graph(err) => Some(err),
            NrpError::Linalg(err) => Some(err),
            NrpError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<GraphError> for NrpError {
    fn from(err: GraphError) -> Self {
        NrpError::Graph(err)
    }
}

impl From<LinalgError> for NrpError {
    fn from(err: LinalgError) -> Self {
        NrpError::Linalg(err)
    }
}

impl From<std::io::Error> for NrpError {
    fn from(err: std::io::Error) -> Self {
        NrpError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let err = NrpError::InvalidParameter("alpha out of range".into());
        assert!(err.to_string().contains("alpha"));
        let err: NrpError = GraphError::EmptyGraph.into();
        assert!(err.to_string().contains("graph"));
        let err: NrpError = LinalgError::InvalidParameter("rank".into()).into();
        assert!(err.to_string().contains("linear algebra"));
    }

    #[test]
    fn sources_are_preserved() {
        let err: NrpError = GraphError::EmptyGraph.into();
        assert!(std::error::Error::source(&err).is_some());
        let err = NrpError::InvalidParameter("x".into());
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn new_variants_display() {
        assert!(NrpError::Cancelled.to_string().contains("cancelled"));
        let err = NrpError::UnknownMethod("GCN is not registered".into());
        assert!(err.to_string().contains("GCN"));
        assert!(std::error::Error::source(&err).is_none());
    }
}
