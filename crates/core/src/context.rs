//! Execution context and run metadata for the v2 [`Embedder`] interface.
//!
//! [`EmbedContext`] is how callers influence a run without touching the
//! method's own parameters: override the RNG seed, grant a thread budget, or
//! hand in a cancellation flag that long runs check at stage boundaries.
//! [`EmbedOutput`] is what a run returns: the [`Embedding`] plus
//! [`RunMetadata`] — per-stage wall-clock timings and the effective
//! parameters echoed back as a [`MethodConfig`].
//!
//! [`Embedder`]: crate::embedding::Embedder

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use nrp_linalg::parallel::{Exec, WorkerPool};
use nrp_obs::{clock, MetricsHandle};

// `StageClock` lived here through PR 9; it migrated into `nrp-obs` when that
// crate became the workspace's designated clock owner.  Re-exported so
// `nrp_core::context::{StageClock, StageTiming}` paths (and the umbrella
// prelude) keep working.
pub use nrp_obs::clock::{StageClock, StageTiming};

use crate::config::MethodConfig;
use crate::embedding::Embedding;
use crate::{NrpError, Result};

/// Per-run execution parameters, orthogonal to the method's hyper-parameters.
///
/// The default context (`EmbedContext::default()`) reproduces the method's
/// configured behaviour exactly: no seed override, a single-thread budget and
/// no cancellation.
///
/// ## Worker-pool ownership
///
/// A context with a multi-thread budget owns a persistent
/// [`WorkerPool`], created lazily on the first [`EmbedContext::exec`] call
/// and shared by every stage of every embedding run under this context (and
/// its clones).  Thread-spawn cost is therefore paid **once per context**,
/// not once per kernel invocation — an embedding issues thousands of small
/// parallel stages (propagation hops × Krylov iterations × CGS2 passes), and
/// under the historical scoped-thread policy each paid a spawn/join round
/// trip.  Pooled and scoped execution are bitwise identical; choose scoped
/// explicitly with [`EmbedContext::with_scoped_threads`] (e.g. to
/// cross-check, or for one-shot runs where pool startup isn't worth it).
#[derive(Debug, Clone, Default)]
pub struct EmbedContext {
    seed: Option<u64>,
    threads: Option<NonZeroUsize>,
    cancel: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    // The cell itself is behind an `Arc` so clones share the *lazily created*
    // pool too: whichever context (original or clone) runs first initializes
    // the one cell every sibling reads.
    pool: Arc<OnceLock<Arc<WorkerPool>>>,
    scoped_only: bool,
    partial_results: bool,
    metrics: MetricsHandle,
}

impl EmbedContext {
    /// A context with no overrides.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the method's configured RNG seed for this run.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Grants a thread budget (clamped to at least 1).  Methods use up to
    /// this many threads in their data-parallel stages; the result is
    /// bitwise independent of the budget.
    ///
    /// Multi-thread budgets run on a persistent [`WorkerPool`] owned by this
    /// context (created lazily, reused across stages and runs, and shared
    /// with clones of this context).  See
    /// [`EmbedContext::with_scoped_threads`] for per-call scoped threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        let threads = threads.max(1);
        self.threads = NonZeroUsize::new(threads);
        self.scoped_only = false;
        // A pool created for a smaller previous budget would silently clamp
        // the new one (dispatch caps workers at pool capacity), so detach
        // from it and let the next run create a right-sized pool.  Clones
        // holding the old cell keep their pool.
        if self
            .pool
            .get()
            .is_some_and(|pool| pool.capacity() < threads)
        {
            self.pool = Arc::new(OnceLock::new());
        }
        self
    }

    /// Grants a thread budget served by fresh `std::thread::scope` workers
    /// per kernel call instead of the context's persistent pool.  Results
    /// are bitwise identical to pooled execution; this exists for one-shot
    /// runs and for tests that cross-check the two policies.
    pub fn with_scoped_threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads.max(1));
        self.scoped_only = true;
        self
    }

    /// Attaches an existing worker pool, sharing it with other contexts
    /// (e.g. one pool across a whole benchmark sweep).  The thread budget is
    /// still set separately via [`EmbedContext::with_threads`] and is
    /// clamped to the pool's capacity at dispatch time.
    pub fn with_worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Arc::new(OnceLock::from(pool));
        self.scoped_only = false;
        self
    }

    /// The context's worker pool, if one has been attached or lazily
    /// created.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.get()
    }

    /// The execution policy embedders hand to every parallel kernel: the
    /// thread budget plus this context's persistent [`WorkerPool`] (created
    /// on first use for multi-thread budgets, unless
    /// [`EmbedContext::with_scoped_threads`] opted out).  The policy never
    /// affects results — only where worker threads come from.
    pub fn exec(&self) -> Exec {
        let threads = self.thread_budget();
        if threads <= 1 {
            return Exec::sequential();
        }
        if self.scoped_only {
            return Exec::scoped(threads);
        }
        let pool = self
            .pool
            .get_or_init(|| Arc::new(WorkerPool::new_with_metrics(threads, &self.metrics)));
        Exec::pooled(Arc::clone(pool), threads)
    }

    /// Attaches a telemetry handle: the context's lazily created
    /// [`WorkerPool`] reports utilization/dispatch-wait metrics into it, and
    /// embedders may record their own instruments through
    /// [`EmbedContext::metrics`].  The default is a no-op handle — an
    /// uninstrumented run pays one `None` branch per would-be record.
    ///
    /// Telemetry is write-only: nothing read from the handle ever feeds a
    /// computed value, so the bitwise determinism contract is untouched.
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> Self {
        // A pool created before the handle was attached would report
        // nowhere; detach so the next run creates an instrumented one.
        if self.pool.get().is_some() {
            self.pool = Arc::new(OnceLock::new());
        }
        self.metrics = metrics;
        self
    }

    /// The attached telemetry handle (a no-op handle by default).
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// Attaches a cooperative cancellation flag.  Setting the flag to `true`
    /// (from any thread) makes the run return [`NrpError::Cancelled`] at its
    /// next stage boundary.
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Attaches an absolute deadline.  Once the wall clock passes it, the
    /// context reports itself cancelled — the same cooperative signal as
    /// [`EmbedContext::with_cancel_flag`], so every kernel that already
    /// checks [`EmbedContext::ensure_active`] at its loop boundaries honours
    /// deadlines for free.  Like the cancel flag, an expired deadline only
    /// ever *aborts* work (with [`NrpError::Cancelled`]); it never alters a
    /// computed value, so the determinism contract is untouched.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The attached deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True if the attached deadline (if any) has passed.  The clock is
    /// read through the designated owner (`nrp_obs::clock`); an expired
    /// deadline only ever aborts work, it never feeds a computed value.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| clock::now() >= d)
    }

    /// Opts into **partial results** on cancellation: instead of failing
    /// with [`NrpError::Cancelled`], iterative refinement stages stop early
    /// and the run returns the best embedding computed so far.
    ///
    /// Concretely, a raised cancel flag makes the ApproxPPR propagation stop
    /// at the current hop (a shorter truncated PPR series — still a valid
    /// embedding), the NRP reweighting return the weights of the completed
    /// epochs, and SGNS/NCE training (DeepWalk, node2vec, LINE, VERSE, APP)
    /// end at the current SGD step.  Work cancelled *before* any embedding
    /// exists (e.g. during the initial SVD sketch) still returns
    /// [`NrpError::Cancelled`] — there is nothing partial to hand back.
    pub fn with_partial_results(mut self) -> Self {
        self.partial_results = true;
        self
    }

    /// True if cancellation should yield the best result so far instead of
    /// [`NrpError::Cancelled`] (see [`EmbedContext::with_partial_results`]).
    pub fn allows_partial(&self) -> bool {
        self.partial_results
    }

    /// True if the run was cancelled *and* the context asks for the best
    /// result so far — the "stop refining now" signal iterative loops check
    /// to break instead of erroring.
    pub fn should_stop_early(&self) -> bool {
        self.partial_results && self.is_cancelled()
    }

    /// The seed override, if any.
    pub fn seed_override(&self) -> Option<u64> {
        self.seed
    }

    /// The effective seed: the override if present, else `configured`.
    pub fn seed_or(&self, configured: u64) -> u64 {
        self.seed.unwrap_or(configured)
    }

    /// The thread budget (at least 1).
    pub fn thread_budget(&self) -> usize {
        self.threads.map(NonZeroUsize::get).unwrap_or(1)
    }

    /// True if the attached cancellation flag has been raised or the
    /// attached deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
            || self.deadline_expired()
    }

    /// Errors with [`NrpError::Cancelled`] if the run has been cancelled —
    /// the check embedders place at stage boundaries.
    pub fn ensure_active(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(NrpError::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Everything known about a completed embedding run besides the vectors.
#[derive(Debug, Clone)]
pub struct RunMetadata {
    /// The effective parameters of the run (seed override already applied),
    /// serializable via `serde_json` for experiment logs.
    pub config: MethodConfig,
    /// The effective RNG seed.
    pub seed: u64,
    /// The granted thread budget.
    pub threads: usize,
    /// Per-stage wall-clock timings, in execution order.
    pub stages: Vec<StageTiming>,
    /// Total wall-clock time of the run.
    pub total: Duration,
}

impl RunMetadata {
    /// The duration of stage `name`, if it was recorded.
    pub fn stage(&self, name: &str) -> Option<Duration> {
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.duration)
    }

    /// The column names of [`RunMetadata::csv_row`], in order.
    pub fn csv_header() -> &'static [&'static str] {
        &[
            "method",
            "config",
            "seed",
            "threads",
            "stages",
            "total_secs",
        ]
    }

    /// Renders the run as one CSV record: the method name, the effective
    /// configuration as compact JSON, the effective seed, the granted thread
    /// budget, the per-stage wall clock (`name:secs@threads` entries joined
    /// by `;`) and the total wall-clock seconds.
    ///
    /// Cells are returned *unescaped* — the `config` cell in particular
    /// contains commas and double quotes, so writers must apply RFC-4180
    /// quoting (as `nrp-bench`'s CSV layer does) before joining with `,`.
    pub fn csv_row(&self) -> Vec<String> {
        let stages = self
            .stages
            .iter()
            .map(|s| format!("{}:{:.6}@{}", s.name, s.duration.as_secs_f64(), s.threads))
            .collect::<Vec<_>>()
            .join(";");
        vec![
            self.config.method_name().to_string(),
            self.config
                .to_json()
                .expect("method configs serialize to JSON"),
            self.seed.to_string(),
            self.threads.to_string(),
            stages,
            format!("{:.6}", self.total.as_secs_f64()),
        ]
    }
}

/// The result of a v2 [`Embedder::embed`](crate::embedding::Embedder::embed)
/// run: the embedding plus run metadata.
#[derive(Debug, Clone)]
pub struct EmbedOutput {
    embedding: Embedding,
    metadata: RunMetadata,
}

impl EmbedOutput {
    /// Assembles the output of a run.  `config` is the embedder's configured
    /// parameters; the effective `seed` is stamped into the echoed config so
    /// the metadata alone reproduces the run.
    pub fn new(
        embedding: Embedding,
        mut config: MethodConfig,
        seed: u64,
        ctx: &EmbedContext,
        clock: StageClock,
    ) -> Self {
        config.set_seed(seed);
        let total = clock.elapsed();
        Self {
            embedding,
            metadata: RunMetadata {
                config,
                seed,
                threads: ctx.thread_budget(),
                stages: clock.into_stages(),
                total,
            },
        }
    }

    /// The embedding.
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// Consumes the output, keeping only the embedding.
    pub fn into_embedding(self) -> Embedding {
        self.embedding
    }

    /// The run metadata.
    pub fn metadata(&self) -> &RunMetadata {
        &self.metadata
    }

    /// Splits the output into its parts.
    pub fn into_parts(self) -> (Embedding, RunMetadata) {
        (self.embedding, self.metadata)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_has_no_overrides() {
        let ctx = EmbedContext::default();
        assert_eq!(ctx.seed_override(), None);
        assert_eq!(ctx.seed_or(9), 9);
        assert_eq!(ctx.thread_budget(), 1);
        assert!(!ctx.is_cancelled());
        assert!(ctx.ensure_active().is_ok());
    }

    #[test]
    fn overrides_apply() {
        let ctx = EmbedContext::new().with_seed(3).with_threads(4);
        assert_eq!(ctx.seed_or(9), 3);
        assert_eq!(ctx.thread_budget(), 4);
        assert_eq!(EmbedContext::new().with_threads(0).thread_budget(), 1);
    }

    #[test]
    fn exec_policies_follow_the_context_configuration() {
        // Single-thread budgets never create a pool.
        let ctx = EmbedContext::new();
        assert!(!ctx.exec().is_parallel());
        assert!(ctx.worker_pool().is_none());
        // Multi-thread budgets lazily create one pool and reuse it.
        let ctx = EmbedContext::new().with_threads(3);
        assert!(ctx.worker_pool().is_none(), "pool is lazy");
        let first = ctx.exec();
        assert_eq!(first.threads(), 3);
        let pool = first.pool().expect("pooled exec").clone();
        assert_eq!(pool.capacity(), 3);
        let second = ctx.exec();
        assert!(
            Arc::ptr_eq(second.pool().expect("pooled exec"), &pool),
            "same pool across exec() calls"
        );
        // Clones share the already-created pool.
        let clone = ctx.clone();
        assert!(
            Arc::ptr_eq(clone.exec().pool().expect("pooled exec"), &pool),
            "clone shares the pool"
        );
        // Clones taken *before* the pool exists share the lazy cell too:
        // whichever side runs first creates the one pool both use.
        let fresh = EmbedContext::new().with_threads(2);
        let fresh_clone = fresh.clone();
        let created = fresh_clone.exec().pool().expect("pooled exec").clone();
        assert!(
            Arc::ptr_eq(fresh.exec().pool().expect("pooled exec"), &created),
            "pre-creation clones share one pool"
        );
        // Raising the budget past a stale pool's capacity detaches from it
        // instead of silently clamping parallelism.
        let raised = fresh.with_threads(6);
        let raised_pool = raised.exec().pool().expect("pooled exec").clone();
        assert!(!Arc::ptr_eq(&raised_pool, &created), "stale pool replaced");
        assert_eq!(raised_pool.capacity(), 6);
        // Lowering (or keeping) the budget reuses the existing pool.
        let lowered = raised.with_threads(2);
        assert!(
            Arc::ptr_eq(lowered.exec().pool().expect("pooled exec"), &raised_pool),
            "a large-enough pool is kept"
        );
        assert_eq!(lowered.exec().threads(), 2);
        // Scoped opt-out produces a pool-less policy.
        let scoped = EmbedContext::new().with_scoped_threads(4);
        assert_eq!(scoped.exec().threads(), 4);
        assert!(scoped.exec().pool().is_none());
        assert!(scoped.worker_pool().is_none());
        // An attached pool is used as-is.
        let shared = Arc::new(WorkerPool::new(2));
        let ctx = EmbedContext::new()
            .with_threads(2)
            .with_worker_pool(Arc::clone(&shared));
        assert!(Arc::ptr_eq(
            ctx.exec().pool().expect("pooled exec"),
            &shared
        ));
    }

    #[test]
    fn cancellation_flag_is_observed() {
        let flag = Arc::new(AtomicBool::new(false));
        let ctx = EmbedContext::new().with_cancel_flag(Arc::clone(&flag));
        assert!(ctx.ensure_active().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert!(ctx.is_cancelled());
        assert!(matches!(ctx.ensure_active(), Err(NrpError::Cancelled)));
    }

    #[test]
    fn stage_clock_records_laps_in_order() {
        let mut clock = StageClock::start();
        clock.lap("a");
        clock.lap_parallel("b", 4);
        clock.lap_parallel("c", 0);
        assert_eq!(clock.stages().len(), 3);
        assert_eq!(clock.stages()[0].name, "a");
        assert_eq!(clock.stages()[0].threads, 1);
        assert_eq!(clock.stages()[1].name, "b");
        assert_eq!(clock.stages()[1].threads, 4);
        assert_eq!(clock.stages()[2].threads, 1, "thread counts clamp to >= 1");
        assert!(clock.elapsed() >= clock.stages()[0].duration);
    }

    #[test]
    fn metadata_lookup_by_stage_name() {
        let meta = RunMetadata {
            config: MethodConfig::default_for("NRP").expect("known method"),
            seed: 1,
            threads: 2,
            stages: vec![StageTiming {
                name: "x",
                duration: Duration::from_millis(5),
                threads: 2,
            }],
            total: Duration::from_millis(6),
        };
        assert_eq!(meta.stage("x"), Some(Duration::from_millis(5)));
        assert_eq!(meta.stage("y"), None);
    }

    #[test]
    fn csv_row_matches_header_and_encodes_stages() {
        let meta = RunMetadata {
            config: MethodConfig::default_for("NRP").expect("known method"),
            seed: 9,
            threads: 4,
            stages: vec![
                StageTiming {
                    name: "approx_ppr",
                    duration: Duration::from_millis(250),
                    threads: 4,
                },
                StageTiming {
                    name: "reweight",
                    duration: Duration::from_millis(125),
                    threads: 1,
                },
            ],
            total: Duration::from_millis(400),
        };
        let row = meta.csv_row();
        assert_eq!(row.len(), RunMetadata::csv_header().len());
        assert_eq!(row[0], "NRP");
        assert!(row[1].contains(r#""method": "NRP""#) || row[1].contains(r#""method":"NRP""#));
        assert_eq!(row[2], "9");
        assert_eq!(row[3], "4");
        assert_eq!(row[4], "approx_ppr:0.250000@4;reweight:0.125000@1");
        assert_eq!(row[5], "0.400000");
        // The config cell round-trips back into the same configuration.
        let parsed = MethodConfig::from_json(&row[1]).unwrap();
        assert_eq!(parsed, meta.config);
    }
}
