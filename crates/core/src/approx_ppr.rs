//! ApproxPPR (paper Algorithm 1): scalable PPR factorization.
//!
//! Instead of computing the dense PPR matrix `Π` and factorizing it, the
//! algorithm factorizes the sparse adjacency matrix once with a randomized
//! block-Krylov SVD and then folds the higher-order terms of the truncated
//! series `Π' = Σ_{i=1..ℓ1} α(1-α)^i P^i` into the forward factor by `ℓ1 - 1`
//! sparse propagations:
//!
//! ```text
//! [U, Σ, V] = BKSVD(A, k', ε)
//! X₁ = D⁻¹ U √Σ          Y = V √Σ          (so X₁ Yᵀ ≈ D⁻¹A = P)
//! Xᵢ = (1-α) P Xᵢ₋₁ + X₁   for i = 2..ℓ1
//! X  = α(1-α) X_{ℓ1}
//! ```
//!
//! after which `X Yᵀ ≈ Π'` with the additive error bound of Theorem 1.

use nrp_graph::Graph;
use nrp_linalg::{
    AdjacencyOperator, DanglingPolicy, DenseMatrix, LinearOperator, RandomizedSvd,
    RandomizedSvdMethod, TransitionOperator,
};

use crate::config::MethodConfig;
use crate::context::{EmbedContext, EmbedOutput, StageClock};
use crate::embedding::{Embedder, Embedding};
use crate::{NrpError, Result};

/// Parameters of the ApproxPPR factorization.
#[derive(Debug, Clone)]
pub struct ApproxPprParams {
    /// Per-side embedding dimensionality `k'` (the paper sets `k' = k/2`).
    pub half_dimension: usize,
    /// Random-walk decay factor `α`.
    pub alpha: f64,
    /// Number of series terms `ℓ1` folded into the embeddings.
    pub num_hops: usize,
    /// Relative error target `ε` of the randomized SVD.
    pub epsilon: f64,
    /// Randomized SVD variant (block Krylov by default, per the paper).
    pub svd_method: RandomizedSvdMethod,
    /// How the transition matrix treats dangling nodes (self-loop by
    /// default, matching the paper's walk semantics).
    pub dangling: DanglingPolicy,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ApproxPprParams {
    fn default() -> Self {
        Self {
            half_dimension: 64,
            alpha: 0.15,
            num_hops: 20,
            epsilon: 0.2,
            svd_method: RandomizedSvdMethod::BlockKrylov,
            dangling: DanglingPolicy::SelfLoop,
            seed: 0,
        }
    }
}

impl ApproxPprParams {
    /// Validates the parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.half_dimension == 0 {
            return Err(NrpError::InvalidParameter(
                "half_dimension must be positive".into(),
            ));
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(NrpError::InvalidParameter(format!(
                "alpha must be in (0,1), got {}",
                self.alpha
            )));
        }
        if self.num_hops == 0 {
            return Err(NrpError::InvalidParameter(
                "num_hops (ℓ1) must be at least 1".into(),
            ));
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(NrpError::InvalidParameter(format!(
                "epsilon must be in (0,1), got {}",
                self.epsilon
            )));
        }
        Ok(())
    }
}

/// The ApproxPPR embedder (paper Algorithm 1 / Section 3).
#[derive(Debug, Clone, Default)]
pub struct ApproxPpr {
    params: ApproxPprParams,
}

impl ApproxPpr {
    /// Creates an ApproxPPR embedder with the given parameters.
    pub fn new(params: ApproxPprParams) -> Self {
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &ApproxPprParams {
        &self.params
    }

    /// Runs Algorithm 1 and returns the raw `(X, Y)` factors under a default
    /// execution context.
    ///
    /// Exposed separately from [`Embedder::embed`] because NRP needs the raw
    /// factors before reweighting.
    pub fn factorize(&self, graph: &Graph) -> Result<(DenseMatrix, DenseMatrix)> {
        self.factorize_with(graph, &EmbedContext::default())
    }

    /// Runs Algorithm 1 under an explicit execution context: the seed
    /// override applies to the SVD sketch, the thread budget parallelizes
    /// the sparse propagations, and cancellation is honoured between hops.
    pub fn factorize_with(
        &self,
        graph: &Graph,
        ctx: &EmbedContext,
    ) -> Result<(DenseMatrix, DenseMatrix)> {
        self.params.validate()?;
        ctx.ensure_active()?;
        let p = &self.params;
        let n = graph.num_nodes();
        if n == 0 {
            return Err(NrpError::InvalidParameter("graph has no nodes".into()));
        }

        // Step 1: randomized SVD of the adjacency matrix, spending the
        // context's thread budget (served by its persistent worker pool) on
        // the block matmuls and basis construction (bitwise identical for
        // any budget and execution policy).
        let exec = ctx.exec();
        let adjacency = AdjacencyOperator::new(graph);
        let iterations = RandomizedSvd::iterations_for_epsilon(n, p.epsilon);
        let svd = RandomizedSvd::new(p.half_dimension)
            .iterations(iterations)
            .method(p.svd_method)
            .seed(ctx.seed_or(p.seed))
            .exec(exec.clone())
            .compute(&adjacency)?;
        let sqrt_sigma: Vec<f64> = svd
            .singular_values
            .iter()
            .map(|s| s.max(0.0).sqrt())
            .collect();

        // Step 2: X₁ = D⁻¹ U √Σ and Y = V √Σ.
        let transition = TransitionOperator::with_policy(graph, p.dangling);
        let mut x1 = svd.u.clone();
        x1.scale_cols(&sqrt_sigma)?;
        x1.scale_rows(transition.inverse_out_degrees())?;
        let mut y = svd.v.clone();
        y.scale_cols(&sqrt_sigma)?;

        // Step 3: fold in higher-order hops: Xᵢ = (1-α) P Xᵢ₋₁ + X₁.
        let mut x = x1.clone();
        for _ in 2..=p.num_hops {
            // A partial-results cancellation keeps the hops folded so far —
            // a shorter truncated series is still a valid embedding.
            if ctx.should_stop_early() {
                break;
            }
            ctx.ensure_active()?;
            let mut propagated = transition.apply_exec(&x, &exec)?;
            propagated.scale(1.0 - p.alpha);
            propagated.axpy(1.0, &x1)?;
            x = propagated;
        }

        // Step 4: X = α(1-α) X_{ℓ1}.
        x.scale(p.alpha * (1.0 - p.alpha));
        Ok((x, y))
    }
}

impl Embedder for ApproxPpr {
    fn name(&self) -> &'static str {
        "ApproxPPR"
    }

    fn config(&self) -> MethodConfig {
        let p = &self.params;
        MethodConfig::ApproxPpr {
            dimension: 2 * p.half_dimension,
            alpha: p.alpha,
            num_hops: p.num_hops,
            epsilon: p.epsilon,
            svd_method: p.svd_method,
            dangling: p.dangling,
            seed: p.seed,
        }
    }

    fn embed(&self, graph: &Graph, ctx: &EmbedContext) -> Result<EmbedOutput> {
        let seed = ctx.seed_or(self.params.seed);
        let mut clock = StageClock::start();
        let (x, y) = self.factorize_with(graph, ctx)?;
        clock.lap_parallel("factorize", ctx.thread_budget());
        let embedding = Embedding::new(x, y, self.name())?;
        clock.lap("assemble");
        Ok(EmbedOutput::new(embedding, self.config(), seed, ctx, clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppr::PprMatrix;
    use nrp_graph::generators::example::example_graph;
    use nrp_graph::generators::{erdos_renyi, stochastic_block_model};
    use nrp_graph::GraphKind;

    fn max_offdiag_error(graph: &Graph, embedding: &Embedding, alpha: f64, l1: usize) -> f64 {
        // Compare X·Yᵀ against the *truncated* series Π' (what Theorem 1 bounds).
        let n = graph.num_nodes();
        let exact = PprMatrix::exact(graph, alpha, 1e-12).unwrap();
        let truncation = (1.0_f64 - alpha).powi(l1 as i32 + 1);
        let mut max_err = 0.0_f64;
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u == v {
                    continue;
                }
                let err = (embedding.score(u, v) - exact.get(u, v)).abs();
                // Allow for the series-truncation part of the bound.
                max_err = max_err.max((err - truncation).max(0.0));
            }
        }
        max_err
    }

    #[test]
    fn factors_have_requested_shape() {
        let (g, _) =
            stochastic_block_model(&[30, 30], 0.2, 0.02, GraphKind::Undirected, 3).unwrap();
        let params = ApproxPprParams {
            half_dimension: 8,
            ..Default::default()
        };
        let e = ApproxPpr::new(params).embed_default(&g).unwrap();
        assert_eq!(e.num_nodes(), 60);
        assert_eq!(e.half_dimension(), 8);
        assert_eq!(e.dimension(), 16);
        assert!(e.is_finite());
        assert_eq!(e.method(), "ApproxPPR");
    }

    #[test]
    fn scores_approximate_ppr_on_example_graph() {
        // With k' = n the SVD is exact, so X·Yᵀ should match Π' almost exactly.
        let g = example_graph();
        let params = ApproxPprParams {
            half_dimension: 9,
            alpha: 0.15,
            num_hops: 40,
            epsilon: 0.1,
            ..Default::default()
        };
        let e = ApproxPpr::new(params).embed_default(&g).unwrap();
        let err = max_offdiag_error(&g, &e, 0.15, 40);
        assert!(err < 0.02, "max |X·Yᵀ - π| = {err}");
    }

    #[test]
    fn example1_node_pair_scores_match_paper_magnitudes() {
        // Paper Example 1: X_{v2}·Y_{v4} ≈ 0.119 and X_{v9}·Y_{v7} ≈ 0.166 with
        // k' = 2.  Our BKSVD and graph reconstruction differ in details, so we
        // check the qualitative outcome with a full-rank factorization: the
        // approximated PPR of (v9, v7) exceeds that of (v2, v4).
        use nrp_graph::generators::example::{V2, V4, V7, V9};
        let g = example_graph();
        let params = ApproxPprParams {
            half_dimension: 9,
            num_hops: 20,
            ..Default::default()
        };
        let e = ApproxPpr::new(params).embed_default(&g).unwrap();
        assert!(e.score(V9, V7) > e.score(V2, V4));
    }

    #[test]
    fn approximation_improves_with_rank() {
        let (g, _) =
            stochastic_block_model(&[25, 25], 0.25, 0.02, GraphKind::Undirected, 7).unwrap();
        let low = ApproxPpr::new(ApproxPprParams {
            half_dimension: 2,
            ..Default::default()
        })
        .embed_default(&g)
        .unwrap();
        let high = ApproxPpr::new(ApproxPprParams {
            half_dimension: 40,
            ..Default::default()
        })
        .embed_default(&g)
        .unwrap();
        let err_low = max_offdiag_error(&g, &low, 0.15, 20);
        let err_high = max_offdiag_error(&g, &high, 0.15, 20);
        assert!(
            err_high < err_low,
            "rank 40 error {err_high} should beat rank 2 error {err_low}"
        );
    }

    #[test]
    fn directed_graph_scores_are_asymmetric() {
        let (g, _) =
            stochastic_block_model(&[30, 30], 0.15, 0.01, GraphKind::Directed, 11).unwrap();
        let e = ApproxPpr::new(ApproxPprParams {
            half_dimension: 16,
            ..Default::default()
        })
        .embed_default(&g)
        .unwrap();
        // Find an arc that exists one way only and check the forward score exceeds the backward.
        let mut checked = 0;
        let mut forward_wins = 0;
        for (u, v) in g.arcs() {
            if !g.has_arc(v, u) {
                checked += 1;
                if e.score(u, v) > e.score(v, u) {
                    forward_wins += 1;
                }
            }
            if checked >= 200 {
                break;
            }
        }
        assert!(checked > 0);
        assert!(
            forward_wins * 3 > checked * 2,
            "forward score should usually dominate on one-way arcs ({forward_wins}/{checked})"
        );
    }

    #[test]
    fn dangling_nodes_do_not_produce_nan() {
        // A directed path has a dangling tail node.
        let g = nrp_graph::generators::simple::directed_path(20).unwrap();
        let e = ApproxPpr::new(ApproxPprParams {
            half_dimension: 4,
            ..Default::default()
        })
        .embed_default(&g)
        .unwrap();
        assert!(e.is_finite());
    }

    #[test]
    fn works_on_er_graphs_of_moderate_size() {
        let g = erdos_renyi(300, 0.02, GraphKind::Undirected, 9).unwrap();
        let e = ApproxPpr::new(ApproxPprParams {
            half_dimension: 16,
            ..Default::default()
        })
        .embed_default(&g)
        .unwrap();
        assert_eq!(e.num_nodes(), 300);
        assert!(e.is_finite());
    }

    #[test]
    fn invalid_params_rejected() {
        let g = example_graph();
        for params in [
            ApproxPprParams {
                half_dimension: 0,
                ..Default::default()
            },
            ApproxPprParams {
                alpha: 0.0,
                ..Default::default()
            },
            ApproxPprParams {
                alpha: 1.0,
                ..Default::default()
            },
            ApproxPprParams {
                num_hops: 0,
                ..Default::default()
            },
            ApproxPprParams {
                epsilon: 0.0,
                ..Default::default()
            },
        ] {
            assert!(ApproxPpr::new(params).embed_default(&g).is_err());
        }
    }
}
