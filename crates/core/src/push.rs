//! Forward-push approximate single-source personalized PageRank
//! (Andersen, Chung & Lang, FOCS 2006; the "local push" primitive used by
//! FORA, TopPPR and the STRAP baseline).
//!
//! Given a source `s`, forward push maintains a *reserve* vector `p` (the
//! current PPR estimate) and a *residue* vector `r` (probability mass not yet
//! converted).  While some node `u` has `r[u] > r_max · dout(u)`, the push
//! operation converts an `α` fraction of `r[u]` into reserve and spreads the
//! rest over `u`'s out-neighbours.  On termination every estimate satisfies
//! `p(s, v) ≤ π(s, v) ≤ p(s, v) + r_max · n` in the worst case, and in
//! practice the estimates are far tighter.  The cost is `O(1 / (α · r_max))`
//! pushes independent of the graph size, which is what lets STRAP build its
//! sparse proximity matrix on large graphs.

use std::collections::VecDeque;

use nrp_graph::{Graph, NodeId};

use crate::{NrpError, Result};

/// Sparse single-source PPR estimates produced by forward push.
#[derive(Debug, Clone)]
pub struct PushResult {
    /// `(node, estimate)` pairs with non-zero reserve, unsorted.
    pub estimates: Vec<(NodeId, f64)>,
    /// Total residual probability mass left unconverted.
    pub residual_mass: f64,
    /// Number of push operations performed.
    pub num_pushes: usize,
}

/// Runs forward push from `source` with decay `alpha` and residue threshold
/// `r_max` (smaller `r_max` → more accurate, more work).
pub fn forward_push(graph: &Graph, source: NodeId, alpha: f64, r_max: f64) -> Result<PushResult> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(NrpError::InvalidParameter(format!(
            "alpha must be in (0,1), got {alpha}"
        )));
    }
    if r_max <= 0.0 {
        return Err(NrpError::InvalidParameter(format!(
            "r_max must be positive, got {r_max}"
        )));
    }
    let n = graph.num_nodes();
    if (source as usize) >= n {
        return Err(NrpError::InvalidParameter(format!(
            "source {source} out of bounds for {n} nodes"
        )));
    }
    let mut reserve = vec![0.0_f64; n];
    let mut residue = vec![0.0_f64; n];
    let mut in_queue = vec![false; n];
    residue[source as usize] = 1.0;
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    queue.push_back(source);
    in_queue[source as usize] = true;
    let mut num_pushes = 0usize;

    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let d = graph.out_degree(u);
        let r_u = residue[u as usize];
        if r_u <= 0.0 {
            continue;
        }
        if d == 0 {
            // Dangling node: a walk holding this residue terminates here with
            // probability 1, so converting it to reserve is *exact* — no
            // threshold applies.  The residue is never spread (there is
            // nothing to spread it over), which also rules out the
            // non-terminating `r[u] > r_max · 0` pathology: a dangling pop
            // always zeroes its residue and enqueues nothing.
            num_pushes += 1;
            residue[u as usize] = 0.0;
            reserve[u as usize] += r_u;
            continue;
        }
        if r_u < r_max * d as f64 {
            continue;
        }
        num_pushes += 1;
        residue[u as usize] = 0.0;
        reserve[u as usize] += alpha * r_u;
        let share = (1.0 - alpha) * r_u / d as f64;
        for &v in graph.out_neighbors(u) {
            residue[v as usize] += share;
            let dv = graph.out_degree(v);
            // Dangling neighbours are admitted for any positive residue — the
            // conversion is free and exact; others use the standard
            // `r ≥ r_max · dout` test.
            let admit = if dv == 0 {
                residue[v as usize] > 0.0
            } else {
                residue[v as usize] >= r_max * dv as f64
            };
            if admit && !in_queue[v as usize] {
                queue.push_back(v);
                in_queue[v as usize] = true;
            }
        }
    }

    let estimates: Vec<(NodeId, f64)> = reserve
        .iter()
        .enumerate()
        .filter(|(_, &p)| p > 0.0)
        .map(|(v, &p)| (v as NodeId, p))
        .collect();
    let residual_mass: f64 = residue.iter().sum();
    Ok(PushResult {
        estimates,
        residual_mass,
        num_pushes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppr::single_source_ppr;
    use nrp_graph::generators::simple::{cycle, directed_path, star};
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    #[test]
    fn estimates_are_lower_bounds_of_exact_ppr() {
        let g = cycle(10).unwrap();
        let exact = single_source_ppr(&g, 0, 0.15, 1e-12).unwrap();
        let push = forward_push(&g, 0, 0.15, 1e-4).unwrap();
        for &(v, estimate) in &push.estimates {
            assert!(
                estimate <= exact[v as usize] + 1e-9,
                "push estimate {estimate} exceeds exact {} at node {v}",
                exact[v as usize]
            );
        }
    }

    #[test]
    fn tighter_rmax_gives_smaller_residual() {
        let (g, _) =
            stochastic_block_model(&[50, 50], 0.1, 0.01, GraphKind::Undirected, 1).unwrap();
        let loose = forward_push(&g, 3, 0.15, 1e-2).unwrap();
        let tight = forward_push(&g, 3, 0.15, 1e-5).unwrap();
        assert!(tight.residual_mass <= loose.residual_mass + 1e-12);
        assert!(tight.num_pushes >= loose.num_pushes);
    }

    #[test]
    fn converges_to_exact_values_as_rmax_shrinks() {
        let g = cycle(8).unwrap();
        let exact = single_source_ppr(&g, 2, 0.2, 1e-12).unwrap();
        let push = forward_push(&g, 2, 0.2, 1e-8).unwrap();
        let mut approx = [0.0; 8];
        for (v, p) in push.estimates {
            approx[v as usize] = p;
        }
        for v in 0..8 {
            assert!(
                (approx[v] - exact[v]).abs() < 1e-4,
                "node {v}: {} vs {}",
                approx[v],
                exact[v]
            );
        }
    }

    #[test]
    fn mass_conservation() {
        let g = star(6).unwrap();
        let push = forward_push(&g, 0, 0.15, 1e-6).unwrap();
        let reserved: f64 = push.estimates.iter().map(|(_, p)| p).sum();
        assert!(reserved + push.residual_mass <= 1.0 + 1e-9);
        assert!(reserved > 0.5);
    }

    #[test]
    fn dangling_node_absorbs_mass() {
        let g = directed_path(3).unwrap();
        let push = forward_push(&g, 0, 0.15, 1e-9).unwrap();
        let map: std::collections::HashMap<_, _> = push.estimates.iter().copied().collect();
        // Node 2 is dangling; everything that reaches it terminates there.
        assert!(map[&2] > 0.5);
        let total: f64 = map.values().sum();
        assert!((total + push.residual_mass - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sinks_terminate_and_hold_no_residue() {
        // A graph where most arcs funnel into two sinks: the push loop must
        // terminate, every sink's residue must be fully converted to reserve
        // (the conversion is exact, no threshold applies), and the estimates
        // must match the exact self-loop PPR at the sinks.
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (1, 4),
                (2, 4),
                (0, 5),
                (5, 0),
            ],
            GraphKind::Directed,
        )
        .unwrap();
        let push = forward_push(&g, 0, 0.2, 1e-4).unwrap();
        // Residue at the dangling nodes 3 and 4 is always converted.
        let exact = single_source_ppr(&g, 0, 0.2, 1e-12).unwrap();
        let map: std::collections::HashMap<_, _> = push.estimates.iter().copied().collect();
        for sink in [3u32, 4] {
            let estimate = map.get(&sink).copied().unwrap_or(0.0);
            assert!(
                estimate <= exact[sink as usize] + 1e-9,
                "sink {sink} estimate {estimate} above exact {}",
                exact[sink as usize]
            );
            assert!(estimate > 0.0, "sink {sink} never received reserve");
        }
        // Everything not yet converted lives on non-dangling nodes.
        let reserved: f64 = map.values().sum();
        assert!((reserved + push.residual_mass - 1.0).abs() < 1e-9);
        assert!(push.residual_mass < 6.0 * 1e-4 * 2.0 + 1e-9);
    }

    #[test]
    fn source_keeps_at_least_alpha() {
        let g = cycle(5).unwrap();
        let push = forward_push(&g, 1, 0.15, 1e-6).unwrap();
        let map: std::collections::HashMap<_, _> = push.estimates.iter().copied().collect();
        assert!(map[&1] >= 0.15 - 1e-9);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let g = cycle(4).unwrap();
        assert!(forward_push(&g, 0, 0.0, 1e-3).is_err());
        assert!(forward_push(&g, 0, 0.15, 0.0).is_err());
        assert!(forward_push(&g, 9, 0.15, 1e-3).is_err());
    }
}
