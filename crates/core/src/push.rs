//! Forward-push approximate single-source personalized PageRank
//! (Andersen, Chung & Lang, FOCS 2006; the "local push" primitive used by
//! FORA, TopPPR and the STRAP baseline).
//!
//! Given a source `s`, forward push maintains a *reserve* vector `p` (the
//! current PPR estimate) and a *residue* vector `r` (probability mass not yet
//! converted).  While some node `u` has `r[u] > r_max · dout(u)`, the push
//! operation converts an `α` fraction of `r[u]` into reserve and spreads the
//! rest over `u`'s out-neighbours.  On termination every estimate satisfies
//! `p(s, v) ≤ π(s, v) ≤ p(s, v) + r_max · n` in the worst case, and in
//! practice the estimates are far tighter.  The cost is `O(1 / (α · r_max))`
//! pushes independent of the graph size, which is what lets STRAP build its
//! sparse proximity matrix on large graphs.
//!
//! ## Workspaces: sparse-local cost, zero allocation
//!
//! Forward push is a *local* algorithm — it touches only the nodes mass
//! actually reaches — but a naive implementation allocates and zeroes three
//! `O(n)` vectors per source, turning an all-pairs fan-out (STRAP pushes from
//! every node) into `O(n²)` memory traffic.  [`PushWorkspace`] fixes this
//! with epoch-stamped sparse resets: the `O(n)` buffers are allocated once,
//! a per-call epoch counter invalidates stale entries for free, and only the
//! nodes recorded on a *touched list* are ever read or written.  After the
//! workspace has warmed up to the graph's size, [`forward_push_into`]
//! performs **zero heap allocation per source** (asserted by a
//! counting-allocator test).
//!
//! ## Dangling nodes
//!
//! Nodes with no out-neighbours follow the workspace-wide
//! [`DanglingPolicy`]: under the default `SelfLoop` a walk holding residue at
//! a dangling node terminates there with probability 1, so the entire
//! residue converts to reserve *exactly* (no threshold applies); `ZeroRow`
//! discards the residue (the mass leak of the literal `D⁻¹A` matrix); and
//! `Teleport` spreads it uniformly over all `n` nodes (pushing once the
//! residue clears the `r_max · n` threshold of its implicit degree-`n` row).

use std::collections::VecDeque;

use nrp_graph::{Graph, NodeId};
use nrp_linalg::DanglingPolicy;

use crate::{PushParamError, Result};

/// Sparse single-source PPR estimates produced by forward push.
#[derive(Debug, Clone)]
pub struct PushResult {
    /// `(node, estimate)` pairs with non-zero reserve, ascending by node.
    pub estimates: Vec<(NodeId, f64)>,
    /// Total residual probability mass left unconverted.
    pub residual_mass: f64,
    /// Number of push operations performed.
    pub num_pushes: usize,
}

/// Summary of one [`forward_push_into`] run; the estimates stay in the
/// workspace ([`PushWorkspace::estimates`]) so the hot path allocates
/// nothing.
#[derive(Debug, Clone, Copy)]
pub struct PushOutcome {
    /// Total residual probability mass left unconverted.
    pub residual_mass: f64,
    /// Number of push operations performed.
    pub num_pushes: usize,
}

/// Reusable buffers for [`forward_push_into`]: epoch-stamped reserve/residue
/// vectors, the queue, the touched-node list and the output estimates.
///
/// A workspace adapts to any graph size (growing its buffers on first use
/// per size) and resets in `O(nodes touched)` between sources via an epoch
/// stamp — untouched entries are invalidated by bumping one counter, not by
/// clearing memory.  Reusing one workspace across sources therefore makes
/// the per-source cost proportional to the push's actual locality, with zero
/// heap allocation once warm.
#[derive(Debug, Clone, Default)]
pub struct PushWorkspace {
    len: usize,
    epoch: u32,
    reserve: Vec<f64>,
    residue: Vec<f64>,
    stamp: Vec<u32>,
    in_queue: Vec<bool>,
    touched: Vec<NodeId>,
    queue: VecDeque<NodeId>,
    estimates: Vec<(NodeId, f64)>,
}

impl PushWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for graphs of up to `n` nodes, so even the
    /// first push performs no allocation.
    pub fn with_capacity(n: usize) -> Self {
        let mut ws = Self::new();
        ws.ensure(n);
        ws
    }

    /// The estimates of the most recent [`forward_push_into`] run:
    /// `(node, reserve)` pairs ascending by node.
    pub fn estimates(&self) -> &[(NodeId, f64)] {
        &self.estimates
    }

    /// The number of nodes the buffers are currently sized for.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Number of nodes touched by the most recent run (reserve *or* residue
    /// became non-zero at some point).
    pub fn touched(&self) -> usize {
        self.touched.len()
    }

    /// Grows the `O(n)` buffers to `n` nodes.  Shrinking never happens, so a
    /// workspace warmed on the largest graph stays allocation-free.
    fn ensure(&mut self, n: usize) {
        if n > self.len {
            self.reserve.resize(n, 0.0);
            self.residue.resize(n, 0.0);
            // New entries carry stamp 0; the next `begin` bumps the epoch
            // past it, so they read as untouched.
            self.stamp.resize(n, 0);
            self.in_queue.resize(n, false);
            // `reserve(additional)` guarantees capacity >= len + additional,
            // so reserving `n - len` (not `n - capacity`) is what ensures
            // each buffer can hold all n nodes without reallocating.  The
            // queue holds at most one entry per node (`in_queue` dedups) and
            // touched/estimates at most one per node, so capacity n suffices
            // for the zero-allocation contract.
            self.touched.reserve(n.saturating_sub(self.touched.len()));
            self.estimates
                .reserve(n.saturating_sub(self.estimates.len()));
            self.queue.reserve(n.saturating_sub(self.queue.len()));
            self.len = n;
        }
    }

    /// Starts a new push: O(1) unless the `u32` epoch wraps (every ~4·10⁹
    /// pushes), which triggers one full stamp reset.
    fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
        self.queue.clear();
        self.estimates.clear();
        // `in_queue` is self-cleaning: every enqueued node clears its flag
        // when popped, and the run loop drains the queue completely.
        debug_assert!(self.in_queue.iter().all(|&q| !q));
    }

    /// Marks `v` as touched this epoch, zeroing its stale reserve/residue.
    #[inline]
    fn touch(&mut self, v: usize) {
        if self.stamp[v] != self.epoch {
            self.stamp[v] = self.epoch;
            self.reserve[v] = 0.0;
            self.residue[v] = 0.0;
            self.touched.push(v as NodeId);
        }
    }
}

fn validate(graph: &Graph, source: NodeId, alpha: f64, r_max: f64) -> Result<()> {
    // Typed `Copy` errors, not `format!`: this runs per push on the warm
    // serving path, and the failure message is rendered only if the caller
    // actually displays the error.
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(PushParamError::Alpha(alpha).into());
    }
    if r_max <= 0.0 {
        return Err(PushParamError::RMax(r_max).into());
    }
    let n = graph.num_nodes();
    if (source as usize) >= n {
        return Err(PushParamError::SourceOutOfBounds { source, nodes: n }.into());
    }
    Ok(())
}

/// Runs forward push from `source` with decay `alpha` and residue threshold
/// `r_max` (smaller `r_max` → more accurate, more work), under the default
/// [`DanglingPolicy::SelfLoop`] and a fresh workspace.
pub fn forward_push(graph: &Graph, source: NodeId, alpha: f64, r_max: f64) -> Result<PushResult> {
    forward_push_with_policy(graph, source, alpha, r_max, DanglingPolicy::SelfLoop)
}

/// [`forward_push`] under an explicit dangling-node policy.
pub fn forward_push_with_policy(
    graph: &Graph,
    source: NodeId,
    alpha: f64,
    r_max: f64,
    policy: DanglingPolicy,
) -> Result<PushResult> {
    let mut ws = PushWorkspace::new();
    let outcome = forward_push_into(graph, source, alpha, r_max, policy, &mut ws)?;
    Ok(PushResult {
        estimates: ws.estimates,
        residual_mass: outcome.residual_mass,
        num_pushes: outcome.num_pushes,
    })
}

/// The allocation-free core: runs forward push from `source` into `ws`,
/// returning the summary; read the estimates from
/// [`PushWorkspace::estimates`].
///
/// Per-source cost is `O(nodes touched)` — not `O(n)` — and once `ws` has
/// warmed up to the graph's size the call performs no heap allocation at
/// all.  Results (estimates, residual mass, push count) are identical
/// whether the workspace is fresh or reused, and identical to
/// [`forward_push`].
pub fn forward_push_into(
    graph: &Graph,
    source: NodeId,
    alpha: f64,
    r_max: f64,
    policy: DanglingPolicy,
    ws: &mut PushWorkspace,
) -> Result<PushOutcome> {
    validate(graph, source, alpha, r_max)?;
    let n = graph.num_nodes();
    ws.ensure(n);
    ws.begin();
    ws.touch(source as usize);
    ws.residue[source as usize] = 1.0;
    ws.queue.push_back(source);
    ws.in_queue[source as usize] = true;
    let mut num_pushes = 0usize;
    // The push threshold of a dangling row under Teleport: its implicit row
    // has n uniform entries, so it pushes once the residue clears r_max · n.
    let teleport_threshold = r_max * n as f64;

    while let Some(u) = ws.queue.pop_front() {
        let u = u as usize;
        ws.in_queue[u] = false;
        let d = graph.out_degree(u as NodeId);
        let r_u = ws.residue[u];
        if r_u <= 0.0 {
            continue;
        }
        if d == 0 {
            match policy {
                DanglingPolicy::SelfLoop => {
                    // A walk holding this residue terminates here with
                    // probability 1, so converting it to reserve is *exact* —
                    // no threshold applies, and nothing is spread (which also
                    // rules out the non-terminating `r > r_max · 0`
                    // pathology).
                    num_pushes += 1;
                    ws.residue[u] = 0.0;
                    ws.reserve[u] += r_u;
                }
                DanglingPolicy::ZeroRow => {
                    // The literal D⁻¹A matrix: the surviving mass of a walk
                    // at a dangling node vanishes from the system (rows of
                    // the PPR matrix sum to < 1).  Discarding is exact under
                    // this semantics, so again no threshold applies.
                    num_pushes += 1;
                    ws.residue[u] = 0.0;
                }
                DanglingPolicy::Teleport => {
                    // Uniform jump: the implicit row has n entries of 1/n, so
                    // the standard threshold applies with degree n, and a
                    // push spreads (1-α)·r/n to *every* node — an O(n)
                    // operation, the price of teleport semantics in a local
                    // algorithm.
                    if r_u < teleport_threshold {
                        continue;
                    }
                    num_pushes += 1;
                    ws.residue[u] = 0.0;
                    ws.reserve[u] += alpha * r_u;
                    let share = (1.0 - alpha) * r_u / n as f64;
                    for v in 0..n {
                        ws.touch(v);
                        ws.residue[v] += share;
                        let dv = graph.out_degree(v as NodeId);
                        if admit(ws.residue[v], dv, policy, r_max, teleport_threshold)
                            && !ws.in_queue[v]
                        {
                            ws.queue.push_back(v as NodeId);
                            ws.in_queue[v] = true;
                        }
                    }
                }
            }
            continue;
        }
        if r_u < r_max * d as f64 {
            continue;
        }
        num_pushes += 1;
        ws.residue[u] = 0.0;
        ws.reserve[u] += alpha * r_u;
        let share = (1.0 - alpha) * r_u / d as f64;
        for &v in graph.out_neighbors(u as NodeId) {
            let v = v as usize;
            ws.touch(v);
            ws.residue[v] += share;
            let dv = graph.out_degree(v as NodeId);
            if admit(ws.residue[v], dv, policy, r_max, teleport_threshold) && !ws.in_queue[v] {
                ws.queue.push_back(v as NodeId);
                ws.in_queue[v] = true;
            }
        }
    }

    // Collect estimates and residual mass in ascending node order (the order
    // a dense scan would produce).  Sorting the touched list is in-place;
    // summing over it skips only exact zeros, so the residual sum is bitwise
    // identical to a full dense scan.
    ws.touched.sort_unstable();
    let mut residual_mass = 0.0;
    for i in 0..ws.touched.len() {
        let v = ws.touched[i];
        let p = ws.reserve[v as usize];
        if p > 0.0 {
            ws.estimates.push((v, p));
        }
        residual_mass += ws.residue[v as usize];
    }
    Ok(PushOutcome {
        residual_mass,
        num_pushes,
    })
}

/// The queue-admission test: non-dangling nodes use the standard
/// `r ≥ r_max · dout` rule; dangling nodes depend on the policy — SelfLoop
/// and ZeroRow convert (or discard) exactly, so any positive residue is
/// admitted, while Teleport's implicit degree-`n` row uses its threshold.
#[inline]
fn admit(
    residue: f64,
    out_degree: usize,
    policy: DanglingPolicy,
    r_max: f64,
    teleport_threshold: f64,
) -> bool {
    if out_degree > 0 {
        residue >= r_max * out_degree as f64
    } else {
        match policy {
            DanglingPolicy::SelfLoop | DanglingPolicy::ZeroRow => residue > 0.0,
            DanglingPolicy::Teleport => residue >= teleport_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppr::{single_source_ppr, single_source_ppr_with_policy};
    use nrp_graph::generators::simple::{cycle, directed_path, star};
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    #[test]
    fn estimates_are_lower_bounds_of_exact_ppr() {
        let g = cycle(10).unwrap();
        let exact = single_source_ppr(&g, 0, 0.15, 1e-12).unwrap();
        let push = forward_push(&g, 0, 0.15, 1e-4).unwrap();
        for &(v, estimate) in &push.estimates {
            assert!(
                estimate <= exact[v as usize] + 1e-9,
                "push estimate {estimate} exceeds exact {} at node {v}",
                exact[v as usize]
            );
        }
    }

    #[test]
    fn tighter_rmax_gives_smaller_residual() {
        let (g, _) =
            stochastic_block_model(&[50, 50], 0.1, 0.01, GraphKind::Undirected, 1).unwrap();
        let loose = forward_push(&g, 3, 0.15, 1e-2).unwrap();
        let tight = forward_push(&g, 3, 0.15, 1e-5).unwrap();
        assert!(tight.residual_mass <= loose.residual_mass + 1e-12);
        assert!(tight.num_pushes >= loose.num_pushes);
    }

    #[test]
    fn converges_to_exact_values_as_rmax_shrinks() {
        let g = cycle(8).unwrap();
        let exact = single_source_ppr(&g, 2, 0.2, 1e-12).unwrap();
        let push = forward_push(&g, 2, 0.2, 1e-8).unwrap();
        let mut approx = [0.0; 8];
        for (v, p) in push.estimates {
            approx[v as usize] = p;
        }
        for v in 0..8 {
            assert!(
                (approx[v] - exact[v]).abs() < 1e-4,
                "node {v}: {} vs {}",
                approx[v],
                exact[v]
            );
        }
    }

    #[test]
    fn mass_conservation() {
        let g = star(6).unwrap();
        let push = forward_push(&g, 0, 0.15, 1e-6).unwrap();
        let reserved: f64 = push.estimates.iter().map(|(_, p)| p).sum();
        assert!(reserved + push.residual_mass <= 1.0 + 1e-9);
        assert!(reserved > 0.5);
    }

    #[test]
    fn dangling_node_absorbs_mass() {
        let g = directed_path(3).unwrap();
        let push = forward_push(&g, 0, 0.15, 1e-9).unwrap();
        let map: std::collections::HashMap<_, _> = push.estimates.iter().copied().collect();
        // Node 2 is dangling; everything that reaches it terminates there.
        assert!(map[&2] > 0.5);
        let total: f64 = map.values().sum();
        assert!((total + push.residual_mass - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sinks_terminate_and_hold_no_residue() {
        // A graph where most arcs funnel into two sinks: the push loop must
        // terminate, every sink's residue must be fully converted to reserve
        // (the conversion is exact, no threshold applies), and the estimates
        // must match the exact self-loop PPR at the sinks.
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (1, 4),
                (2, 4),
                (0, 5),
                (5, 0),
            ],
            GraphKind::Directed,
        )
        .unwrap();
        let push = forward_push(&g, 0, 0.2, 1e-4).unwrap();
        // Residue at the dangling nodes 3 and 4 is always converted.
        let exact = single_source_ppr(&g, 0, 0.2, 1e-12).unwrap();
        let map: std::collections::HashMap<_, _> = push.estimates.iter().copied().collect();
        for sink in [3u32, 4] {
            let estimate = map.get(&sink).copied().unwrap_or(0.0);
            assert!(
                estimate <= exact[sink as usize] + 1e-9,
                "sink {sink} estimate {estimate} above exact {}",
                exact[sink as usize]
            );
            assert!(estimate > 0.0, "sink {sink} never received reserve");
        }
        // Everything not yet converted lives on non-dangling nodes.
        let reserved: f64 = map.values().sum();
        assert!((reserved + push.residual_mass - 1.0).abs() < 1e-9);
        assert!(push.residual_mass < 6.0 * 1e-4 * 2.0 + 1e-9);
    }

    #[test]
    fn source_keeps_at_least_alpha() {
        let g = cycle(5).unwrap();
        let push = forward_push(&g, 1, 0.15, 1e-6).unwrap();
        let map: std::collections::HashMap<_, _> = push.estimates.iter().copied().collect();
        assert!(map[&1] >= 0.15 - 1e-9);
    }

    #[test]
    fn invalid_parameters_rejected() {
        use crate::NrpError;
        let g = cycle(4).unwrap();
        // Validation failures are typed (no `format!` on the warm path) and
        // carry the offending value.
        assert!(matches!(
            forward_push(&g, 0, 0.0, 1e-3),
            Err(NrpError::PushParam(PushParamError::Alpha(a))) if a == 0.0
        ));
        assert!(matches!(
            forward_push(&g, 0, 0.15, 0.0),
            Err(NrpError::PushParam(PushParamError::RMax(r))) if r == 0.0
        ));
        assert!(matches!(
            forward_push(&g, 9, 0.15, 1e-3),
            Err(NrpError::PushParam(PushParamError::SourceOutOfBounds {
                source: 9,
                nodes: 4
            }))
        ));
    }

    #[test]
    fn estimates_are_sorted_by_node() {
        let (g, _) = stochastic_block_model(&[30, 30], 0.15, 0.02, GraphKind::Directed, 7).unwrap();
        let push = forward_push(&g, 11, 0.15, 1e-4).unwrap();
        assert!(push.estimates.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn reused_workspace_matches_fresh_workspace_across_many_sources() {
        // The workspace-reuse equivalence contract: pushing from every node
        // with ONE reused workspace gives results identical to a fresh
        // workspace per source — estimates (values and order), residual mass
        // bits, and push counts.
        let (g, _) =
            stochastic_block_model(&[40, 40], 0.12, 0.03, GraphKind::Directed, 13).unwrap();
        for policy in [
            DanglingPolicy::SelfLoop,
            DanglingPolicy::ZeroRow,
            DanglingPolicy::Teleport,
        ] {
            let mut reused = PushWorkspace::new();
            for source in 0..g.num_nodes() as NodeId {
                let outcome =
                    forward_push_into(&g, source, 0.15, 1e-4, policy, &mut reused).unwrap();
                let mut fresh = PushWorkspace::new();
                let fresh_outcome =
                    forward_push_into(&g, source, 0.15, 1e-4, policy, &mut fresh).unwrap();
                assert_eq!(
                    reused.estimates(),
                    fresh.estimates(),
                    "{policy:?} source {source}"
                );
                assert_eq!(
                    outcome.residual_mass.to_bits(),
                    fresh_outcome.residual_mass.to_bits(),
                    "{policy:?} source {source}"
                );
                assert_eq!(outcome.num_pushes, fresh_outcome.num_pushes);
            }
        }
    }

    #[test]
    fn into_variant_matches_allocating_wrapper() {
        let g = cycle(9).unwrap();
        let wrapper = forward_push(&g, 4, 0.2, 1e-5).unwrap();
        let mut ws = PushWorkspace::with_capacity(9);
        let outcome =
            forward_push_into(&g, 4, 0.2, 1e-5, DanglingPolicy::SelfLoop, &mut ws).unwrap();
        assert_eq!(ws.estimates(), wrapper.estimates.as_slice());
        assert_eq!(
            outcome.residual_mass.to_bits(),
            wrapper.residual_mass.to_bits()
        );
        assert_eq!(outcome.num_pushes, wrapper.num_pushes);
        assert!(ws.capacity() >= 9);
        assert!(ws.touched() > 0);
    }

    #[test]
    fn zero_row_policy_leaks_the_dangling_mass() {
        // 0 → 1 → 2 with 2 dangling: under ZeroRow the mass that reaches
        // node 2 still *terminates* there with probability α per visit — but
        // the surviving (1-α) share vanishes instead of pooling.
        let g = directed_path(3).unwrap();
        let push = forward_push_with_policy(&g, 0, 0.15, 1e-9, DanglingPolicy::ZeroRow).unwrap();
        let exact =
            single_source_ppr_with_policy(&g, 0, 0.15, 1e-12, DanglingPolicy::ZeroRow).unwrap();
        let reserved: f64 = push.estimates.iter().map(|(_, p)| p).sum();
        let exact_total: f64 = exact.iter().sum();
        assert!(exact_total < 1.0 - 1e-3, "ZeroRow must leak mass");
        assert!(
            reserved <= exact_total + 1e-6,
            "push reserve {reserved} above exact total {exact_total}"
        );
        for &(v, estimate) in &push.estimates {
            assert!(
                (estimate - exact[v as usize]).abs() < 1e-4,
                "node {v}: {estimate} vs {}",
                exact[v as usize]
            );
        }
    }

    #[test]
    fn teleport_policy_converges_to_exact_teleport_ppr() {
        // Dangling node 2 jumps uniformly: push estimates must converge to
        // the exact Teleport-policy PPR as r_max shrinks, and conserve mass.
        let g = directed_path(3).unwrap();
        let push = forward_push_with_policy(&g, 0, 0.15, 1e-8, DanglingPolicy::Teleport).unwrap();
        let exact =
            single_source_ppr_with_policy(&g, 0, 0.15, 1e-12, DanglingPolicy::Teleport).unwrap();
        let reserved: f64 = push.estimates.iter().map(|(_, p)| p).sum();
        assert!(
            (reserved + push.residual_mass - 1.0).abs() < 1e-6,
            "mass conserved"
        );
        for &(v, estimate) in &push.estimates {
            assert!(
                (estimate - exact[v as usize]).abs() < 1e-4,
                "node {v}: {estimate} vs {}",
                exact[v as usize]
            );
        }
        // Teleport spreads mass everywhere, unlike SelfLoop which pools it
        // at the sink.
        let self_loop = forward_push(&g, 0, 0.15, 1e-8).unwrap();
        let sl: std::collections::HashMap<_, _> = self_loop.estimates.iter().copied().collect();
        let tp: std::collections::HashMap<_, _> = push.estimates.iter().copied().collect();
        assert!(tp[&2] < sl[&2], "teleport must not pool mass at the sink");
    }

    #[test]
    fn teleport_policy_terminates_on_all_dangling_graph() {
        // Every node dangling: pure teleport dynamics must terminate.
        let g = Graph::from_edges(4, &[], GraphKind::Directed).unwrap();
        let push = forward_push_with_policy(&g, 0, 0.3, 1e-6, DanglingPolicy::Teleport).unwrap();
        let exact =
            single_source_ppr_with_policy(&g, 0, 0.3, 1e-12, DanglingPolicy::Teleport).unwrap();
        for &(v, estimate) in &push.estimates {
            assert!(
                (estimate - exact[v as usize]).abs() < 1e-3,
                "node {v}: {estimate} vs {}",
                exact[v as usize]
            );
        }
    }

    #[test]
    fn workspace_grows_across_graphs_of_different_sizes() {
        let small = cycle(5).unwrap();
        let large = cycle(50).unwrap();
        let mut ws = PushWorkspace::new();
        forward_push_into(&small, 0, 0.15, 1e-4, DanglingPolicy::SelfLoop, &mut ws).unwrap();
        assert_eq!(ws.capacity(), 5);
        forward_push_into(&large, 0, 0.15, 1e-4, DanglingPolicy::SelfLoop, &mut ws).unwrap();
        assert_eq!(ws.capacity(), 50);
        // And going back to the small graph still works (buffers oversized).
        let back =
            forward_push_into(&small, 1, 0.15, 1e-4, DanglingPolicy::SelfLoop, &mut ws).unwrap();
        let reference = forward_push(&small, 1, 0.15, 1e-4).unwrap();
        assert_eq!(ws.estimates(), reference.estimates.as_slice());
        assert_eq!(back.num_pushes, reference.num_pushes);
    }
}
