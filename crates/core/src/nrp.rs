//! The complete NRP algorithm (paper Algorithm 3).
//!
//! `NRP = ApproxPPR factors + node reweighting + per-node scaling`:
//!
//! ```text
//! k' ← k / 2
//! [X, Y] ← ApproxPPR(A, D⁻¹, P, α, k', ℓ1, ε)        (Algorithm 1)
//! w⃗_v ← dout(v), w⃖_v ← 1                             (initialization)
//! repeat ℓ2 times:
//!     w⃖ ← updateBwdWeights(...)                       (Algorithm 2)
//!     w⃗ ← updateFwdWeights(...)                       (Algorithm 4)
//! X_v ← w⃗_v · X_v,  Y_v ← w⃖_v · Y_v
//! ```
//!
//! Overall `O(k(m + kn) log n)` time and `O(m + nk)` space.

use nrp_graph::Graph;
use nrp_linalg::{DanglingPolicy, RandomizedSvdMethod};

use crate::approx_ppr::{ApproxPpr, ApproxPprParams};
use crate::config::MethodConfig;
use crate::context::{EmbedContext, EmbedOutput, StageClock};
use crate::embedding::{Embedder, Embedding};
use crate::reweight::{learn_weights_with, NodeWeights, ReweightConfig};
use crate::{NrpError, Result};

/// Parameters of the full NRP pipeline (paper defaults in parentheses).
#[derive(Debug, Clone)]
pub struct NrpParams {
    /// Total per-node embedding budget `k` (128); each side gets `k/2`.
    pub dimension: usize,
    /// Random-walk decay factor `α` (0.15).
    pub alpha: f64,
    /// Number of PPR series terms `ℓ1` (20).
    pub num_hops: usize,
    /// Number of reweighting epochs `ℓ2` (10). `0` disables reweighting and
    /// degenerates to ApproxPPR — the paper's Fig. 8(d) ablation.
    pub reweight_epochs: usize,
    /// SVD relative-error target `ε` (0.2).
    pub epsilon: f64,
    /// Ridge regularization `λ` of the reweighting objective (10).
    pub lambda: f64,
    /// Randomized SVD variant (block Krylov).
    pub svd_method: RandomizedSvdMethod,
    /// Use the exact `b₁` term instead of the paper's Eq. (14) approximation.
    pub exact_b1: bool,
    /// How the transition matrix treats dangling nodes (self-loop by
    /// default, matching the paper's walk semantics).
    pub dangling: DanglingPolicy,
    /// RNG seed for the SVD sketch and the coordinate-descent order.
    pub seed: u64,
}

impl Default for NrpParams {
    fn default() -> Self {
        Self {
            dimension: 128,
            alpha: 0.15,
            num_hops: 20,
            reweight_epochs: 10,
            epsilon: 0.2,
            lambda: 10.0,
            svd_method: RandomizedSvdMethod::BlockKrylov,
            exact_b1: false,
            dangling: DanglingPolicy::SelfLoop,
            seed: 0,
        }
    }
}

impl NrpParams {
    /// Starts a builder with paper defaults.
    pub fn builder() -> NrpParamsBuilder {
        NrpParamsBuilder {
            params: NrpParams::default(),
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.dimension < 2 {
            return Err(NrpError::InvalidParameter(format!(
                "dimension must be at least 2 (got {})",
                self.dimension
            )));
        }
        if !self.dimension.is_multiple_of(2) {
            return Err(NrpError::InvalidParameter(format!(
                "dimension must be even so it splits into forward/backward halves (got {})",
                self.dimension
            )));
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(NrpError::InvalidParameter(format!(
                "alpha must be in (0,1), got {}",
                self.alpha
            )));
        }
        if self.num_hops == 0 {
            return Err(NrpError::InvalidParameter(
                "num_hops (ℓ1) must be at least 1".into(),
            ));
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(NrpError::InvalidParameter(format!(
                "epsilon must be in (0,1), got {}",
                self.epsilon
            )));
        }
        if self.lambda < 0.0 {
            return Err(NrpError::InvalidParameter(format!(
                "lambda must be non-negative, got {}",
                self.lambda
            )));
        }
        Ok(())
    }

    fn approx_ppr_params(&self, seed: u64) -> ApproxPprParams {
        ApproxPprParams {
            half_dimension: self.dimension / 2,
            alpha: self.alpha,
            num_hops: self.num_hops,
            epsilon: self.epsilon,
            svd_method: self.svd_method,
            dangling: self.dangling,
            seed,
        }
    }

    fn reweight_config(&self, seed: u64) -> ReweightConfig {
        ReweightConfig {
            epochs: self.reweight_epochs,
            lambda: self.lambda,
            exact_b1: self.exact_b1,
            seed: seed.wrapping_add(0x5eed),
        }
    }
}

/// Fluent builder for [`NrpParams`].
#[derive(Debug, Clone)]
pub struct NrpParamsBuilder {
    params: NrpParams,
}

impl NrpParamsBuilder {
    /// Sets the total embedding dimension `k`.
    pub fn dimension(mut self, k: usize) -> Self {
        self.params.dimension = k;
        self
    }

    /// Sets the decay factor `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.params.alpha = alpha;
        self
    }

    /// Sets the number of PPR hops `ℓ1`.
    pub fn num_hops(mut self, l1: usize) -> Self {
        self.params.num_hops = l1;
        self
    }

    /// Sets the number of reweighting epochs `ℓ2`.
    pub fn reweight_epochs(mut self, l2: usize) -> Self {
        self.params.reweight_epochs = l2;
        self
    }

    /// Sets the SVD error target `ε`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.params.epsilon = epsilon;
        self
    }

    /// Sets the ridge regularizer `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.params.lambda = lambda;
        self
    }

    /// Sets the randomized SVD variant.
    pub fn svd_method(mut self, method: RandomizedSvdMethod) -> Self {
        self.params.svd_method = method;
        self
    }

    /// Enables the exact-`b₁` ablation.
    pub fn exact_b1(mut self, exact: bool) -> Self {
        self.params.exact_b1 = exact;
        self
    }

    /// Sets the dangling-node policy of the transition matrix.
    pub fn dangling(mut self, policy: DanglingPolicy) -> Self {
        self.params.dangling = policy;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Validates and returns the parameters.
    pub fn build(self) -> Result<NrpParams> {
        self.params.validate()?;
        Ok(self.params)
    }
}

/// The NRP embedder (paper Algorithm 3).
#[derive(Debug, Clone, Default)]
pub struct Nrp {
    params: NrpParams,
}

impl Nrp {
    /// Creates an NRP embedder with the given parameters.
    pub fn new(params: NrpParams) -> Self {
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &NrpParams {
        &self.params
    }

    /// Runs the full pipeline but also returns the learned node weights
    /// (useful for diagnostics and the reweighting ablation benches).
    pub fn embed_with_weights(&self, graph: &Graph) -> Result<(Embedding, NodeWeights)> {
        let (embedding, weights, _) =
            self.run_pipeline(graph, &EmbedContext::default(), &mut StageClock::start())?;
        Ok((embedding, weights))
    }

    fn run_pipeline(
        &self,
        graph: &Graph,
        ctx: &EmbedContext,
        clock: &mut StageClock,
    ) -> Result<(Embedding, NodeWeights, u64)> {
        self.params.validate()?;
        ctx.ensure_active()?;
        let seed = ctx.seed_or(self.params.seed);
        let approx = ApproxPpr::new(self.params.approx_ppr_params(seed));
        let (mut x, mut y) = approx.factorize_with(graph, ctx)?;
        clock.lap_parallel("approx_ppr", ctx.thread_budget());
        let weights = if self.params.reweight_epochs > 0 {
            learn_weights_with(graph, &x, &y, &self.params.reweight_config(seed), ctx)?
        } else {
            NodeWeights::initialize(graph)
        };
        clock.lap("reweight");
        if self.params.reweight_epochs > 0 {
            x.scale_rows(&weights.forward).map_err(NrpError::Linalg)?;
            y.scale_rows(&weights.backward).map_err(NrpError::Linalg)?;
        }
        let embedding = Embedding::new(x, y, self.name())?;
        clock.lap("scale");
        Ok((embedding, weights, seed))
    }
}

impl Embedder for Nrp {
    fn name(&self) -> &'static str {
        "NRP"
    }

    fn config(&self) -> MethodConfig {
        let p = &self.params;
        MethodConfig::Nrp {
            dimension: p.dimension,
            alpha: p.alpha,
            num_hops: p.num_hops,
            reweight_epochs: p.reweight_epochs,
            epsilon: p.epsilon,
            lambda: p.lambda,
            svd_method: p.svd_method,
            exact_b1: p.exact_b1,
            dangling: p.dangling,
            seed: p.seed,
        }
    }

    fn embed(&self, graph: &Graph, ctx: &EmbedContext) -> Result<EmbedOutput> {
        let mut clock = StageClock::start();
        let (embedding, _, seed) = self.run_pipeline(graph, ctx, &mut clock)?;
        Ok(EmbedOutput::new(embedding, self.config(), seed, ctx, clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::example::{example_graph, V2, V4, V7, V9};
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    fn small_params(k: usize, seed: u64) -> NrpParams {
        NrpParams::builder()
            .dimension(k)
            .reweight_epochs(8)
            .lambda(1.0)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_defaults_match_paper() {
        let p = NrpParams::default();
        assert_eq!(p.dimension, 128);
        assert_eq!(p.num_hops, 20);
        assert_eq!(p.reweight_epochs, 10);
        assert!((p.alpha - 0.15).abs() < 1e-12);
        assert!((p.epsilon - 0.2).abs() < 1e-12);
        assert!((p.lambda - 10.0).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert!(NrpParams::builder().dimension(0).build().is_err());
        assert!(NrpParams::builder().dimension(7).build().is_err());
        assert!(NrpParams::builder().alpha(1.5).build().is_err());
        assert!(NrpParams::builder().num_hops(0).build().is_err());
        assert!(NrpParams::builder().epsilon(0.0).build().is_err());
        assert!(NrpParams::builder().lambda(-1.0).build().is_err());
        assert!(NrpParams::builder().dimension(16).build().is_ok());
    }

    #[test]
    fn embedding_has_expected_shape() {
        let (g, _) =
            stochastic_block_model(&[25, 25], 0.2, 0.02, GraphKind::Undirected, 3).unwrap();
        let e = Nrp::new(small_params(16, 3)).embed_default(&g).unwrap();
        assert_eq!(e.num_nodes(), 50);
        assert_eq!(e.dimension(), 16);
        assert_eq!(e.half_dimension(), 8);
        assert!(e.is_finite());
        assert_eq!(e.method(), "NRP");
    }

    #[test]
    fn reweighting_fixes_the_fig1_counterexample() {
        // The paper's motivating claim: vanilla PPR ranks (v9, v7) above
        // (v2, v4), but after node reweighting the order flips because v2 and
        // v4 sit in the dense cluster with higher degrees.
        let g = example_graph();
        let nrp = Nrp::new(
            NrpParams::builder()
                .dimension(8)
                .num_hops(30)
                .reweight_epochs(10)
                .lambda(0.1)
                .seed(1)
                .build()
                .unwrap(),
        );
        let e = nrp.embed_default(&g).unwrap();
        assert!(
            e.score(V2, V4) > e.score(V9, V7),
            "NRP should rank (v2,v4) above (v9,v7): {} vs {}",
            e.score(V2, V4),
            e.score(V9, V7)
        );
    }

    #[test]
    fn zero_epochs_equals_approx_ppr() {
        let g = example_graph();
        let params = NrpParams::builder()
            .dimension(8)
            .reweight_epochs(0)
            .seed(5)
            .build()
            .unwrap();
        let nrp_embedding = Nrp::new(params.clone()).embed_default(&g).unwrap();
        let approx = crate::approx_ppr::ApproxPpr::new(ApproxPprParams {
            half_dimension: 4,
            alpha: params.alpha,
            num_hops: params.num_hops,
            epsilon: params.epsilon,
            svd_method: params.svd_method,
            dangling: params.dangling,
            seed: params.seed,
        })
        .embed_default(&g)
        .unwrap();
        for u in 0..9 {
            for v in 0..9 {
                assert!((nrp_embedding.score(u, v) - approx.score(u, v)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weights_returned_match_scaling() {
        let g = example_graph();
        let nrp = Nrp::new(small_params(8, 9));
        let (embedding, weights) = nrp.embed_with_weights(&g).unwrap();
        // Recompute the unweighted factors and check the scaling.
        let (x, _) =
            crate::approx_ppr::ApproxPpr::new(nrp.params.approx_ppr_params(nrp.params.seed))
                .factorize(&g)
                .unwrap();
        for u in 0..g.num_nodes() {
            for c in 0..x.cols() {
                let expected = x.get(u, c) * weights.forward[u];
                assert!((embedding.forward().get(u, c) - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn directed_embeddings_preserve_asymmetry() {
        let (g, _) =
            stochastic_block_model(&[30, 30], 0.12, 0.01, GraphKind::Directed, 11).unwrap();
        let e = Nrp::new(small_params(16, 11)).embed_default(&g).unwrap();
        let mut asymmetric = 0;
        let mut total = 0;
        for (u, v) in g.arcs().take(100) {
            if !g.has_arc(v, u) {
                total += 1;
                if e.score(u, v) > e.score(v, u) {
                    asymmetric += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            asymmetric * 3 > total * 2,
            "{asymmetric}/{total} one-way arcs scored higher forward"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _) =
            stochastic_block_model(&[20, 20], 0.2, 0.02, GraphKind::Undirected, 7).unwrap();
        let a = Nrp::new(small_params(8, 42)).embed_default(&g).unwrap();
        let b = Nrp::new(small_params(8, 42)).embed_default(&g).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn edge_scores_exceed_non_edge_scores_on_average() {
        let (g, _) =
            stochastic_block_model(&[30, 30], 0.25, 0.02, GraphKind::Undirected, 19).unwrap();
        let e = Nrp::new(small_params(16, 19)).embed_default(&g).unwrap();
        let mut edge_score = 0.0;
        let mut edge_count = 0usize;
        for (u, v) in g.edges() {
            edge_score += e.score(u, v);
            edge_count += 1;
        }
        let mut non_edge_score = 0.0;
        let mut non_edge_count = 0usize;
        for u in 0..60u32 {
            for v in 0..60u32 {
                if u != v && !g.has_arc(u, v) {
                    non_edge_score += e.score(u, v);
                    non_edge_count += 1;
                }
            }
        }
        let edge_mean = edge_score / edge_count as f64;
        let non_edge_mean = non_edge_score / non_edge_count as f64;
        assert!(
            edge_mean > non_edge_mean,
            "edges should score higher on average: {edge_mean} vs {non_edge_mean}"
        );
    }
}
