//! Exact personalized PageRank for small graphs.
//!
//! The paper defines `π(u, v)` as the probability that an `α`-decaying random
//! walk from `u` terminates at `v`, i.e. `Π = Σ_{i≥0} α(1-α)^i P^i` (Eq. 1).
//! This module evaluates the series directly; it is `O(n²)` in space and is
//! meant for the Table 1 / Fig. 2 harnesses, for ground truth in tests of
//! ApproxPPR's error bound (Theorem 1), and for the motivation check that
//! `π(v9, v7) > π(v2, v4)` on the example graph.
//!
//! Dangling nodes follow the workspace-wide [`DanglingPolicy`]: by default a
//! walk that reaches a node with no out-neighbours terminates *there* (the
//! node carries an implicit self-loop), so every PPR row sums to exactly 1.
//! [`PprMatrix::exact_with_policy`] exposes the leaky `ZeroRow` alternative
//! for comparisons.

use nrp_graph::{Graph, NodeId};
use nrp_linalg::{DanglingPolicy, DenseMatrix, LinearOperator, TransitionOperator};

use crate::context::EmbedContext;
use crate::{NrpError, Result};

/// A dense matrix of exact PPR values (`Π[u][v] = π(u, v)`).
#[derive(Debug, Clone)]
pub struct PprMatrix {
    values: DenseMatrix,
    alpha: f64,
}

impl PprMatrix {
    /// Computes the PPR matrix of `graph` with decay factor `alpha`,
    /// truncating the series when the residual mass `(1-α)^i` drops below
    /// `tol`, under the default [`DanglingPolicy::SelfLoop`].
    pub fn exact(graph: &Graph, alpha: f64, tol: f64) -> Result<Self> {
        Self::exact_with_policy(graph, alpha, tol, DanglingPolicy::default())
    }

    /// [`PprMatrix::exact`] under an explicit dangling-node policy.
    pub fn exact_with_policy(
        graph: &Graph,
        alpha: f64,
        tol: f64,
        policy: DanglingPolicy,
    ) -> Result<Self> {
        validate_alpha(alpha)?;
        if tol <= 0.0 || tol >= 1.0 {
            return Err(NrpError::InvalidParameter(format!(
                "tol must be in (0,1), got {tol}"
            )));
        }
        let n = graph.num_nodes();
        let op = TransitionOperator::with_policy(graph, policy);
        // Iterate rows of Π: start with the identity (walk of length 0) and
        // repeatedly multiply by P on the right.  We keep the whole matrix
        // since callers want all-pairs values; `power = P^i` as dense.
        let mut result = DenseMatrix::identity(n);
        result.scale(alpha);
        let mut power = DenseMatrix::identity(n);
        let mut coeff = alpha;
        let max_iters = ((tol.ln() / (1.0 - alpha).ln()).ceil() as usize).max(1);
        for _ in 1..=max_iters {
            // power <- power * P  ==  (Pᵀ * powerᵀ)ᵀ ; using the operator's
            // transpose-apply keeps the sparse access pattern.
            power = op.apply_transpose(&power.transpose())?.transpose();
            coeff *= 1.0 - alpha;
            result.axpy(coeff, &power)?;
            if coeff < tol * alpha {
                break;
            }
        }
        Ok(Self {
            values: result,
            alpha,
        })
    }

    /// The decay factor used.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.values.rows()
    }

    /// `π(u, v)`.
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        self.values.get(u as usize, v as usize)
    }

    /// The PPR row of source `u`.
    pub fn row(&self, u: NodeId) -> &[f64] {
        self.values.row(u as usize)
    }

    /// The underlying dense matrix.
    pub fn as_matrix(&self) -> &DenseMatrix {
        &self.values
    }
}

/// Single-source PPR by power iteration on the vector recurrence
/// `p_{i} = α e_u + (1-α) p_{i-1} P`, run until the change is below `tol`.
///
/// Linear in `m` per iteration, so usable on larger graphs than
/// [`PprMatrix::exact`].  Dangling nodes follow the default
/// [`DanglingPolicy::SelfLoop`], so the returned row sums to 1 (up to `tol`).
/// See [`single_source_ppr_with_policy`] for the other policies.
pub fn single_source_ppr(graph: &Graph, source: NodeId, alpha: f64, tol: f64) -> Result<Vec<f64>> {
    single_source_ppr_with_policy(graph, source, alpha, tol, DanglingPolicy::default())
}

/// [`single_source_ppr`] under an explicit dangling-node policy, matching
/// [`PprMatrix::exact_with_policy`] row for row: `SelfLoop` keeps the
/// surviving mass at the dangling node (rows sum to 1), `ZeroRow` lets it
/// vanish (rows sum to < 1 when a sink is reachable) and `Teleport` spreads
/// it uniformly over all nodes (rows sum to 1).
pub fn single_source_ppr_with_policy(
    graph: &Graph,
    source: NodeId,
    alpha: f64,
    tol: f64,
    policy: DanglingPolicy,
) -> Result<Vec<f64>> {
    single_source_ppr_impl(graph, source, alpha, tol, policy, None)
}

/// [`single_source_ppr_with_policy`] under an [`EmbedContext`]: the power
/// iteration checks [`EmbedContext::ensure_active`] once per step, so a
/// raised cancel flag or an expired [`EmbedContext::with_deadline`] aborts
/// the run with [`NrpError::Cancelled`] instead of iterating to
/// convergence.  Cancellation is abort-only — the function never returns a
/// partially converged vector, so completed answers stay bitwise identical
/// to a plain [`single_source_ppr_with_policy`] call.
pub fn single_source_ppr_ctx(
    graph: &Graph,
    source: NodeId,
    alpha: f64,
    tol: f64,
    policy: DanglingPolicy,
    ctx: &EmbedContext,
) -> Result<Vec<f64>> {
    single_source_ppr_impl(graph, source, alpha, tol, policy, Some(ctx))
}

fn single_source_ppr_impl(
    graph: &Graph,
    source: NodeId,
    alpha: f64,
    tol: f64,
    policy: DanglingPolicy,
    ctx: Option<&EmbedContext>,
) -> Result<Vec<f64>> {
    validate_alpha(alpha)?;
    let n = graph.num_nodes();
    if (source as usize) >= n {
        return Err(NrpError::InvalidParameter(format!(
            "source {source} out of bounds for {n} nodes"
        )));
    }
    // `position[v]` holds the mass (1-α)^i · Pr[walk alive and at v after i steps].
    let mut position = vec![0.0; n];
    position[source as usize] = 1.0;
    let mut ppr = vec![0.0; n];
    loop {
        if let Some(ctx) = ctx {
            ctx.ensure_active()?;
        }
        let alive: f64 = position.iter().sum();
        if alive <= tol {
            break;
        }
        // The walk terminates here with probability α.
        for (p, pos) in ppr.iter_mut().zip(&position) {
            *p += alpha * pos;
        }
        // Otherwise it survives (factor 1-α) and moves per its row of P.
        let mut next = vec![0.0; n];
        // Surviving mass at dangling nodes under Teleport, spread uniformly
        // after the sparse scatter.
        let mut teleporting = 0.0;
        for u in 0..n {
            let mass = position[u];
            if mass == 0.0 {
                continue;
            }
            let d = graph.out_degree(u as NodeId);
            if d == 0 {
                match policy {
                    // The walk halts *here* (implicit self-loop): the
                    // surviving mass stays at u instead of leaving the system.
                    DanglingPolicy::SelfLoop => next[u] += (1.0 - alpha) * mass,
                    // The literal D⁻¹A matrix: the surviving mass vanishes.
                    DanglingPolicy::ZeroRow => {}
                    // The PageRank classic: jump to a uniformly random node.
                    DanglingPolicy::Teleport => teleporting += (1.0 - alpha) * mass,
                }
                continue;
            }
            let share = (1.0 - alpha) * mass / d as f64;
            for &v in graph.out_neighbors(u as NodeId) {
                next[v as usize] += share;
            }
        }
        if teleporting > 0.0 {
            let share = teleporting / n as f64;
            for slot in &mut next {
                *slot += share;
            }
        }
        position = next;
    }
    Ok(ppr)
}

fn validate_alpha(alpha: f64) -> Result<()> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(NrpError::InvalidParameter(format!(
            "alpha must be in (0,1), got {alpha}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrp_graph::generators::example::{example_graph, V2, V4, V7, V9};
    use nrp_graph::generators::simple::{cycle, directed_path, star};
    use nrp_graph::{Graph, GraphKind};

    const ALPHA: f64 = 0.15;
    const TOL: f64 = 1e-12;

    #[test]
    fn rows_sum_to_one_on_strongly_connected_graph() {
        let g = cycle(7).unwrap();
        let ppr = PprMatrix::exact(&g, ALPHA, TOL).unwrap();
        for u in 0..7 {
            let sum: f64 = ppr.row(u).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {u} sums to {sum}");
        }
    }

    #[test]
    fn self_ppr_at_least_alpha() {
        let g = cycle(5).unwrap();
        let ppr = PprMatrix::exact(&g, ALPHA, TOL).unwrap();
        for u in 0..5 {
            assert!(ppr.get(u, u) >= ALPHA - 1e-12);
        }
    }

    #[test]
    fn dangling_path_conserves_mass_under_default_policy() {
        // Node 2 of the path is dangling.  Under the default self-loop policy
        // every walk terminates somewhere, so each PPR row sums to exactly 1
        // (up to the series truncation) and the sink absorbs the surviving
        // mass: π(0, 2) = (1-α)² is the largest entry of row 0.
        let g = directed_path(3).unwrap();
        let ppr = PprMatrix::exact(&g, ALPHA, TOL).unwrap();
        for u in 0..3 {
            let sum: f64 = ppr.row(u).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {u} sums to {sum}");
        }
        assert!((ppr.get(0, 2) - (1.0 - ALPHA) * (1.0 - ALPHA)).abs() < 1e-9);
        assert!(ppr.get(0, 0) >= ALPHA);
        assert!(
            (ppr.get(2, 2) - 1.0).abs() < 1e-9,
            "walks from the sink stay there"
        );
    }

    #[test]
    fn zero_row_policy_reproduces_the_historical_mass_leak() {
        // Regression companion to the fix: with the literal D⁻¹A matrix the
        // ℓ1-term series silently loses the mass that reaches the sink.
        let g = directed_path(3).unwrap();
        let leaky = PprMatrix::exact_with_policy(&g, ALPHA, TOL, DanglingPolicy::ZeroRow).unwrap();
        let sum0: f64 = leaky.row(0).iter().sum();
        assert!(
            sum0 < 1.0 - 1e-3,
            "zero-row rows must leak mass, got {sum0}"
        );
        assert!(leaky.get(0, 1) > leaky.get(0, 2));
    }

    #[test]
    fn mass_conservation_on_graph_with_many_sinks() {
        // Several dangling nodes reachable from everywhere: rows of both the
        // matrix series and the single-source recurrence must sum to 1.
        let g = Graph::from_edges(
            6,
            &[(0, 1), (0, 2), (1, 3), (2, 4), (1, 5), (2, 0)],
            GraphKind::Directed,
        )
        .unwrap();
        let ppr = PprMatrix::exact(&g, ALPHA, TOL).unwrap();
        for u in 0..6 {
            let sum: f64 = ppr.row(u).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "matrix row {u} sums to {sum}");
            let row = single_source_ppr(&g, u, ALPHA, TOL).unwrap();
            let vec_sum: f64 = row.iter().sum();
            assert!(
                (vec_sum - 1.0).abs() < 1e-9,
                "vector row {u} sums to {vec_sum}"
            );
        }
    }

    #[test]
    fn single_source_policy_variants_match_matrix_rows() {
        // Each policy's vector recurrence must agree with the matrix series
        // under the same policy, on graphs with reachable dangling nodes.
        let g = Graph::from_edges(
            5,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (0, 4)],
            GraphKind::Directed,
        )
        .unwrap();
        for policy in [
            DanglingPolicy::SelfLoop,
            DanglingPolicy::ZeroRow,
            DanglingPolicy::Teleport,
        ] {
            let matrix = PprMatrix::exact_with_policy(&g, ALPHA, TOL, policy).unwrap();
            for u in 0..5 {
                let row = single_source_ppr_with_policy(&g, u, ALPHA, TOL, policy).unwrap();
                for v in 0..5usize {
                    assert!(
                        (row[v] - matrix.get(u, v as NodeId)).abs() < 1e-8,
                        "{policy:?} ({u},{v}): {} vs {}",
                        row[v],
                        matrix.get(u, v as NodeId)
                    );
                }
            }
        }
    }

    #[test]
    fn symmetric_graph_has_symmetric_ppr_between_twin_nodes() {
        // In a star, all leaves are structurally equivalent.
        let g = star(5).unwrap();
        let ppr = PprMatrix::exact(&g, ALPHA, TOL).unwrap();
        let p12 = ppr.get(1, 2);
        let p13 = ppr.get(1, 3);
        assert!((p12 - p13).abs() < 1e-12);
    }

    #[test]
    fn single_source_matches_matrix_rows() {
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)],
            GraphKind::Directed,
        )
        .unwrap();
        let ppr = PprMatrix::exact(&g, ALPHA, TOL).unwrap();
        for u in 0..6 {
            let row = single_source_ppr(&g, u, ALPHA, TOL).unwrap();
            for v in 0..6 {
                assert!(
                    (row[v] - ppr.get(u, v as NodeId)).abs() < 1e-8,
                    "mismatch at ({u},{v}): {} vs {}",
                    row[v],
                    ppr.get(u, v as NodeId)
                );
            }
        }
    }

    #[test]
    fn table1_motivation_ppr_contradicts_common_neighbors() {
        // The paper's key observation (Section 1, Table 1): although v2 and v4
        // share three common neighbours and v7/v9 share only one, vanilla PPR
        // ranks (v9, v7) above (v2, v4).
        let g = example_graph();
        assert!(g.common_out_neighbors(V2, V4) > g.common_out_neighbors(V9, V7));
        let ppr = PprMatrix::exact(&g, 0.15, TOL).unwrap();
        assert!(
            ppr.get(V9, V7) > ppr.get(V2, V4),
            "expected π(v9,v7) > π(v2,v4), got {} vs {}",
            ppr.get(V9, V7),
            ppr.get(V2, V4)
        );
    }

    #[test]
    fn example_graph_values_close_to_paper_table1() {
        // Spot-check a few entries of Table 1 (α = 0.15).  Our reconstruction
        // of Fig. 1 is not guaranteed to be edge-for-edge identical to the
        // original, so we only require agreement in the leading digits of the
        // entries that characterize the phenomenon.
        let g = example_graph();
        let ppr = PprMatrix::exact(&g, 0.15, TOL).unwrap();
        // Table 1 reports π(v2,v4) = 0.118 and π(v9,v7) = 0.168.
        assert!(
            (ppr.get(V2, V4) - 0.118).abs() < 0.05,
            "π(v2,v4) = {}",
            ppr.get(V2, V4)
        );
        assert!(
            (ppr.get(V9, V7) - 0.168).abs() < 0.05,
            "π(v9,v7) = {}",
            ppr.get(V9, V7)
        );
    }

    #[test]
    fn higher_alpha_concentrates_mass_at_source() {
        let g = cycle(8).unwrap();
        let low = PprMatrix::exact(&g, 0.1, TOL).unwrap();
        let high = PprMatrix::exact(&g, 0.9, TOL).unwrap();
        assert!(high.get(0, 0) > low.get(0, 0));
        assert!(high.get(0, 4) < low.get(0, 4));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let g = cycle(4).unwrap();
        assert!(PprMatrix::exact(&g, 0.0, TOL).is_err());
        assert!(PprMatrix::exact(&g, 1.0, TOL).is_err());
        assert!(PprMatrix::exact(&g, 0.15, 0.0).is_err());
        assert!(single_source_ppr(&g, 10, 0.15, TOL).is_err());
    }

    #[test]
    fn ctx_variant_is_bitwise_identical_when_uncancelled() {
        let g = example_graph();
        let plain = single_source_ppr(&g, V9, ALPHA, TOL).unwrap();
        let ctx = EmbedContext::new();
        let under_ctx =
            single_source_ppr_ctx(&g, V9, ALPHA, TOL, DanglingPolicy::SelfLoop, &ctx).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&plain), bits(&under_ctx));
    }

    #[test]
    fn ctx_variant_aborts_on_cancel_flag_and_expired_deadline() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let g = cycle(16).unwrap();
        let flag = Arc::new(AtomicBool::new(true));
        let cancelled = EmbedContext::new().with_cancel_flag(flag);
        let err = single_source_ppr_ctx(&g, 0, ALPHA, TOL, DanglingPolicy::SelfLoop, &cancelled)
            .unwrap_err();
        assert!(matches!(err, NrpError::Cancelled), "{err:?}");
        let expired = EmbedContext::new().with_deadline(std::time::Instant::now());
        assert!(expired.deadline_expired());
        let err = single_source_ppr_ctx(&g, 0, ALPHA, TOL, DanglingPolicy::SelfLoop, &expired)
            .unwrap_err();
        assert!(matches!(err, NrpError::Cancelled), "{err:?}");
    }
}
