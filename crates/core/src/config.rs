//! Declarative method configuration and the embedder registry.
//!
//! [`MethodConfig`] describes any of the workspace's eleven embedding methods
//! as plain data: one enum variant per method, internally tagged by the
//! `method` field when serialized, with missing fields filled from the
//! paper's defaults.  An experiment is therefore a JSON (or TOML) document:
//!
//! ```
//! use nrp_core::config::MethodConfig;
//! let config: MethodConfig =
//!     serde_json::from_str(r#"{"method": "NRP", "dimension": 16, "seed": 7}"#).unwrap();
//! assert_eq!(config.method_name(), "NRP");
//! assert_eq!(config.dimension(), 16);
//! let embedder = config.build().unwrap();
//! assert_eq!(embedder.name(), "NRP");
//! ```
//!
//! [`MethodConfig::build`] resolves a configuration to a boxed
//! [`Embedder`](crate::embedding::Embedder) through a process-wide registry.
//! `nrp-core` registers its own two methods (`NRP`, `ApproxPPR`) on first
//! use; the nine baselines live in the downstream `nrp-baselines` crate,
//! which cannot be a dependency of this one, so they join the registry when
//! `nrp_baselines::register_baselines()` (or the umbrella crate's
//! `nrp::init()`) runs.  Building an unregistered method fails with
//! [`NrpError::UnknownMethod`] naming that entry point.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use nrp_linalg::{DanglingPolicy, RandomizedSvdMethod};

use crate::approx_ppr::{ApproxPpr, ApproxPprParams};
use crate::embedding::Embedder;
use crate::nrp::{Nrp, NrpParams};
use crate::{NrpError, Result};

/// Generates the `MethodConfig` enum plus its name table, defaults and
/// (de)serialization from one declaration of `tag => Variant { field: type =
/// paper_default }` entries, keeping the four in lockstep.
macro_rules! method_configs {
    ($( $tag:literal => $variant:ident { $( $field:ident : $ty:ty = $default:expr ),* $(,)? } )*) => {
        /// Declarative configuration of one embedding method.
        ///
        /// Serialized form is internally tagged: `{"method": "NRP", ...}`.
        /// Fields omitted from a document take the paper's default values, so
        /// `{"method": "DeepWalk"}` is a complete configuration.
        #[derive(Debug, Clone, PartialEq)]
        pub enum MethodConfig {
            $(
                #[doc = concat!("Parameters of the `", $tag, "` method.")]
                $variant {
                    $(
                        #[doc = concat!("The method's `", stringify!($field), "` parameter.")]
                        $field: $ty,
                    )*
                },
            )*
        }

        impl MethodConfig {
            /// The method's registry name — the value of the serialized
            /// `method` tag.
            pub fn method_name(&self) -> &'static str {
                match self {
                    $( MethodConfig::$variant { .. } => $tag, )*
                }
            }

            /// Every method name, in the paper's roster order.
            pub fn method_names() -> &'static [&'static str] {
                &[$($tag),*]
            }

            /// The paper-default configuration for `name` (case-sensitive),
            /// or `None` if the name is unknown.
            pub fn default_for(name: &str) -> Option<MethodConfig> {
                match name {
                    $( $tag => Some(MethodConfig::$variant { $( $field: $default, )* }), )*
                    _ => None,
                }
            }

            /// The RNG seed of any variant.
            pub fn seed(&self) -> u64 {
                match self {
                    $( MethodConfig::$variant { seed, .. } => *seed, )*
                }
            }

            /// Sets the RNG seed of any variant.
            pub fn set_seed(&mut self, value: u64) {
                match self {
                    $( MethodConfig::$variant { seed, .. } => *seed = value, )*
                }
            }

            /// The per-node embedding budget `k` of any variant.
            pub fn dimension(&self) -> usize {
                match self {
                    $( MethodConfig::$variant { dimension, .. } => *dimension, )*
                }
            }

            /// Sets the per-node embedding budget `k` of any variant.
            pub fn set_dimension(&mut self, value: usize) {
                match self {
                    $( MethodConfig::$variant { dimension, .. } => *dimension = value, )*
                }
            }

            fn from_object(
                tag: &str,
                object: &serde::Map,
            ) -> std::result::Result<MethodConfig, serde::Error> {
                match tag {
                    $( $tag => {
                        // Reject unknown keys: in a declarative experiment
                        // file a misspelled hyper-parameter must fail loudly,
                        // not silently run with the paper default.
                        const FIELDS: &[&str] = &[$(stringify!($field)),*];
                        for (key, _) in object.iter() {
                            if key != "method" && !FIELDS.contains(&key) {
                                return Err(serde::Error::custom(format!(
                                    "unknown field `{key}` for method `{}` (expected one of: {})",
                                    $tag,
                                    FIELDS.join(", ")
                                )));
                            }
                        }
                        Ok(MethodConfig::$variant {
                            $( $field: match object.get(stringify!($field)) {
                                Some(value) => serde::Deserialize::from_value(value).map_err(|e| {
                                    serde::Error::custom(format!(
                                        "{}.{}: {}",
                                        $tag,
                                        stringify!($field),
                                        e
                                    ))
                                })?,
                                None => $default,
                            }, )*
                        })
                    } )*
                    other => Err(serde::Error::custom(format!(
                        "unknown method `{other}` (known methods: {})",
                        MethodConfig::method_names().join(", ")
                    ))),
                }
            }
        }

        impl serde::Serialize for MethodConfig {
            fn to_value(&self) -> serde::Value {
                match self {
                    $( MethodConfig::$variant { $( $field, )* } => {
                        let mut object = serde::Map::new();
                        object.insert("method", serde::Value::String($tag.to_owned()));
                        $( object.insert(stringify!($field), serde::Serialize::to_value($field)); )*
                        serde::Value::Object(object)
                    } )*
                }
            }
        }

        impl serde::Deserialize for MethodConfig {
            fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
                let object = value.as_object().ok_or_else(|| {
                    serde::Error::custom(format!(
                        "expected a method-config object, got {}",
                        value.kind()
                    ))
                })?;
                let tag = object
                    .get("method")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| serde::Error::custom("missing `method` tag"))?;
                MethodConfig::from_object(tag, object)
            }
        }
    };
}

method_configs! {
    "NRP" => Nrp {
        dimension: usize = 128,
        alpha: f64 = 0.15,
        num_hops: usize = 20,
        reweight_epochs: usize = 10,
        epsilon: f64 = 0.2,
        lambda: f64 = 10.0,
        svd_method: RandomizedSvdMethod = RandomizedSvdMethod::BlockKrylov,
        exact_b1: bool = false,
        dangling: DanglingPolicy = DanglingPolicy::SelfLoop,
        seed: u64 = 0,
    }
    "ApproxPPR" => ApproxPpr {
        dimension: usize = 128,
        alpha: f64 = 0.15,
        num_hops: usize = 20,
        epsilon: f64 = 0.2,
        svd_method: RandomizedSvdMethod = RandomizedSvdMethod::BlockKrylov,
        dangling: DanglingPolicy = DanglingPolicy::SelfLoop,
        seed: u64 = 0,
    }
    "STRAP" => Strap {
        dimension: usize = 128,
        alpha: f64 = 0.15,
        delta: f64 = 1e-4,
        iterations: usize = 6,
        dangling: DanglingPolicy = DanglingPolicy::SelfLoop,
        seed: u64 = 0,
    }
    "AROPE" => Arope {
        dimension: usize = 128,
        order_weights: Vec<f64> = vec![1.0, 0.1, 0.01],
        oversample: usize = 8,
        iterations: usize = 8,
        seed: u64 = 0,
    }
    "RandNE" => RandNe {
        dimension: usize = 128,
        order_weights: Vec<f64> = vec![1.0, 1e2, 1e4, 1e5],
        seed: u64 = 0,
    }
    "Spectral" => Spectral {
        dimension: usize = 128,
        oversample: usize = 8,
        iterations: usize = 8,
        seed: u64 = 0,
    }
    "DeepWalk" => DeepWalk {
        dimension: usize = 128,
        walks_per_node: usize = 10,
        walk_length: usize = 40,
        window: usize = 5,
        epochs: usize = 2,
        negatives: usize = 5,
        learning_rate: f64 = 0.05,
        seed: u64 = 0,
    }
    "node2vec" => Node2Vec {
        dimension: usize = 128,
        p: f64 = 1.0,
        q: f64 = 1.0,
        walks_per_node: usize = 10,
        walk_length: usize = 40,
        window: usize = 5,
        epochs: usize = 2,
        negatives: usize = 5,
        learning_rate: f64 = 0.05,
        seed: u64 = 0,
    }
    "LINE" => Line {
        dimension: usize = 128,
        samples: usize = 200_000,
        negatives: usize = 5,
        learning_rate: f64 = 0.05,
        seed: u64 = 0,
    }
    "VERSE" => Verse {
        dimension: usize = 128,
        alpha: f64 = 0.15,
        samples_per_node: usize = 40,
        epochs: usize = 3,
        negatives: usize = 3,
        learning_rate: f64 = 0.05,
        seed: u64 = 0,
    }
    "APP" => App {
        dimension: usize = 128,
        alpha: f64 = 0.15,
        samples_per_node: usize = 80,
        epochs: usize = 5,
        negatives: usize = 5,
        learning_rate: f64 = 0.15,
        seed: u64 = 0,
    }
}

impl MethodConfig {
    /// The paper-default configuration of every method, in roster order
    /// (NRP and ApproxPPR first, then one method per competitor family).
    pub fn all_defaults() -> Vec<MethodConfig> {
        Self::method_names()
            .iter()
            .map(|name| Self::default_for(name).expect("method_names entries are known"))
            .collect()
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| NrpError::Serialization(e.to_string()))
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json_pretty(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| NrpError::Serialization(e.to_string()))
    }

    /// Parses a JSON document (missing fields take paper defaults).
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| NrpError::Serialization(e.to_string()))
    }

    /// Renders the configuration as a flat TOML table.
    ///
    /// Every config is a flat set of scalar (or float-array) keys, so the
    /// rendered document is a sequence of `key = value` lines starting with
    /// `method = "..."`.
    pub fn to_toml(&self) -> String {
        let value = serde::Serialize::to_value(self);
        let object = value.as_object().expect("configs serialize to objects");
        let mut out = String::new();
        for (key, field) in object.iter() {
            out.push_str(key);
            out.push_str(" = ");
            write_toml_value(&mut out, field);
            out.push('\n');
        }
        out
    }

    /// Parses the flat TOML form produced by [`MethodConfig::to_toml`]
    /// (comments with `#` and blank lines are allowed; missing fields take
    /// paper defaults).
    pub fn from_toml(text: &str) -> Result<Self> {
        let object = flat_toml_to_value(text)?;
        serde::Deserialize::from_value(&object).map_err(|e| NrpError::Serialization(e.to_string()))
    }

    /// Builds the configured embedder through the method registry.
    pub fn build(&self) -> Result<Box<dyn Embedder>> {
        let name = self.method_name();
        // Bind the guard and drop it before invoking the builder (or the
        // error path, which re-locks via `registered_methods`): only the
        // map lookup itself happens under `REGISTRY`.
        let map = registry().lock().expect("method registry poisoned");
        let builder = map.get(name).copied();
        drop(map);
        match builder {
            Some(builder) => builder(self),
            None => Err(NrpError::UnknownMethod(format!(
                "`{name}` is not registered (registered: {}); baseline methods join the \
                 registry via `nrp_baselines::register_baselines()` or `nrp::init()`",
                registered_methods().join(", ")
            ))),
        }
    }
}

/// Parses a flat TOML table (`key = value` lines with scalar or array
/// values; `#` comments and blank lines allowed) into a
/// [`serde::Value::Object`].  This is the grammar [`MethodConfig::from_toml`]
/// accepts; it is public so downstream crates (the bench sweep loader)
/// can parse sweep-level TOML sections with the same rules.
pub fn flat_toml_to_value(text: &str) -> Result<serde::Value> {
    let mut object = serde::Map::new();
    for (line_no, raw_line) in text.lines().enumerate() {
        let line = strip_toml_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let (key, value_text) = line.split_once('=').ok_or_else(|| {
            NrpError::Serialization(format!("TOML line {}: expected `key = value`", line_no + 1))
        })?;
        let value = parse_toml_value(value_text.trim())
            .map_err(|e| NrpError::Serialization(format!("TOML line {}: {e}", line_no + 1)))?;
        object.insert(key.trim(), value);
    }
    Ok(serde::Value::Object(object))
}

fn write_toml_value(out: &mut String, value: &serde::Value) {
    match value {
        serde::Value::Bool(true) => out.push_str("true"),
        serde::Value::Bool(false) => out.push_str("false"),
        serde::Value::Number(n) => {
            let rendered = n.to_string();
            out.push_str(&rendered);
            // TOML distinguishes integer and float types; keep floats floats.
            if matches!(n, serde::Number::Float(_)) && !rendered.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        serde::Value::String(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        serde::Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_toml_value(out, item);
            }
            out.push(']');
        }
        serde::Value::Null | serde::Value::Object(_) => {
            unreachable!("method configs are flat scalar/array tables")
        }
    }
}

/// Removes a trailing `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_toml_value(text: &str) -> std::result::Result<serde::Value, String> {
    if text == "true" {
        return Ok(serde::Value::Bool(true));
    }
    if text == "false" {
        return Ok(serde::Value::Bool(false));
    }
    if let Some(stripped) = text.strip_prefix('"') {
        let body = stripped.strip_suffix('"').ok_or("unterminated string")?;
        let mut s = String::new();
        let mut escape = false;
        for c in body.chars() {
            if escape {
                s.push(c);
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else {
                s.push(c);
            }
        }
        return Ok(serde::Value::String(s));
    }
    if let Some(stripped) = text.strip_prefix('[') {
        let body = stripped.strip_suffix(']').ok_or("unterminated array")?;
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_toml_value(part)?);
        }
        return Ok(serde::Value::Array(items));
    }
    // TOML permits underscores in numbers.
    let numeric: String = text.chars().filter(|&c| c != '_').collect();
    if !numeric.contains(['.', 'e', 'E']) {
        if let Ok(v) = numeric.parse::<u64>() {
            return Ok(serde::Value::Number(serde::Number::PosInt(v)));
        }
        if let Ok(v) = numeric.parse::<i64>() {
            return Ok(serde::Value::Number(serde::Number::NegInt(v)));
        }
    }
    numeric
        .parse::<f64>()
        .map(|v| serde::Value::Number(serde::Number::Float(v)))
        .map_err(|_| format!("invalid value `{text}`"))
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A function that builds an embedder from its configuration.
pub type MethodBuilder = fn(&MethodConfig) -> Result<Box<dyn Embedder>>;

static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, MethodBuilder>>> = OnceLock::new();

fn registry() -> &'static Mutex<BTreeMap<&'static str, MethodBuilder>> {
    REGISTRY.get_or_init(|| {
        let mut map: BTreeMap<&'static str, MethodBuilder> = BTreeMap::new();
        map.insert("NRP", build_nrp);
        map.insert("ApproxPPR", build_approx_ppr);
        Mutex::new(map)
    })
}

/// Registers (or replaces) the builder for a method name.  Idempotent.
pub fn register_method(name: &'static str, builder: MethodBuilder) {
    registry()
        .lock()
        .expect("method registry poisoned")
        .insert(name, builder);
}

/// The names currently resolvable by [`MethodConfig::build`], sorted.
pub fn registered_methods() -> Vec<&'static str> {
    registry()
        .lock()
        .expect("method registry poisoned")
        .keys()
        .copied()
        .collect()
}

fn build_nrp(config: &MethodConfig) -> Result<Box<dyn Embedder>> {
    match config {
        MethodConfig::Nrp {
            dimension,
            alpha,
            num_hops,
            reweight_epochs,
            epsilon,
            lambda,
            svd_method,
            exact_b1,
            dangling,
            seed,
        } => {
            let params = NrpParams {
                dimension: *dimension,
                alpha: *alpha,
                num_hops: *num_hops,
                reweight_epochs: *reweight_epochs,
                epsilon: *epsilon,
                lambda: *lambda,
                svd_method: *svd_method,
                exact_b1: *exact_b1,
                dangling: *dangling,
                seed: *seed,
            };
            params.validate()?;
            Ok(Box::new(Nrp::new(params)))
        }
        other => Err(NrpError::InvalidParameter(format!(
            "NRP builder received a `{}` config",
            other.method_name()
        ))),
    }
}

fn build_approx_ppr(config: &MethodConfig) -> Result<Box<dyn Embedder>> {
    match config {
        MethodConfig::ApproxPpr {
            dimension,
            alpha,
            num_hops,
            epsilon,
            svd_method,
            dangling,
            seed,
        } => {
            // Reject rather than round: silently mapping e.g. dimension 0 or
            // 9 to a different half-dimension would make the echoed config
            // disagree with the request.
            if *dimension < 2 || !dimension.is_multiple_of(2) {
                return Err(NrpError::InvalidParameter(format!(
                    "ApproxPPR dimension must be an even number >= 2 (got {dimension})"
                )));
            }
            let params = ApproxPprParams {
                half_dimension: *dimension / 2,
                alpha: *alpha,
                num_hops: *num_hops,
                epsilon: *epsilon,
                svd_method: *svd_method,
                dangling: *dangling,
                seed: *seed,
            };
            params.validate()?;
            Ok(Box::new(ApproxPpr::new(params)))
        }
        other => Err(NrpError::InvalidParameter(format!(
            "ApproxPPR builder received a `{}` config",
            other.method_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_methods_in_roster_order() {
        let names = MethodConfig::method_names();
        assert_eq!(names.len(), 11);
        assert_eq!(names[0], "NRP");
        assert_eq!(names[1], "ApproxPPR");
        assert_eq!(MethodConfig::all_defaults().len(), 11);
        for (config, &name) in MethodConfig::all_defaults().iter().zip(names) {
            assert_eq!(config.method_name(), name);
            assert_eq!(config.dimension(), 128, "{name} paper default k");
            assert_eq!(config.seed(), 0, "{name} default seed");
        }
    }

    #[test]
    fn json_round_trip_preserves_every_default() {
        for config in MethodConfig::all_defaults() {
            let json = config.to_json().unwrap();
            let back = MethodConfig::from_json(&json).unwrap();
            assert_eq!(back, config, "{}", config.method_name());
        }
    }

    #[test]
    fn missing_fields_take_paper_defaults() {
        let config = MethodConfig::from_json(r#"{"method": "NRP", "dimension": 16}"#).unwrap();
        let MethodConfig::Nrp {
            dimension,
            alpha,
            num_hops,
            lambda,
            ..
        } = config
        else {
            panic!("expected an NRP config");
        };
        assert_eq!(dimension, 16);
        assert_eq!(alpha, 0.15);
        assert_eq!(num_hops, 20);
        assert_eq!(lambda, 10.0);
        // A bare tag is a complete config.
        let bare = MethodConfig::from_json(r#"{"method": "VERSE"}"#).unwrap();
        assert_eq!(bare, MethodConfig::default_for("VERSE").unwrap());
    }

    #[test]
    fn unknown_method_and_bad_fields_are_rejected() {
        assert!(MethodConfig::from_json(r#"{"method": "GCN"}"#).is_err());
        assert!(MethodConfig::from_json(r#"{"dimension": 16}"#).is_err());
        let err = MethodConfig::from_json(r#"{"method": "NRP", "alpha": "high"}"#).unwrap_err();
        assert!(err.to_string().contains("alpha"), "{err}");
        assert!(
            MethodConfig::from_json(r#"{"method": "NRP", "svd_method": "power-method"}"#).is_err()
        );
    }

    #[test]
    fn misspelled_fields_are_rejected_not_defaulted() {
        let err = MethodConfig::from_json(r#"{"method": "NRP", "dimention": 16}"#).unwrap_err();
        assert!(err.to_string().contains("dimention"), "{err}");
        assert!(
            err.to_string().contains("dimension"),
            "should list valid fields: {err}"
        );
        // A field that exists on another method is still unknown here.
        assert!(MethodConfig::from_json(r#"{"method": "LINE", "alpha": 0.2}"#).is_err());
        // Same strictness through the TOML path.
        assert!(MethodConfig::from_toml("method = \"NRP\"\nepislon = 0.05\n").is_err());
    }

    #[test]
    fn approx_ppr_rejects_zero_and_odd_dimensions() {
        for bad in [0usize, 1, 9] {
            let mut config = MethodConfig::default_for("ApproxPPR").unwrap();
            config.set_dimension(bad);
            assert!(config.build().is_err(), "dimension {bad} must be rejected");
        }
        // Even dimensions still build, and the echo matches the request.
        let mut config = MethodConfig::default_for("ApproxPPR").unwrap();
        config.set_dimension(10);
        let embedder = config.build().unwrap();
        assert_eq!(embedder.config(), config);
    }

    #[test]
    fn seed_and_dimension_accessors_cover_every_variant() {
        for mut config in MethodConfig::all_defaults() {
            config.set_seed(42);
            config.set_dimension(64);
            assert_eq!(config.seed(), 42, "{}", config.method_name());
            assert_eq!(config.dimension(), 64, "{}", config.method_name());
        }
    }

    #[test]
    fn toml_round_trip_preserves_every_default() {
        for config in MethodConfig::all_defaults() {
            let toml = config.to_toml();
            assert!(toml.starts_with("method = \""), "{toml}");
            let back = MethodConfig::from_toml(&toml).unwrap();
            assert_eq!(back, config, "{}", config.method_name());
        }
    }

    #[test]
    fn toml_accepts_comments_and_defaults() {
        let config = MethodConfig::from_toml(
            "# an experiment\nmethod = \"AROPE\"\ndimension = 32 # override\n\norder_weights = [1.0, 0.5]\n",
        )
        .unwrap();
        let MethodConfig::Arope {
            dimension,
            order_weights,
            oversample,
            ..
        } = config
        else {
            panic!("expected an AROPE config");
        };
        assert_eq!(dimension, 32);
        assert_eq!(order_weights, vec![1.0, 0.5]);
        assert_eq!(oversample, 8);
        assert!(MethodConfig::from_toml("method \"NRP\"").is_err());
    }

    #[test]
    fn strap_dangling_policy_parses_and_round_trips() {
        // STRAP's dangling knob reaches its forward pushes (the embedder
        // echo is covered by the baselines crate, which owns the builder).
        let parsed =
            MethodConfig::from_json(r#"{"method": "STRAP", "dangling": "teleport"}"#).unwrap();
        assert!(matches!(
            parsed,
            MethodConfig::Strap {
                dangling: DanglingPolicy::Teleport,
                ..
            }
        ));
        let json = parsed.to_json().unwrap();
        assert_eq!(MethodConfig::from_json(&json).unwrap(), parsed);
        let toml = parsed.to_toml();
        assert_eq!(MethodConfig::from_toml(&toml).unwrap(), parsed);
        assert!(MethodConfig::from_json(r#"{"method": "STRAP", "dangling": "nope"}"#).is_err());
    }

    #[test]
    fn dangling_policy_round_trips_through_json_and_toml() {
        for name in ["NRP", "ApproxPPR"] {
            for policy in [
                DanglingPolicy::SelfLoop,
                DanglingPolicy::ZeroRow,
                DanglingPolicy::Teleport,
            ] {
                let mut config = MethodConfig::default_for(name).unwrap();
                match &mut config {
                    MethodConfig::Nrp { dangling, .. }
                    | MethodConfig::ApproxPpr { dangling, .. } => *dangling = policy,
                    _ => unreachable!(),
                }
                let json = config.to_json().unwrap();
                assert!(json.contains(policy.as_str()), "{json}");
                assert_eq!(MethodConfig::from_json(&json).unwrap(), config);
                let toml = config.to_toml();
                assert!(toml.contains(policy.as_str()), "{toml}");
                assert_eq!(MethodConfig::from_toml(&toml).unwrap(), config);
                // The built embedder echoes the policy back.
                let embedder = config.build().unwrap();
                assert_eq!(embedder.config(), config, "{name} {policy:?}");
            }
        }
        // Documents parse the policy by name, and bad names fail loudly.
        let parsed =
            MethodConfig::from_json(r#"{"method": "NRP", "dangling": "teleport"}"#).unwrap();
        assert!(matches!(
            parsed,
            MethodConfig::Nrp {
                dangling: DanglingPolicy::Teleport,
                ..
            }
        ));
        assert!(MethodConfig::from_json(r#"{"method": "NRP", "dangling": "uniform"}"#).is_err());
    }

    #[test]
    fn core_methods_build_without_registration() {
        for name in ["NRP", "ApproxPPR"] {
            let embedder = MethodConfig::default_for(name).unwrap().build().unwrap();
            assert_eq!(embedder.name(), name);
        }
    }

    #[test]
    fn invalid_core_config_fails_to_build() {
        let mut config = MethodConfig::default_for("NRP").unwrap();
        if let MethodConfig::Nrp { alpha, .. } = &mut config {
            *alpha = 2.0;
        }
        assert!(config.build().is_err());
    }

    #[test]
    fn unregistered_method_reports_entry_point() {
        // Registration is process-global, so pick a baseline name that core's
        // own test binary never registers.
        let Err(err) = MethodConfig::default_for("DeepWalk").unwrap().build() else {
            panic!("DeepWalk must not build without registration");
        };
        assert!(matches!(err, NrpError::UnknownMethod(_)));
        assert!(err.to_string().contains("register_baselines"), "{err}");
    }

    #[test]
    fn registry_lists_core_methods() {
        let names = registered_methods();
        assert!(names.contains(&"NRP"));
        assert!(names.contains(&"ApproxPPR"));
    }
}
