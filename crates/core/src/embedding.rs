//! The [`Embedding`] container and the [`Embedder`] trait implemented by
//! every embedding method in the workspace (NRP, ApproxPPR and all
//! baselines).

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use nrp_graph::{Graph, NodeId};
use nrp_linalg::DenseMatrix;

use crate::context::{EmbedContext, EmbedOutput};
use crate::{NrpError, Result};

/// A set of node embeddings.
///
/// Following the paper (Section 3.1), every node `v` owns a **forward**
/// vector `X_v` and a **backward** vector `Y_v`, each of length `k/2`, so
/// that the directed proximity from `u` to `v` is scored as `X_u · Y_v`.
/// Methods that natively produce a single vector per node (DeepWalk, VERSE,
/// …) store it as both the forward and backward block, which reduces the
/// inner-product score to the usual symmetric similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    forward: DenseMatrix,
    backward: DenseMatrix,
    method: String,
}

impl Embedding {
    /// Wraps forward/backward matrices produced by an embedder.
    ///
    /// Both must have the same shape (`n x k/2`).
    pub fn new(
        forward: DenseMatrix,
        backward: DenseMatrix,
        method: impl Into<String>,
    ) -> Result<Self> {
        if forward.shape() != backward.shape() {
            return Err(NrpError::InvalidParameter(format!(
                "forward shape {:?} != backward shape {:?}",
                forward.shape(),
                backward.shape()
            )));
        }
        Ok(Self {
            forward,
            backward,
            method: method.into(),
        })
    }

    /// Builds a "symmetric" embedding where forward and backward blocks are
    /// the same single vector per node.
    pub fn symmetric(vectors: DenseMatrix, method: impl Into<String>) -> Self {
        Self {
            backward: vectors.clone(),
            forward: vectors,
            method: method.into(),
        }
    }

    /// Number of embedded nodes.
    pub fn num_nodes(&self) -> usize {
        self.forward.rows()
    }

    /// The per-side dimensionality `k/2`.
    pub fn half_dimension(&self) -> usize {
        self.forward.cols()
    }

    /// The total per-node space budget `k` (forward + backward).
    pub fn dimension(&self) -> usize {
        2 * self.forward.cols()
    }

    /// Name of the method that produced this embedding.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// The forward embedding matrix `X` (`n x k/2`).
    pub fn forward(&self) -> &DenseMatrix {
        &self.forward
    }

    /// The backward embedding matrix `Y` (`n x k/2`).
    pub fn backward(&self) -> &DenseMatrix {
        &self.backward
    }

    /// Forward vector of node `u`.
    pub fn forward_vector(&self, u: NodeId) -> &[f64] {
        self.forward.row(u as usize)
    }

    /// Backward vector of node `v`.
    pub fn backward_vector(&self, v: NodeId) -> &[f64] {
        self.backward.row(v as usize)
    }

    /// Directed proximity score `X_u · Y_v` — the quantity that approximates
    /// `π(u, v)` (ApproxPPR) or `w⃗_u π(u, v) w⃖_v` (NRP).
    pub fn score(&self, u: NodeId, v: NodeId) -> f64 {
        nrp_linalg::matrix::dot(self.forward_vector(u), self.backward_vector(v))
    }

    /// Symmetric score `X_u·Y_v + X_v·Y_u`, useful on undirected graphs.
    pub fn symmetric_score(&self, u: NodeId, v: NodeId) -> f64 {
        self.score(u, v) + self.score(v, u)
    }

    /// Per-node feature vector for node classification: the L2-normalized
    /// forward vector concatenated with the L2-normalized backward vector,
    /// exactly the representation the paper feeds to the one-vs-rest
    /// classifier (Section 5.4).
    pub fn classification_features(&self, u: NodeId) -> Vec<f64> {
        let mut features = Vec::with_capacity(self.dimension());
        features.extend_from_slice(&normalized(self.forward_vector(u)));
        features.extend_from_slice(&normalized(self.backward_vector(u)));
        features
    }

    /// True if every stored value is finite.
    pub fn is_finite(&self) -> bool {
        self.forward.is_finite() && self.backward.is_finite()
    }

    /// Serializes the embedding to JSON.
    pub fn to_json(&self) -> Result<String> {
        let serializable = SerializableEmbedding {
            method: self.method.clone(),
            num_nodes: self.num_nodes(),
            half_dimension: self.half_dimension(),
            forward: self.forward.data().to_vec(),
            backward: self.backward.data().to_vec(),
        };
        serde_json::to_string(&serializable).map_err(|e| NrpError::Serialization(e.to_string()))
    }

    /// Deserializes an embedding from JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        let raw: SerializableEmbedding =
            serde_json::from_str(json).map_err(|e| NrpError::Serialization(e.to_string()))?;
        let forward = DenseMatrix::from_vec(raw.num_nodes, raw.half_dimension, raw.forward)
            .map_err(NrpError::Linalg)?;
        let backward = DenseMatrix::from_vec(raw.num_nodes, raw.half_dimension, raw.backward)
            .map_err(NrpError::Linalg)?;
        Embedding::new(forward, backward, raw.method)
    }

    /// Writes the embedding to a file as JSON.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let file = std::fs::File::create(path)?;
        let mut writer = BufWriter::new(file);
        writer.write_all(self.to_json()?.as_bytes())?;
        writer.flush()?;
        Ok(())
    }

    /// Reads an embedding previously written by [`Embedding::save`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        let mut reader = BufReader::new(file);
        let mut json = String::new();
        reader.read_to_string(&mut json)?;
        Self::from_json(&json)
    }
}

fn normalized(v: &[f64]) -> Vec<f64> {
    let norm = nrp_linalg::matrix::norm2(v);
    if norm > 0.0 {
        v.iter().map(|x| x / norm).collect()
    } else {
        v.to_vec()
    }
}

struct SerializableEmbedding {
    method: String,
    num_nodes: usize,
    half_dimension: usize,
    forward: Vec<f64>,
    backward: Vec<f64>,
}

serde::impl_struct_serde!(SerializableEmbedding {
    method,
    num_nodes,
    half_dimension,
    forward,
    backward
});

/// A method that maps a graph to node embeddings (interface v2).
///
/// Every method in the workspace — NRP, ApproxPPR and the nine baselines —
/// implements this trait, so evaluation tasks and benchmark harnesses drive
/// them uniformly.  A run takes an [`EmbedContext`] (seed override, thread
/// budget, cancellation flag) and returns an [`EmbedOutput`] (the
/// [`Embedding`] plus per-stage wall-clock timings and the effective
/// parameters echoed as a [`MethodConfig`](crate::config::MethodConfig)).
///
/// Callers that only need the vectors under default execution settings can
/// use the provided [`Embedder::embed_default`].
pub trait Embedder {
    /// Human-readable method name (used in benchmark tables and as the
    /// registry key of the method's `MethodConfig` variant).
    fn name(&self) -> &'static str;

    /// The configured parameters as declarative data.
    fn config(&self) -> crate::config::MethodConfig;

    /// Computes embeddings for every node of `graph` under `ctx`.
    fn embed(&self, graph: &Graph, ctx: &EmbedContext) -> Result<EmbedOutput>;

    /// Convenience wrapper: runs [`Embedder::embed`] with a default context
    /// and returns just the embedding.
    fn embed_default(&self, graph: &Graph) -> Result<Embedding> {
        Ok(self
            .embed(graph, &EmbedContext::default())?
            .into_embedding())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Embedding {
        let forward = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]).unwrap();
        let backward = DenseMatrix::from_rows(&[&[0.5, 0.5], &[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        Embedding::new(forward, backward, "test").unwrap()
    }

    #[test]
    fn dimensions() {
        let e = sample();
        assert_eq!(e.num_nodes(), 3);
        assert_eq!(e.half_dimension(), 2);
        assert_eq!(e.dimension(), 4);
        assert_eq!(e.method(), "test");
    }

    #[test]
    fn score_is_forward_backward_inner_product() {
        let e = sample();
        assert_eq!(e.score(0, 1), 1.0);
        assert_eq!(e.score(1, 0), 1.0);
        assert_eq!(e.score(0, 2), 0.0);
        assert_eq!(e.symmetric_score(0, 2), e.score(0, 2) + e.score(2, 0));
    }

    #[test]
    fn directed_scores_are_asymmetric() {
        let e = sample();
        assert_ne!(e.score(1, 2), e.score(2, 1));
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let forward = DenseMatrix::zeros(3, 2);
        let backward = DenseMatrix::zeros(3, 3);
        assert!(Embedding::new(forward, backward, "bad").is_err());
    }

    #[test]
    fn symmetric_embedding_scores_symmetrically() {
        let vectors = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let e = Embedding::symmetric(vectors, "sym");
        assert_eq!(e.score(0, 1), e.score(1, 0));
    }

    #[test]
    fn classification_features_are_normalized_concatenation() {
        let e = sample();
        let f = e.classification_features(1);
        assert_eq!(f.len(), 4);
        let forward_norm: f64 = f[..2].iter().map(|x| x * x).sum::<f64>().sqrt();
        let backward_norm: f64 = f[2..].iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((forward_norm - 1.0).abs() < 1e-12);
        assert!((backward_norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_features_stay_zero() {
        let forward = DenseMatrix::zeros(2, 2);
        let backward = DenseMatrix::zeros(2, 2);
        let e = Embedding::new(forward, backward, "zero").unwrap();
        assert_eq!(e.classification_features(0), vec![0.0; 4]);
    }

    #[test]
    fn json_round_trip() {
        let e = sample();
        let json = e.to_json().unwrap();
        let back = Embedding::from_json(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn file_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("embedding.json");
        let e = sample();
        e.save(&path).unwrap();
        let back = Embedding::load(&path).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn corrupted_json_is_rejected() {
        assert!(Embedding::from_json("{not json").is_err());
    }

    #[test]
    fn finiteness_check() {
        let e = sample();
        assert!(e.is_finite());
        let mut forward = DenseMatrix::zeros(1, 1);
        forward.set(0, 0, f64::NAN);
        let bad = Embedding::new(forward, DenseMatrix::zeros(1, 1), "nan").unwrap();
        assert!(!bad.is_finite());
    }
}
