//! Node reweighting by coordinate descent (paper Section 4, Algorithms 2 & 4).
//!
//! Given the ApproxPPR factors `X`, `Y`, NRP learns a forward weight `w⃗_u`
//! and a backward weight `w⃖_v` per node so that, summed over the other
//! nodes, the reweighted proximities `w⃗_u (X_u·Y_v) w⃖_v` match each node's
//! out-degree (as a source) and in-degree (as a destination) — objective (6).
//!
//! Each coordinate update has a closed form (Eq. 8 / Eq. 23) whose terms
//! `a₁, a₂, a₃, b₁, b₂` would cost `O(n²k'²)` if evaluated naively.  The
//! accelerated scheme of Section 4.3 precomputes the aggregates
//! `ξ, χ, ρ₁, ρ₂, Λ, φ` once per epoch and updates `ρ₁, ρ₂` incrementally
//! after every weight change, bringing an epoch down to `O(nk'²)`.
//!
//! Both the paper's approximate `b₁` (Eq. 14) and the exact `b₁` (computable
//! from the same `Λ` aggregate at identical cost) are implemented; the choice
//! is an ablation knob in [`ReweightConfig`].

use nrp_graph::Graph;
use nrp_linalg::DenseMatrix;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::context::EmbedContext;
use crate::{NrpError, Result};

/// Configuration of the coordinate-descent reweighting.
#[derive(Debug, Clone)]
pub struct ReweightConfig {
    /// Number of epochs `ℓ2`; each epoch updates every backward weight once
    /// and then every forward weight once.
    pub epochs: usize,
    /// Ridge regularization `λ` of objective (6).
    pub lambda: f64,
    /// Use the exact `b₁` term instead of the paper's AM–GM approximation
    /// (Eq. 14).  Same asymptotic cost; kept as an ablation switch.
    pub exact_b1: bool,
    /// Seed controlling the random update order within an epoch.
    pub seed: u64,
}

impl Default for ReweightConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            lambda: 10.0,
            exact_b1: false,
            seed: 0,
        }
    }
}

/// Learned node weights.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeWeights {
    /// Forward weights `w⃗`, one per node.
    pub forward: Vec<f64>,
    /// Backward weights `w⃖`, one per node.
    pub backward: Vec<f64>,
}

impl NodeWeights {
    /// The paper's initialization: `w⃗_v = dout(v)`, `w⃖_v = 1`.
    pub fn initialize(graph: &Graph) -> Self {
        let forward = (0..graph.num_nodes())
            .map(|u| graph.out_degree(u as u32) as f64)
            .collect();
        let backward = vec![1.0; graph.num_nodes()];
        Self { forward, backward }
    }
}

/// Shared aggregates of one reweighting pass.
struct Aggregates {
    /// `ξ` — degree-weighted sum of the *other side*'s rows.
    xi: Vec<f64>,
    /// `χ` — weight-weighted sum of the other side's rows.
    chi: Vec<f64>,
    /// `Λ` — weighted Gram matrix of the other side's rows.
    lambda_mat: DenseMatrix,
    /// `ρ₁` — weighted sum of this side's rows (incrementally maintained).
    rho1: Vec<f64>,
    /// `ρ₂` — see Eq. (10)/(25) (incrementally maintained).
    rho2: Vec<f64>,
    /// `φ` — per-coordinate weighted second moments of the other side.
    phi: Vec<f64>,
}

/// Runs `config.epochs` epochs of coordinate descent and returns the learned
/// weights. `x` and `y` are the (unweighted) ApproxPPR factors.
pub fn learn_weights(
    graph: &Graph,
    x: &DenseMatrix,
    y: &DenseMatrix,
    config: &ReweightConfig,
) -> Result<NodeWeights> {
    learn_weights_with(graph, x, y, config, &EmbedContext::default())
}

/// [`learn_weights`] under an explicit execution context: cancellation is
/// honoured between epochs (each epoch is `O(nk'²)`, so that is the natural
/// responsiveness granularity).  Under
/// [`EmbedContext::with_partial_results`] a raised cancel flag stops the
/// coordinate descent after the current epoch and returns the weights
/// learned so far instead of erroring.
pub fn learn_weights_with(
    graph: &Graph,
    x: &DenseMatrix,
    y: &DenseMatrix,
    config: &ReweightConfig,
    ctx: &EmbedContext,
) -> Result<NodeWeights> {
    validate(graph, x, y)?;
    let mut weights = NodeWeights::initialize(graph);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    for epoch in 0..config.epochs {
        if ctx.should_stop_early() {
            break;
        }
        ctx.ensure_active()?;
        update_backward_weights(graph, x, y, &mut weights, config, &mut rng)
            .map_err(|e| annotate(e, epoch))?;
        update_forward_weights(graph, x, y, &mut weights, config, &mut rng)
            .map_err(|e| annotate(e, epoch))?;
    }
    Ok(weights)
}

fn annotate(err: NrpError, epoch: usize) -> NrpError {
    match err {
        NrpError::InvalidParameter(msg) => {
            NrpError::InvalidParameter(format!("epoch {epoch}: {msg}"))
        }
        other => other,
    }
}

fn validate(graph: &Graph, x: &DenseMatrix, y: &DenseMatrix) -> Result<()> {
    let n = graph.num_nodes();
    if x.rows() != n || y.rows() != n {
        return Err(NrpError::InvalidParameter(format!(
            "embedding rows ({}, {}) do not match node count {n}",
            x.rows(),
            y.rows()
        )));
    }
    if x.cols() != y.cols() {
        return Err(NrpError::InvalidParameter(format!(
            "X has {} columns but Y has {}",
            x.cols(),
            y.cols()
        )));
    }
    if x.cols() == 0 {
        return Err(NrpError::InvalidParameter(
            "embeddings must have at least one column".into(),
        ));
    }
    Ok(())
}

/// One pass of Algorithm 2: updates every backward weight once, in random order.
pub fn update_backward_weights(
    graph: &Graph,
    x: &DenseMatrix,
    y: &DenseMatrix,
    weights: &mut NodeWeights,
    config: &ReweightConfig,
    rng: &mut ChaCha8Rng,
) -> Result<()> {
    validate(graph, x, y)?;
    let n = graph.num_nodes();
    let k = x.cols();
    let fwd = &weights.forward;
    // Aggregates over the *forward* side (independent of backward weights).
    let mut agg = Aggregates {
        xi: vec![0.0; k],
        chi: vec![0.0; k],
        lambda_mat: DenseMatrix::zeros(k, k),
        rho1: vec![0.0; k],
        rho2: vec![0.0; k],
        phi: vec![0.0; k],
    };
    for u in 0..n {
        let xu = x.row(u);
        let wu = fwd[u];
        let dout = graph.out_degree(u as u32) as f64;
        for (r, &xval) in xu.iter().enumerate() {
            agg.xi[r] += dout * wu * xval;
            agg.chi[r] += wu * xval;
            agg.phi[r] += wu * wu * xval * xval;
        }
        accumulate_outer(&mut agg.lambda_mat, xu, wu * wu);
    }
    for v in 0..n {
        let yv = y.row(v);
        let bw = weights.backward[v];
        let xv = x.row(v);
        let xy = dot(xv, yv);
        let wv2 = fwd[v] * fwd[v];
        for r in 0..k {
            agg.rho1[r] += bw * yv[r];
            agg.rho2[r] += wv2 * bw * xy * xv[r];
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let floor = 1.0 / n as f64;
    for v_star in order {
        let yv = y.row(v_star);
        let xv = x.row(v_star);
        let w_fwd = fwd[v_star];
        let w_old = weights.backward[v_star];
        let din = graph.in_degree(v_star as u32) as f64;
        let xy = dot(xv, yv);

        // a1 = ξ · Yᵀ_{v*}
        let a1 = dot(&agg.xi, yv);
        // a2 and b2 share (χ − w⃗_{v*} X_{v*}) · Yᵀ_{v*}
        let mut chi_minus: f64 = 0.0;
        for r in 0..k {
            chi_minus += (agg.chi[r] - w_fwd * xv[r]) * yv[r];
        }
        let a2 = din * chi_minus;
        let b2 = chi_minus * chi_minus;
        // a3 = ρ1 Λ Yᵀ − w⃖ Y Λ Yᵀ − ρ2 Yᵀ + w⃖ (X·Y)² w⃗²
        let lam_y = mat_vec(&agg.lambda_mat, yv);
        let a3 = dot(&agg.rho1, &lam_y) - w_old * dot(yv, &lam_y) - dot(&agg.rho2, yv)
            + w_old * xy * xy * w_fwd * w_fwd;
        // b1: exact via Λ or the paper's Eq. (14) approximation via φ.
        let b1 = if config.exact_b1 {
            (dot(yv, &lam_y) - w_fwd * w_fwd * xy * xy).max(0.0)
        } else {
            let mut s = 0.0;
            for r in 0..k {
                s += yv[r] * yv[r] * (agg.phi[r] - w_fwd * w_fwd * xv[r] * xv[r]);
            }
            (k as f64 / 2.0) * s.max(0.0)
        };

        let denom = b1 + b2 + config.lambda;
        let w_new = if denom > 0.0 {
            ((a1 + a2 - a3) / denom).max(floor)
        } else {
            floor
        };
        if !w_new.is_finite() {
            return Err(NrpError::InvalidParameter(format!(
                "backward weight for node {v_star} became non-finite"
            )));
        }
        weights.backward[v_star] = w_new;
        // Incremental updates of ρ1 and ρ2 (Eq. 11).
        let delta = w_new - w_old;
        if delta != 0.0 {
            for r in 0..k {
                agg.rho1[r] += delta * yv[r];
                agg.rho2[r] += delta * w_fwd * w_fwd * xy * xv[r];
            }
        }
    }
    Ok(())
}

/// One pass of Algorithm 4 (Appendix B): updates every forward weight once.
pub fn update_forward_weights(
    graph: &Graph,
    x: &DenseMatrix,
    y: &DenseMatrix,
    weights: &mut NodeWeights,
    config: &ReweightConfig,
    rng: &mut ChaCha8Rng,
) -> Result<()> {
    validate(graph, x, y)?;
    let n = graph.num_nodes();
    let k = x.cols();
    let bwd = &weights.backward;
    // Aggregates over the *backward* side (independent of forward weights).
    let mut agg = Aggregates {
        xi: vec![0.0; k],
        chi: vec![0.0; k],
        lambda_mat: DenseMatrix::zeros(k, k),
        rho1: vec![0.0; k],
        rho2: vec![0.0; k],
        phi: vec![0.0; k],
    };
    for v in 0..n {
        let yv = y.row(v);
        let wv = bwd[v];
        let din = graph.in_degree(v as u32) as f64;
        for (r, &yval) in yv.iter().enumerate() {
            agg.xi[r] += din * wv * yval;
            agg.chi[r] += wv * yval;
            agg.phi[r] += wv * wv * yval * yval;
        }
        accumulate_outer(&mut agg.lambda_mat, yv, wv * wv);
    }
    for u in 0..n {
        let xu = x.row(u);
        let yu = y.row(u);
        let fw = weights.forward[u];
        let xy = dot(xu, yu);
        let wv2 = bwd[u] * bwd[u];
        for r in 0..k {
            agg.rho1[r] += fw * xu[r];
            agg.rho2[r] += fw * wv2 * xy * yu[r];
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let floor = 1.0 / n as f64;
    for u_star in order {
        let xu = x.row(u_star);
        let yu = y.row(u_star);
        let w_bwd = bwd[u_star];
        let w_old = weights.forward[u_star];
        let dout = graph.out_degree(u_star as u32) as f64;
        let xy = dot(xu, yu);

        let a1 = dot(&agg.xi, xu);
        let mut chi_minus = 0.0;
        for r in 0..k {
            chi_minus += (agg.chi[r] - w_bwd * yu[r]) * xu[r];
        }
        let a2 = dout * chi_minus;
        let b2 = chi_minus * chi_minus;
        let lam_x = mat_vec(&agg.lambda_mat, xu);
        let a3 = dot(&agg.rho1, &lam_x) - w_old * dot(xu, &lam_x) - dot(&agg.rho2, xu)
            + w_old * xy * xy * w_bwd * w_bwd;
        let b1 = if config.exact_b1 {
            (dot(xu, &lam_x) - w_bwd * w_bwd * xy * xy).max(0.0)
        } else {
            let mut s = 0.0;
            for r in 0..k {
                s += xu[r] * xu[r] * (agg.phi[r] - w_bwd * w_bwd * yu[r] * yu[r]);
            }
            (k as f64 / 2.0) * s.max(0.0)
        };

        let denom = b1 + b2 + config.lambda;
        let w_new = if denom > 0.0 {
            ((a1 + a2 - a3) / denom).max(floor)
        } else {
            floor
        };
        if !w_new.is_finite() {
            return Err(NrpError::InvalidParameter(format!(
                "forward weight for node {u_star} became non-finite"
            )));
        }
        weights.forward[u_star] = w_new;
        let delta = w_new - w_old;
        if delta != 0.0 {
            for r in 0..k {
                agg.rho1[r] += delta * xu[r];
                agg.rho2[r] += delta * w_bwd * w_bwd * xy * yu[r];
            }
        }
    }
    Ok(())
}

/// Evaluates objective (6) exactly in `O(n²k')` time — small graphs / tests
/// only. Returns the value of the two degree-matching terms plus the ridge
/// penalty.
pub fn objective_value(
    graph: &Graph,
    x: &DenseMatrix,
    y: &DenseMatrix,
    weights: &NodeWeights,
    lambda: f64,
) -> f64 {
    let n = graph.num_nodes();
    let mut total = 0.0;
    // Incoming term: for each v, (Σ_{u≠v} w⃗_u X_u·Y_v w⃖_v − din(v))².
    for v in 0..n {
        let yv = y.row(v);
        let mut strength = 0.0;
        for u in 0..n {
            if u == v {
                continue;
            }
            strength += weights.forward[u] * dot(x.row(u), yv) * weights.backward[v];
        }
        let gap = strength - graph.in_degree(v as u32) as f64;
        total += gap * gap;
    }
    // Outgoing term: for each u, (Σ_{v≠u} w⃗_u X_u·Y_v w⃖_v − dout(u))².
    for u in 0..n {
        let xu = x.row(u);
        let mut strength = 0.0;
        for v in 0..n {
            if v == u {
                continue;
            }
            strength += weights.forward[u] * dot(xu, y.row(v)) * weights.backward[v];
        }
        let gap = strength - graph.out_degree(u as u32) as f64;
        total += gap * gap;
    }
    // Ridge penalty.
    for u in 0..n {
        total += lambda
            * (weights.forward[u] * weights.forward[u] + weights.backward[u] * weights.backward[u]);
    }
    total
}

/// Naive `O(n·k')`-per-node evaluation of the backward-update terms of
/// Eq. (7), used by tests to validate the accelerated implementation.
#[allow(clippy::type_complexity)]
pub fn naive_backward_terms(
    graph: &Graph,
    x: &DenseMatrix,
    y: &DenseMatrix,
    weights: &NodeWeights,
    v_star: usize,
) -> (f64, f64, f64, f64, f64) {
    let n = graph.num_nodes();
    let yv = y.row(v_star);
    let fwd = &weights.forward;
    let bwd = &weights.backward;
    let mut a1 = 0.0;
    let mut a2_sum = vec![0.0; x.cols()];
    let mut a3 = 0.0;
    let mut b1 = 0.0;
    for u in 0..n {
        let xu = x.row(u);
        a1 += graph.out_degree(u as u32) as f64 * fwd[u] * dot(xu, yv);
        if u != v_star {
            for (r, &xval) in xu.iter().enumerate() {
                a2_sum[r] += fwd[u] * xval;
            }
            let t = fwd[u] * dot(xu, yv);
            b1 += t * t;
        }
        // a3 inner sum over v != u, v != v_star.
        let mut inner = 0.0;
        for v in 0..n {
            if v == u || v == v_star {
                continue;
            }
            inner += fwd[u] * dot(xu, y.row(v)) * bwd[v];
        }
        a3 += inner * fwd[u] * dot(xu, yv);
    }
    let a2 = graph.in_degree(v_star as u32) as f64 * dot(&a2_sum, yv);
    let b2 = dot(&a2_sum, yv) * dot(&a2_sum, yv);
    (a1, a2, a3, b1, b2)
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn mat_vec(m: &DenseMatrix, v: &[f64]) -> Vec<f64> {
    (0..m.rows()).map(|i| dot(m.row(i), v)).collect()
}

fn accumulate_outer(m: &mut DenseMatrix, row: &[f64], scale: f64) {
    let k = row.len();
    for i in 0..k {
        let si = scale * row[i];
        if si == 0.0 {
            continue;
        }
        for j in 0..k {
            m.add_to(i, j, si * row[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_ppr::{ApproxPpr, ApproxPprParams};
    use nrp_graph::generators::example::example_graph;
    use nrp_graph::generators::stochastic_block_model;
    use nrp_graph::GraphKind;

    fn factors(graph: &Graph, dim: usize, seed: u64) -> (DenseMatrix, DenseMatrix) {
        ApproxPpr::new(ApproxPprParams {
            half_dimension: dim,
            seed,
            ..Default::default()
        })
        .factorize(graph)
        .unwrap()
    }

    /// The accelerated per-node terms (re-derived outside of the update loop)
    /// must match the naive Eq. (7) evaluation.
    #[test]
    fn accelerated_terms_match_naive_formulas() {
        let g = example_graph();
        let (x, y) = factors(&g, 4, 1);
        let mut weights = NodeWeights::initialize(&g);
        // Perturb the backward weights so the test is not trivially symmetric.
        for (i, w) in weights.backward.iter_mut().enumerate() {
            *w = 1.0 + 0.1 * i as f64;
        }
        let n = g.num_nodes();
        let k = x.cols();
        // Recompute the same aggregates the accelerated path uses.
        let mut xi = vec![0.0; k];
        let mut chi = vec![0.0; k];
        let mut lambda_mat = DenseMatrix::zeros(k, k);
        let mut rho1 = vec![0.0; k];
        let mut rho2 = vec![0.0; k];
        for u in 0..n {
            let xu = x.row(u);
            let wu = weights.forward[u];
            let dout = g.out_degree(u as u32) as f64;
            for r in 0..k {
                xi[r] += dout * wu * xu[r];
                chi[r] += wu * xu[r];
            }
            accumulate_outer(&mut lambda_mat, xu, wu * wu);
        }
        for v in 0..n {
            let yv = y.row(v);
            let xv = x.row(v);
            let bw = weights.backward[v];
            let xy = dot(xv, yv);
            for r in 0..k {
                rho1[r] += bw * yv[r];
                rho2[r] += weights.forward[v] * weights.forward[v] * bw * xy * xv[r];
            }
        }
        for v_star in 0..n {
            let (na1, na2, na3, nb1, nb2) = naive_backward_terms(&g, &x, &y, &weights, v_star);
            let yv = y.row(v_star);
            let xv = x.row(v_star);
            let w_fwd = weights.forward[v_star];
            let w_bwd = weights.backward[v_star];
            let xy = dot(xv, yv);
            let a1 = dot(&xi, yv);
            let chi_minus: f64 = (0..k).map(|r| (chi[r] - w_fwd * xv[r]) * yv[r]).sum();
            let a2 = g.in_degree(v_star as u32) as f64 * chi_minus;
            let b2 = chi_minus * chi_minus;
            let lam_y = mat_vec(&lambda_mat, yv);
            let a3 = dot(&rho1, &lam_y) - w_bwd * dot(yv, &lam_y) - dot(&rho2, yv)
                + w_bwd * xy * xy * w_fwd * w_fwd;
            let b1_exact = dot(yv, &lam_y) - w_fwd * w_fwd * xy * xy;
            assert!(
                (a1 - na1).abs() < 1e-9,
                "a1 mismatch at {v_star}: {a1} vs {na1}"
            );
            assert!(
                (a2 - na2).abs() < 1e-9,
                "a2 mismatch at {v_star}: {a2} vs {na2}"
            );
            assert!(
                (a3 - na3).abs() < 1e-8,
                "a3 mismatch at {v_star}: {a3} vs {na3}"
            );
            assert!(
                (b1_exact - nb1).abs() < 1e-9,
                "b1 mismatch at {v_star}: {b1_exact} vs {nb1}"
            );
            assert!(
                (b2 - nb2).abs() < 1e-9,
                "b2 mismatch at {v_star}: {b2} vs {nb2}"
            );
        }
    }

    #[test]
    fn paper_b1_approximation_respects_amgm_bounds() {
        // By Cauchy–Schwarz, b1 <= k'·Σ_u w⃗²(Σ_r X²Y²) (the left inequality of
        // Eq. 12), so the Eq. (14) estimate (k'/2 times the middle term) is at
        // least b1/2 and never negative.
        let g = example_graph();
        let (x, y) = factors(&g, 4, 3);
        let weights = NodeWeights::initialize(&g);
        let k = x.cols() as f64;
        for v_star in 0..g.num_nodes() {
            let (_, _, _, b1_naive, _) = naive_backward_terms(&g, &x, &y, &weights, v_star);
            let yv = y.row(v_star);
            let xv = x.row(v_star);
            let mut phi = vec![0.0; x.cols()];
            for u in 0..g.num_nodes() {
                let xu = x.row(u);
                for r in 0..x.cols() {
                    phi[r] += weights.forward[u] * weights.forward[u] * xu[r] * xu[r];
                }
            }
            let wf = weights.forward[v_star];
            let middle: f64 = (0..x.cols())
                .map(|r| yv[r] * yv[r] * (phi[r] - wf * wf * xv[r] * xv[r]))
                .sum();
            let approx = k / 2.0 * middle;
            assert!(
                approx >= b1_naive / 2.0 - 1e-9,
                "approx {approx} below b1/2 {}",
                b1_naive / 2.0
            );
            assert!(
                approx >= -1e-12,
                "approx b1 must be non-negative, got {approx}"
            );
        }
    }

    #[test]
    fn objective_decreases_from_initialization() {
        let (g, _) =
            stochastic_block_model(&[20, 20], 0.25, 0.03, GraphKind::Undirected, 5).unwrap();
        let (x, y) = factors(&g, 8, 5);
        let config = ReweightConfig {
            epochs: 10,
            lambda: 1.0,
            ..Default::default()
        };
        let initial = NodeWeights::initialize(&g);
        let initial_obj = objective_value(&g, &x, &y, &initial, config.lambda);
        let learned = learn_weights(&g, &x, &y, &config).unwrap();
        let final_obj = objective_value(&g, &x, &y, &learned, config.lambda);
        assert!(
            final_obj < initial_obj,
            "objective should decrease: initial {initial_obj}, final {final_obj}"
        );
    }

    #[test]
    fn exact_b1_variant_also_decreases_objective() {
        let (g, _) = stochastic_block_model(&[15, 15], 0.3, 0.02, GraphKind::Directed, 9).unwrap();
        let (x, y) = factors(&g, 6, 9);
        let config = ReweightConfig {
            epochs: 8,
            lambda: 1.0,
            exact_b1: true,
            ..Default::default()
        };
        let initial_obj = objective_value(&g, &x, &y, &NodeWeights::initialize(&g), config.lambda);
        let learned = learn_weights(&g, &x, &y, &config).unwrap();
        let final_obj = objective_value(&g, &x, &y, &learned, config.lambda);
        assert!(final_obj < initial_obj);
    }

    #[test]
    fn weights_respect_lower_bound() {
        let (g, _) =
            stochastic_block_model(&[25, 25], 0.2, 0.02, GraphKind::Undirected, 13).unwrap();
        let (x, y) = factors(&g, 8, 13);
        let learned = learn_weights(&g, &x, &y, &ReweightConfig::default()).unwrap();
        let floor = 1.0 / g.num_nodes() as f64;
        for w in learned.forward.iter().chain(&learned.backward) {
            assert!(*w >= floor - 1e-12, "weight {w} below 1/n floor {floor}");
            assert!(w.is_finite());
        }
    }

    #[test]
    fn reweighting_improves_degree_matching() {
        // The point of the scheme: total embedded strength per node should move
        // towards the node degrees.
        let (g, _) =
            stochastic_block_model(&[20, 20], 0.25, 0.03, GraphKind::Undirected, 17).unwrap();
        let (x, y) = factors(&g, 8, 17);
        let config = ReweightConfig {
            epochs: 10,
            lambda: 1.0,
            ..Default::default()
        };
        let learned = learn_weights(&g, &x, &y, &config).unwrap();
        let gap = |weights: &NodeWeights| {
            let n = g.num_nodes();
            let mut total = 0.0;
            for u in 0..n {
                let mut strength = 0.0;
                for v in 0..n {
                    if v == u {
                        continue;
                    }
                    strength += weights.forward[u] * dot(x.row(u), y.row(v)) * weights.backward[v];
                }
                total += (strength - g.out_degree(u as u32) as f64).abs();
            }
            total
        };
        let before = gap(&NodeWeights::initialize(&g));
        let after = gap(&learned);
        assert!(
            after < before,
            "out-degree gap should shrink: before {before}, after {after}"
        );
    }

    #[test]
    fn zero_epochs_returns_initial_weights() {
        let g = example_graph();
        let (x, y) = factors(&g, 4, 21);
        let config = ReweightConfig {
            epochs: 0,
            ..Default::default()
        };
        let learned = learn_weights(&g, &x, &y, &config).unwrap();
        assert_eq!(learned, NodeWeights::initialize(&g));
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let g = example_graph();
        let x = DenseMatrix::zeros(5, 3);
        let y = DenseMatrix::zeros(9, 3);
        assert!(learn_weights(&g, &x, &y, &ReweightConfig::default()).is_err());
        let x = DenseMatrix::zeros(9, 3);
        let y = DenseMatrix::zeros(9, 2);
        assert!(learn_weights(&g, &x, &y, &ReweightConfig::default()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _) =
            stochastic_block_model(&[15, 15], 0.2, 0.02, GraphKind::Undirected, 23).unwrap();
        let (x, y) = factors(&g, 6, 23);
        let config = ReweightConfig {
            epochs: 5,
            seed: 7,
            ..Default::default()
        };
        let a = learn_weights(&g, &x, &y, &config).unwrap();
        let b = learn_weights(&g, &x, &y, &config).unwrap();
        assert_eq!(a, b);
    }
}
