//! Fixture-driven rule tests: each known-bad snippet under
//! `tests/fixtures/` must produce exactly the expected `file:line: rule-id`
//! findings, and each false-positive foil must stay clean.  The fixtures
//! directory is excluded from the workspace walk, so these snippets never
//! pollute a `--workspace` run.
//!
//! Path-scoped rules (D002, U002, P) are probed by linting a fixture under a
//! *virtual* workspace-relative path — the same mechanism the CLI exposes as
//! `FILE=VIRTUAL`.

use nrp_lint::{lint_source, Config, Finding};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(line, rule)` pairs of all findings, for order-insensitive comparison.
fn line_rules(findings: &[Finding]) -> Vec<(u32, &str)> {
    findings.iter().map(|f| (f.line, f.rule.as_str())).collect()
}

#[test]
fn d001_catches_every_iteration_shape() {
    let report = lint_source(
        "crates/graph/src/fixture.rs",
        &fixture("d001_hashmap_iteration.rs"),
        &Config::default(),
    );
    assert_eq!(
        line_rules(&report.findings),
        vec![
            (6, "D001"),  // for … in edges.iter()
            (14, "D001"), // for node in nodes
            (22, "D001"), // weights.keys()
            (23, "D001"), // weights.values()
            (29, "D001"), // seen.drain()
        ],
        "{:#?}",
        report.findings
    );
}

#[test]
fn d001_ignores_lookups_btrees_and_test_code() {
    let report = lint_source(
        "crates/graph/src/fixture.rs",
        &fixture("d001_lookup_clean.rs"),
        &Config::default(),
    );
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn d002_fires_only_under_kernel_paths() {
    let source = fixture("d002_timing.rs");
    let cfg = Config::default();
    let in_kernel = lint_source("crates/linalg/src/timing.rs", &source, &cfg);
    assert_eq!(
        line_rules(&in_kernel.findings),
        vec![(6, "D002"), (11, "D002")],
        "{:#?}",
        in_kernel.findings
    );
    // Outside the kernel D002 stays quiet — the same sites are O001's
    // territory (non-kernel code routes timing through `nrp_obs::clock`).
    let outside = lint_source("crates/bench/src/timing.rs", &source, &cfg);
    assert_eq!(
        line_rules(&outside.findings),
        vec![(6, "O001"), (11, "O001")],
        "{:#?}",
        outside.findings
    );
}

#[test]
fn o001_fires_everywhere_but_the_clock_owner_and_tests() {
    let source = fixture("o001_clock.rs");
    let cfg = Config::default();
    let in_serve = lint_source("crates/serve/src/timing.rs", &source, &cfg);
    assert_eq!(
        line_rules(&in_serve.findings),
        vec![(6, "O001"), (10, "O001")], // the line-14 read carries an allow
        "{:#?}",
        in_serve.findings
    );
    let owner = lint_source("crates/obs/src/clock.rs", &source, &cfg);
    assert!(owner.findings.is_empty(), "{:#?}", owner.findings);
    let in_test = lint_source("crates/serve/tests/timing.rs", &source, &cfg);
    assert!(in_test.findings.is_empty(), "{:#?}", in_test.findings);
}

#[test]
fn d003_catches_unseeded_rng_construction() {
    let report = lint_source(
        "crates/core/src/fixture.rs",
        &fixture("d003_rng.rs"),
        &Config::default(),
    );
    assert_eq!(
        line_rules(&report.findings),
        vec![
            (4, "D003"), // thread_rng
            (5, "D003"), // from_entropy
            (6, "D003"), // OsRng
            (7, "D003"), // rand::random
        ],
        "{:#?}",
        report.findings
    );
}

#[test]
fn u001_wants_safety_comments_even_where_unsafe_is_allowed() {
    // Virtual path = the allowlisted module, so U002 stays quiet and the
    // only findings are the two undocumented sites.
    let report = lint_source(
        "crates/linalg/src/parallel.rs",
        &fixture("u001_unsafe.rs"),
        &Config::default(),
    );
    assert_eq!(
        line_rules(&report.findings),
        vec![(10, "U001"), (14, "U001")],
        "{:#?}",
        report.findings
    );
    // The inventory records all three sites, flagging the undocumented two.
    assert_eq!(report.unsafe_sites.len(), 3);
    assert_eq!(
        report.unsafe_sites.iter().filter(|s| s.documented).count(),
        1
    );
    assert!(report.unsafe_sites.iter().all(|s| s.allowlisted));
}

#[test]
fn u002_denies_unsafe_outside_the_allowlist() {
    // Same fixture under a non-allowlisted path: U002 fires on every site,
    // documented or not.
    let report = lint_source(
        "crates/graph/src/graph.rs",
        &fixture("u001_unsafe.rs"),
        &Config::default(),
    );
    let u002: Vec<u32> = report
        .findings
        .iter()
        .filter(|f| f.rule == "U002")
        .map(|f| f.line)
        .collect();
    assert_eq!(u002, vec![6, 10, 14], "{:#?}", report.findings);
    assert!(report.unsafe_sites.iter().all(|s| !s.allowlisted));
}

#[test]
fn p_rules_guard_request_path_modules_only() {
    let source = fixture("p_panics.rs");
    let cfg = Config::default();
    let on_path = lint_source("crates/serve/src/http.rs", &source, &cfg);
    assert_eq!(
        line_rules(&on_path.findings),
        vec![
            (5, "P001"),  // unwrap
            (6, "P001"),  // expect
            (12, "P002"), // panic!
            (14, "P002"), // todo!
            (16, "P002"), // unimplemented!
            (21, "P003"), // headers[0]
        ],
        "{:#?}",
        on_path.findings
    );
    // The identical code in a non-request-path module of the same crate is
    // out of scope for the P rules.
    let off_path = lint_source("crates/serve/src/config.rs", &source, &cfg);
    assert!(off_path.findings.is_empty(), "{:#?}", off_path.findings);
}

#[test]
fn r001_flags_unbounded_growth_on_the_request_path_only() {
    let source = fixture("r001_unbounded_growth.rs");
    let cfg = Config::default();
    let on_path = lint_source("crates/serve/src/http.rs", &source, &cfg);
    assert_eq!(
        line_rules(&on_path.findings),
        vec![
            (9, "R001"),  // sink.push — Vec::new, no visible bound
            (17, "R001"), // inbox.push_back — VecDeque::new, no visible bound
        ],
        "{:#?}",
        on_path.findings
    );
    // `with_capacity` inits (let bindings and struct-literal fields), `len()`
    // comparisons in either direction, reasoned allows and test code are all
    // accepted bound evidence — none of those sites fire above.
    let off_path = lint_source("crates/serve/src/config.rs", &source, &cfg);
    assert!(off_path.findings.is_empty(), "{:#?}", off_path.findings);
}

#[test]
fn lexer_edge_cases_keep_rules_and_line_numbers_exact() {
    // Zero-hash raw strings must end at their quote (the `unwrap` after
    // `r"C:\"` is real code), raw strings must hide their contents, nested
    // block comments must close correctly, and `\`-newline escapes must not
    // shift line numbers.  Linted under a request-path virtual path so the
    // P rules probe all of it.
    let report = lint_source(
        "crates/serve/src/http.rs",
        &fixture("lexer_edges.rs"),
        &Config::default(),
    );
    assert_eq!(
        line_rules(&report.findings),
        vec![
            (6, "P001"),  // after the r"C:\" literal
            (15, "P003"), // after the nested block comment
            (20, "P001"), // expect, past lifetimes and a char literal
            (27, "P001"), // line number survives the \-newline escape
        ],
        "{:#?}",
        report.findings
    );
}

#[test]
fn allow_directives_suppress_with_a_reason_and_flag_without() {
    let report = lint_source(
        "crates/graph/src/fixture.rs",
        &fixture("allow_comments.rs"),
        &Config::default(),
    );
    // The two reasoned directives suppress their D001s; the reason-less one
    // is an L001 *and* its D001 still stands.
    assert_eq!(
        line_rules(&report.findings),
        vec![(16, "L001"), (17, "D001")],
        "{:#?}",
        report.findings
    );
}

#[test]
fn findings_format_as_file_line_rule_message() {
    let report = lint_source(
        "crates/serve/src/http.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        &Config::default(),
    );
    assert_eq!(report.findings.len(), 1);
    let rendered = report.findings[0].to_string();
    assert!(
        rendered.starts_with("crates/serve/src/http.rs:1: P001 "),
        "{rendered}"
    );
}

#[test]
fn rule_a_flags_missing_twin_and_missing_roster_entry() {
    // Rule A is cross-file, so drive it through lint_workspace on a
    // synthetic mini-workspace.
    let dir = tempfile::tempdir().expect("tempdir");
    let root = dir.path();
    std::fs::create_dir_all(root.join("crates/linalg/src")).expect("mkdir");
    std::fs::create_dir_all(root.join("tests")).expect("mkdir");
    std::fs::write(
        root.join("crates/linalg/src/kernels.rs"),
        r#"
pub fn rowsum_exec(n: usize, exec: &Exec) -> f64 { 0.0 }
pub fn rowsum(n: usize) -> f64 { 0.0 }
pub fn colsum_exec(n: usize, exec: &Exec) -> f64 { 0.0 }
"#,
    )
    .expect("write kernels");
    // The roster *calls* rowsum_exec but not colsum_exec — A002 is a
    // call-graph fact, so a mere mention in a comment would not count.
    std::fs::write(
        root.join("tests/thread_invariance.rs"),
        "// roster: colsum_exec mentioned but never called\n\
         #[test]\n\
         fn roster() { let _ = rowsum_exec(3, &exec()); }\n",
    )
    .expect("write roster");

    let report = nrp_lint::lint_workspace(root, &Config::default()).expect("walk");
    let rules: Vec<(&str, &str)> = report
        .findings
        .iter()
        .map(|f| (f.rule.as_str(), f.file.as_str()))
        .collect();
    assert_eq!(
        rules,
        vec![
            ("A001", "crates/linalg/src/kernels.rs"), // colsum has no twin
            ("A002", "crates/linalg/src/kernels.rs"), // colsum not in roster
        ],
        "{:#?}",
        report.findings
    );
}
