//! The gate on the gate: `nrp-lint` must run clean over this workspace —
//! every finding in the tree has been fixed or reason-annotated — and the
//! unsafe inventory must show a fully documented, allowlist-respecting set
//! of sites.

use nrp_lint::{lint_workspace, unsafe_inventory_json, Config};

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint_workspace(&workspace_root(), &Config::default()).expect("walk");
    assert!(report.files_checked > 50, "walk found the workspace");
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.findings.is_empty(),
        "nrp-lint findings in the tree:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn unsafe_inventory_is_documented_and_allowlisted() {
    let report = lint_workspace(&workspace_root(), &Config::default()).expect("walk");
    assert!(
        !report.unsafe_sites.is_empty(),
        "the parallel kernels contain unsafe, the inventory must see it"
    );
    for site in &report.unsafe_sites {
        assert!(
            site.documented,
            "undocumented unsafe at {}:{}",
            site.file, site.line
        );
        assert!(
            site.allowlisted || site.test_code,
            "unsafe outside the allowlist at {}:{}",
            site.file,
            site.line
        );
    }
    // The JSON artifact round-trips through the vendored serde_json.
    let json = unsafe_inventory_json(&report.unsafe_sites);
    let value: serde::Value = serde_json::from_str(&json).expect("inventory parses");
    let entries = value.as_array().expect("inventory is an array");
    assert_eq!(entries.len(), report.unsafe_sites.len());
    let first = entries[0].as_object().expect("entry is an object");
    for key in ["file", "line", "kind", "documented", "allowlisted", "test"] {
        assert!(first.get(key).is_some(), "inventory entries carry `{key}`");
    }
}
