// Fixture: unsafe hygiene.  Linted under the allowlisted virtual path
// (crates/linalg/src/parallel.rs) only U001 applies — the documented block
// passes, the undocumented block and fn fail.
pub fn documented(data: &mut [f64]) -> f64 {
    // SAFETY: index 0 exists — the caller guarantees a non-empty slice.
    unsafe { *data.get_unchecked(0) }
}

pub fn undocumented(data: &mut [f64]) -> f64 {
    unsafe { *data.get_unchecked(0) }
}

/// An undocumented unsafe fn.
pub unsafe fn undocumented_fn(ptr: *mut f64) {
    *ptr = 0.0;
}
