// Fixture: unbounded-growth violations, linted under a virtual
// request-path module (where R001 fires) and under a non-request-path
// module (where the same code is clean).
use std::collections::VecDeque;

pub fn unbounded(values: &[u64]) -> Vec<u64> {
    let mut sink = Vec::new();
    for &v in values {
        sink.push(v);
    }
    sink
}

pub fn unbounded_deque(values: &[u64]) -> VecDeque<u64> {
    let mut inbox = VecDeque::new();
    for &v in values {
        inbox.push_back(v);
    }
    inbox
}

pub fn with_capacity_is_bounded(values: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(values.len());
    for &v in values {
        out.push(v);
    }
    out
}

pub struct Pool {
    slots: Vec<u64>,
}

impl Pool {
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
        }
    }

    pub fn add(&mut self, v: u64) {
        self.slots.push(v);
    }
}

pub fn len_guard_is_bounded(queue: &mut Vec<u64>, limit: usize, v: u64) {
    if queue.len() < limit {
        queue.push(v);
    }
}

pub fn reversed_guard_is_bounded(ring: &mut VecDeque<u64>, limit: usize, v: u64) {
    if limit > ring.len() {
        ring.push_back(v);
    }
}

pub fn allowed_with_reason(log: &mut Vec<u64>, v: u64) {
    // nrp-lint: allow(R001) — drained every batch, bounded by max_batch
    log.push(v);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_grow_freely() {
        let mut scratch = Vec::new();
        scratch.push(1u64);
    }
}
