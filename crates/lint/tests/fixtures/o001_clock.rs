// Fixture: wall-clock reads outside the clock-owning crate: O001 under
// ordinary virtual paths, clean under the obs crate and test paths.
use std::time::{Instant, SystemTime};

pub fn epoch() -> Instant {
    Instant::now()
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}

pub fn sanctioned() -> Instant {
    Instant::now() // nrp-lint: allow(O001) — a justified direct read
}
