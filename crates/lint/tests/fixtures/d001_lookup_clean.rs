// Fixture: HashMap/HashSet *lookups* and deterministic containers must not
// trip D001, and neither must iteration inside test code.
use std::collections::{BTreeMap, HashMap, HashSet};

pub fn lookups_are_fine(index: &HashMap<u32, u32>, seen: &HashSet<u32>) -> bool {
    index.contains_key(&1) && index.get(&2).is_some() && seen.contains(&3)
}

pub fn btree_iteration_is_deterministic(ordered: &BTreeMap<u32, u32>) -> u32 {
    ordered.iter().map(|(k, v)| k + v).sum()
}

pub fn inserts_are_fine() {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(1);
    let mut index: HashMap<u32, u32> = HashMap::new();
    index.insert(1, 2);
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_iterate() {
        let map: HashMap<u32, u32> = HashMap::new();
        for (k, v) in map.iter() {
            assert!(k <= v);
        }
    }
}
