// Fixture: every unseeded-RNG construction D003 must catch, plus the seeded
// constructions it must leave alone.
pub fn unseeded() -> u64 {
    let mut rng = rand::thread_rng();
    let from_entropy_rng = rand_chacha::ChaCha8Rng::from_entropy();
    let _ = OsRng;
    let lazy: f64 = rand::random();
    let _ = (from_entropy_rng, lazy);
    rng.next_u64()
}

pub fn seeded_is_fine() -> u64 {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    rng.next_u64()
}
