// Fixture: every D001-violating iteration shape the rule must catch.
use std::collections::{HashMap, HashSet};

pub fn iterate_map(edges: &HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    for (a, b) in edges.iter() {
        total += a + b;
    }
    total
}

pub fn for_loop_over_set(nodes: HashSet<u32>) -> u32 {
    let mut total = 0;
    for node in nodes {
        total += node;
    }
    total
}

pub fn keys_and_values() {
    let weights: HashMap<String, f64> = HashMap::new();
    let _k: Vec<&String> = weights.keys().collect();
    let _v: Vec<&f64> = weights.values().collect();
}

pub fn drain_a_set() {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(3);
    for item in seen.drain() {
        let _ = item;
    }
}
