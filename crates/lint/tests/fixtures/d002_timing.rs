// Fixture: wall-clock reads, linted under a virtual kernel-crate path
// (D002 fires) and under a non-kernel path (clean).
use std::time::{Instant, SystemTime};

pub fn measure() -> f64 {
    let started = Instant::now();
    started.elapsed().as_secs_f64()
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}
