// Fixture: the escape hatch.  A directive with a reason suppresses its
// target line; a directive without a reason suppresses nothing and is
// itself flagged (L001).
use std::collections::HashMap;

pub fn suppressed_trailing(map: &HashMap<u32, u32>) -> u32 {
    map.values().sum() // nrp-lint: allow(D001) — summation is order-free
}

pub fn suppressed_standalone(map: &HashMap<u32, u32>) -> usize {
    // nrp-lint: allow(D001) — counting does not observe iteration order
    map.iter().count()
}

pub fn missing_reason(map: &HashMap<u32, u32>) -> u32 {
    // nrp-lint: allow(D001)
    map.values().sum()
}
