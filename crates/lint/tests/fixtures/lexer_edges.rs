//! Lexer edge cases: every finding below is visible only if the lexer gets
//! raw strings, lifetimes, nested comments and escape lines exactly right.

pub fn raw_strings(x: Option<u32>) -> u32 {
    let _path = r"C:\";
    x.unwrap()
}

pub fn hidden_in_raw() -> &'static str {
    r#"x.unwrap() and panic!() are just text in here"#
}

/* outer /* nested */ still a comment: x.unwrap() */
pub fn after_nested_comment(v: &[u8]) -> u8 {
    v[0]
}

pub fn lifetimes<'a>(s: &'a str, c: Option<char>) -> char {
    let _nl = '\n';
    c.expect("boom")
}

pub fn continuation() -> u32 {
    let _s = "a\
    b";
    let v: Option<u32> = None;
    v.unwrap()
}
