// Fixture: panic-freedom violations, linted under a virtual request-path
// module (crates/serve/src/http.rs) where P001/P002/P003 fire, and under a
// virtual non-request-path module where the same code is clean.
pub fn unwraps(input: Option<u32>, fallible: Result<u32, String>) -> u32 {
    let a = input.unwrap();
    let b = fallible.expect("fine elsewhere, fatal on the request path");
    a + b
}

pub fn panics(mode: u8) {
    if mode == 0 {
        panic!("boom");
    } else if mode == 1 {
        todo!();
    } else {
        unimplemented!();
    }
}

pub fn literal_index(headers: &[String]) -> &str {
    &headers[0]
}

pub fn non_panicking_variants(input: Option<u32>) -> u32 {
    // unwrap_or / unwrap_or_default never panic and must not be flagged.
    input.unwrap_or(7) + input.unwrap_or_default()
}
