//! Integration tests for the semantic pass: K (lock order / blocking under
//! lock), H (warm-path allocation), P004 (transitive panic reachability)
//! and the call-graph A rules, driven through
//! [`nrp_lint::semantic::analyze_workspace`] on synthetic mini-workspaces —
//! plus the self-checks that keep the real tree's `lock-order.json` honest.

use nrp_lint::lexer::{lex, TokKind};
use nrp_lint::semantic::analyze_workspace;
use nrp_lint::Config;

/// Runs the semantic pass over one non-test source file.
fn run(relpath: &str, src: &str, cfg: &Config) -> Vec<(u32, String)> {
    run_files(&[(relpath, src)], cfg)
}

fn run_files(files: &[(&str, &str)], cfg: &Config) -> Vec<(u32, String)> {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_workspace(&sources, cfg)
        .findings
        .iter()
        .map(|f| (f.line, f.rule.clone()))
        .collect()
}

// ---------------------------------------------------------------------------
// K rules
// ---------------------------------------------------------------------------

#[test]
fn k001_flags_an_ab_ba_lock_cycle() {
    let findings = run(
        "crates/app/src/lib.rs",
        "use std::sync::Mutex;\n\
         static A: Mutex<u32> = Mutex::new(0);\n\
         static B: Mutex<u32> = Mutex::new(0);\n\
         pub fn ab() { let a = A.lock().unwrap(); let b = B.lock().unwrap(); drop(b); drop(a); }\n\
         pub fn ba() { let b = B.lock().unwrap(); let a = A.lock().unwrap(); drop(a); drop(b); }\n",
        &Config::default(),
    );
    let k001: Vec<_> = findings.iter().filter(|(_, r)| r == "K001").collect();
    assert_eq!(k001.len(), 1, "one finding per cycle: {findings:?}");
}

#[test]
fn k001_flags_reentrant_acquisition_through_a_callee() {
    let findings = run(
        "crates/app/src/lib.rs",
        "use std::sync::Mutex;\n\
         static STATE: Mutex<u32> = Mutex::new(0);\n\
         pub fn outer() { let g = STATE.lock().unwrap(); helper(); drop(g); }\n\
         fn helper() { let g = STATE.lock().unwrap(); drop(g); }\n",
        &Config::default(),
    );
    assert!(
        findings.iter().any(|(line, r)| r == "K001" && *line == 3),
        "{findings:?}"
    );
}

#[test]
fn k001_is_quiet_when_both_callers_agree_on_order() {
    let findings = run(
        "crates/app/src/lib.rs",
        "use std::sync::Mutex;\n\
         static A: Mutex<u32> = Mutex::new(0);\n\
         static B: Mutex<u32> = Mutex::new(0);\n\
         pub fn one() { let a = A.lock().unwrap(); let b = B.lock().unwrap(); drop(b); drop(a); }\n\
         pub fn two() { let a = A.lock().unwrap(); let b = B.lock().unwrap(); drop(b); drop(a); }\n",
        &Config::default(),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn k002_flags_condvar_wait_while_holding_another_lock() {
    let findings = run(
        "crates/app/src/lib.rs",
        "use std::sync::{Condvar, Mutex};\n\
         static STATE: Mutex<u32> = Mutex::new(0);\n\
         static OTHER: Mutex<u32> = Mutex::new(0);\n\
         static READY: Condvar = Condvar::new();\n\
         pub fn waits() {\n\
             let o = OTHER.lock().unwrap();\n\
             let g = STATE.lock().unwrap();\n\
             let g = READY.wait(g).unwrap();\n\
             drop(g);\n\
             drop(o);\n\
         }\n",
        &Config::default(),
    );
    assert!(findings.iter().any(|(_, r)| r == "K002"), "{findings:?}");
}

#[test]
fn k002_flags_a_condvar_paired_with_two_different_locks() {
    let findings = run(
        "crates/app/src/lib.rs",
        "use std::sync::{Condvar, Mutex};\n\
         static A: Mutex<u32> = Mutex::new(0);\n\
         static B: Mutex<u32> = Mutex::new(0);\n\
         static READY: Condvar = Condvar::new();\n\
         pub fn wait_a() { let g = A.lock().unwrap(); let g = READY.wait(g).unwrap(); drop(g); }\n\
         pub fn wait_b() { let g = B.lock().unwrap(); let g = READY.wait(g).unwrap(); drop(g); }\n",
        &Config::default(),
    );
    assert!(
        findings.iter().any(|(_, r)| r == "K002"),
        "two-lock pairing must be flagged: {findings:?}"
    );
}

#[test]
fn k003_flags_blocking_calls_under_a_lock_directly_and_transitively() {
    let findings = run(
        "crates/app/src/lib.rs",
        "use std::sync::Mutex;\n\
         use std::sync::mpsc::Receiver;\n\
         static STATE: Mutex<u32> = Mutex::new(0);\n\
         pub fn direct(rx: &Receiver<u32>) { let g = STATE.lock().unwrap(); let _ = rx.recv(); drop(g); }\n\
         pub fn indirect(rx: &Receiver<u32>) { let g = STATE.lock().unwrap(); drain(rx); drop(g); }\n\
         fn drain(rx: &Receiver<u32>) { while rx.recv().is_ok() {} }\n",
        &Config::default(),
    );
    let k003: Vec<_> = findings.iter().filter(|(_, r)| r == "K003").collect();
    assert_eq!(k003.len(), 2, "direct and transitive: {findings:?}");
}

#[test]
fn k_rules_release_guards_on_drop_and_scope_end() {
    // `drop(g)` ends the critical section: the recv after it is clean, and
    // a block-scoped guard releases at `}`.
    let findings = run(
        "crates/app/src/lib.rs",
        "use std::sync::Mutex;\n\
         use std::sync::mpsc::Receiver;\n\
         static STATE: Mutex<u32> = Mutex::new(0);\n\
         pub fn dropped(rx: &Receiver<u32>) {\n\
             let g = STATE.lock().unwrap();\n\
             drop(g);\n\
             let _ = rx.recv();\n\
         }\n\
         pub fn scoped(rx: &Receiver<u32>) {\n\
             { let _g = STATE.lock().unwrap(); }\n\
             let _ = rx.recv();\n\
         }\n",
        &Config::default(),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn k_findings_are_suppressed_in_test_code() {
    let findings = run(
        "crates/app/src/lib.rs",
        "use std::sync::Mutex;\n\
         use std::sync::mpsc::Receiver;\n\
         static STATE: Mutex<u32> = Mutex::new(0);\n\
         #[cfg(test)]\n\
         mod tests {\n\
             use super::*;\n\
             #[test]\n\
             fn holds_across_recv(rx: &Receiver<u32>) {\n\
                 let g = STATE.lock().unwrap();\n\
                 let _ = rx.recv();\n\
                 drop(g);\n\
             }\n\
         }\n",
        &Config::default(),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// H rules
// ---------------------------------------------------------------------------

fn hot_cfg() -> Config {
    Config {
        hot_roots: vec!["hot_entry".into()],
        warm_proven: vec![],
        ..Config::default()
    }
}

#[test]
fn h001_flags_allocations_reachable_from_a_hot_root() {
    let findings = run(
        "crates/app/src/lib.rs",
        "pub fn hot_entry(n: usize) { step(n); }\n\
         fn step(n: usize) { let v = Vec::with_capacity(n); let _ = v.len(); }\n\
         pub fn cold() { let _ = Vec::with_capacity(4); }\n",
        &hot_cfg(),
    );
    assert_eq!(
        findings.iter().filter(|(_, r)| r == "H001").count(),
        1,
        "only the reachable alloc: {findings:?}"
    );
    assert!(findings.iter().any(|(line, _)| *line == 2), "{findings:?}");
}

#[test]
fn h002_growth_is_exempt_in_warm_proven_files_but_h001_still_applies() {
    let src = "pub fn hot_entry(out: &mut Vec<u32>) { out.push(1); let _ = format!(\"x\"); }\n";
    let strict = run("crates/app/src/lib.rs", src, &hot_cfg());
    assert!(
        strict.iter().any(|(_, r)| r == "H002") && strict.iter().any(|(_, r)| r == "H001"),
        "{strict:?}"
    );
    let proven = Config {
        warm_proven: vec!["crates/app/src/lib.rs".into()],
        ..hot_cfg()
    };
    let relaxed = run("crates/app/src/lib.rs", src, &proven);
    assert!(
        !relaxed.iter().any(|(_, r)| r == "H002") && relaxed.iter().any(|(_, r)| r == "H001"),
        "H002 exempt, H001 kept: {relaxed:?}"
    );
}

// ---------------------------------------------------------------------------
// P004
// ---------------------------------------------------------------------------

#[test]
fn p004_follows_the_call_graph_out_of_the_request_path() {
    let cfg = Config {
        request_path: vec!["crates/serve/src/http.rs".into()],
        ..Config::default()
    };
    let findings = run_files(
        &[
            (
                "crates/serve/src/http.rs",
                "pub fn handle(x: Option<u32>) -> u32 { helper_value(x) }\n",
            ),
            (
                "crates/other/src/lib.rs",
                "pub fn helper_value(x: Option<u32>) -> u32 { x.unwrap() }\n\
                 pub fn unrelated(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
        ],
        &cfg,
    );
    let p004: Vec<_> = findings.iter().filter(|(_, r)| r == "P004").collect();
    assert_eq!(p004.len(), 1, "only the reachable unwrap: {findings:?}");
}

#[test]
fn p004_respects_reasoned_allow_directives() {
    let cfg = Config {
        request_path: vec!["crates/serve/src/http.rs".into()],
        ..Config::default()
    };
    let findings = run_files(
        &[
            (
                "crates/serve/src/http.rs",
                "pub fn handle(x: Option<u32>) -> u32 { proven(x) }\n",
            ),
            (
                "crates/other/src/lib.rs",
                "pub fn proven(x: Option<u32>) -> u32 {\n\
                     // nrp-lint: allow(P004) — caller checked is_some first\n\
                     x.unwrap()\n\
                 }\n",
            ),
        ],
        &cfg,
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// Real-tree self-checks: lock coverage and lock-order.json freshness
// ---------------------------------------------------------------------------

/// Workspace root (the lint crate lives at `<root>/crates/lint`).
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root")
        .to_path_buf()
}

#[test]
fn lock_analysis_covers_every_lock_type_site_in_the_tree() {
    // Independently count every non-comment `Mutex`/`RwLock`/`Condvar`
    // identifier in the files the workspace walk lints (the "grep" count)
    // and require the analyzer's coverage denominator to match exactly —
    // the lock inventory must not silently skip a site.
    let root = workspace_root();
    let report = nrp_lint::lint_workspace(&root, &Config::default()).expect("workspace walk");
    let mut grep_count = 0usize;
    let mut stack = vec![root.clone()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read_dir") {
            let path = entry.expect("entry").path();
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            if path.is_dir() {
                if !matches!(
                    name.as_str(),
                    "target" | "vendor" | ".git" | "fixtures" | "node_modules"
                ) && !name.starts_with('.')
                {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let source = std::fs::read_to_string(&path).expect("read");
                grep_count += lex(&source)
                    .iter()
                    .filter(|t| {
                        t.kind == TokKind::Ident
                            && !t.is_comment()
                            && matches!(t.text.as_str(), "Mutex" | "RwLock" | "Condvar")
                    })
                    .count();
            }
        }
    }
    assert!(grep_count > 0, "the tree uses locks");
    assert_eq!(
        report.lock_type_sites, grep_count,
        "lock coverage denominator must match the independent count"
    );
    assert!(report.lock_decls > 0, "named lock declarations expected");
}

#[test]
fn checked_in_lock_order_json_is_fresh() {
    // CI enforces this too (drift check against a regenerated file); the
    // test keeps the gate runnable offline.
    let root = workspace_root();
    let report = nrp_lint::lint_workspace(&root, &Config::default()).expect("workspace walk");
    let checked_in = std::fs::read_to_string(root.join("lock-order.json"))
        .expect("lock-order.json is checked in at the workspace root");
    assert_eq!(
        checked_in.trim_end(),
        report.lock_order_json.trim_end(),
        "lock-order.json is stale — regenerate with \
         `cargo run -p nrp-lint -- --workspace --lock-order lock-order.json`"
    );
}

#[test]
fn the_real_tree_is_clean_under_the_semantic_rules() {
    let root = workspace_root();
    let report = nrp_lint::lint_workspace(&root, &Config::default()).expect("workspace walk");
    let semantic: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule.starts_with('K') || f.rule.starts_with('H') || f.rule == "P004")
        .collect();
    assert!(semantic.is_empty(), "{semantic:#?}");
}
