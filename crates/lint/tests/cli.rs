//! CLI behavior: exact `file:line: rule-id` stdout, `--deny` exit codes,
//! and the `FILE=VIRTUAL` path-mapping syntax.

use std::process::Command;

fn fixture_path(name: &str) -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

fn run(args: &[&str]) -> (i32, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_nrp-lint"))
        .args(args)
        .output()
        .expect("nrp-lint runs");
    (
        output.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn deny_exits_nonzero_on_violations_with_exact_output() {
    let spec = format!("{}=crates/serve/src/http.rs", fixture_path("p_panics.rs"));
    let (code, stdout, _) = run(&["--deny", &spec]);
    assert_eq!(code, 1, "--deny turns findings into failure");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6, "{stdout}");
    assert!(
        lines[0].starts_with("crates/serve/src/http.rs:5: P001 "),
        "{stdout}"
    );
    assert!(
        lines[5].starts_with("crates/serve/src/http.rs:21: P003 "),
        "{stdout}"
    );
}

#[test]
fn without_deny_findings_are_reported_but_exit_zero() {
    let spec = format!("{}=crates/serve/src/http.rs", fixture_path("p_panics.rs"));
    let (code, stdout, _) = run(&[&spec]);
    assert_eq!(code, 0, "advisory mode");
    assert!(stdout.contains("P001"), "{stdout}");
}

#[test]
fn clean_file_exits_zero_under_deny() {
    let spec = format!(
        "{}=crates/graph/src/fixture.rs",
        fixture_path("d001_lookup_clean.rs")
    );
    let (code, stdout, stderr) = run(&["--deny", &spec]);
    assert_eq!(code, 0, "stdout: {stdout} stderr: {stderr}");
    assert!(stdout.is_empty(), "{stdout}");
    assert!(stderr.contains("no findings"), "{stderr}");
}

#[test]
fn unknown_flags_and_missing_input_are_usage_errors() {
    let (code, _, stderr) = run(&["--bogus"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage:"), "{stderr}");
    let (code, _, stderr) = run(&[]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn format_json_emits_a_findings_object() {
    let spec = format!("{}=crates/serve/src/http.rs", fixture_path("p_panics.rs"));
    let (code, stdout, _) = run(&["--format", "json", &spec]);
    assert_eq!(code, 0);
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"findings\""), "{stdout}");
    assert!(stdout.contains("\"rule\": \"P001\""), "{stdout}");
    assert!(stdout.contains("\"ambiguities\""), "{stdout}");
    assert!(stdout.contains("\"files_checked\": 1"), "{stdout}");
    // No text findings mixed into the JSON stream.
    assert!(!stdout.contains(":5: P001"), "{stdout}");
    let (code, _, stderr) = run(&["--format", "xml", &spec]);
    assert_eq!(code, 2);
    assert!(stderr.contains("--format"), "{stderr}");
}

#[test]
fn workspace_run_writes_the_lock_order_json() {
    let dir = tempfile::tempdir().expect("tempdir");
    let lock_order = dir.path().join("lock-order.json");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (code, _, stderr) = run(&[
        "--workspace",
        "--root",
        &root.to_string_lossy(),
        "--lock-order",
        &lock_order.to_string_lossy(),
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("lock order ("), "{stderr}");
    let json = std::fs::read_to_string(&lock_order).expect("lock order written");
    assert!(json.contains("\"locks\""), "{json}");
    assert!(json.contains("\"order_edges\""), "{json}");
    assert!(json.contains("\"condvar_waits\""), "{json}");
    assert!(json.contains("\"coverage\""), "{json}");
    assert!(json.contains("REGISTRY"), "{json}");
}

#[test]
fn workspace_run_writes_the_unsafe_inventory() {
    let dir = tempfile::tempdir().expect("tempdir");
    let inventory = dir.path().join("unsafe_inventory.json");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (code, _, stderr) = run(&[
        "--workspace",
        "--deny",
        "--root",
        &root.to_string_lossy(),
        "--unsafe-inventory",
        &inventory.to_string_lossy(),
    ]);
    assert_eq!(code, 0, "the tree is lint-clean: {stderr}");
    let json = std::fs::read_to_string(&inventory).expect("inventory written");
    assert!(json.trim_start().starts_with('['), "{json}");
    assert!(json.contains("crates/linalg/src/parallel.rs"), "{json}");
    // Call-graph context: the pool's unsafe sites name the public APIs
    // that reach them.
    assert!(json.contains("\"reachable_from\""), "{json}");
    assert!(json.contains("par_chunk_map_exec"), "{json}");
}
