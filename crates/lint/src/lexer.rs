//! A hand-rolled Rust lexer, just deep enough for the rule engine.
//!
//! The rules in this crate are *token* rules: they need to know that an
//! `unwrap` identifier is real code and not part of a string literal or a
//! doc comment, and they need comments preserved (with line numbers) so the
//! `// SAFETY:` and `// nrp-lint: allow(...)` conventions can be checked.
//! Full parsing is deliberately out of scope — the workspace vendors every
//! dependency, so there is no syn/proc-macro2 to lean on, and line/token
//! scoped rules have proven precise enough for the contracts enforced here
//! (see `CONTRIBUTING.md`, "Project lints").
//!
//! The lexer understands everything that could make a naive text scan lie:
//! line and (nested) block comments, string/raw-string/byte-string/char
//! literals, lifetimes vs. char literals, raw identifiers, and numeric
//! literals (so `0..n` does not glue into a float).

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `unwrap`, ...).
    Ident,
    /// A single punctuation character (`.`, `(`, `[`, `:`, ...).
    Punct,
    /// String, char, byte or numeric literal.  `text` keeps the raw source
    /// so integer literals can be recognised (`P003`).
    Literal,
    /// `// ...` comment, doc comments included.  `text` keeps the `//`.
    LineComment,
    /// `/* ... */` comment (possibly nested, possibly multi-line).
    BlockComment,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Raw source text of the token (comments keep their markers; long
    /// literals keep their quotes).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }

    /// True for a comment of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True for an integer literal (digits with optional `_` separators and
    /// a type suffix such as `0usize`; hex/octal/binary count too).
    pub fn is_integer_literal(&self) -> bool {
        if self.kind != TokKind::Literal {
            return false;
        }
        let mut chars = self.text.chars();
        match chars.next() {
            Some(c) if c.is_ascii_digit() => {}
            _ => return false,
        }
        // Anything with a decimal point or exponent is a float, not an
        // index; `0x`/`0b`/`0o` and suffixes remain integers.
        let text = self.text.as_str();
        if text.starts_with("0x") || text.starts_with("0X") {
            return true;
        }
        if text.contains('.') {
            return false;
        }
        // An `e`/`E` is an exponent only when followed by a digit or sign;
        // the `e` inside a type suffix (`0usize`) is not.
        for (i, c) in text.char_indices() {
            if c == 'e' || c == 'E' {
                let next = text[i + 1..].chars().next();
                if matches!(next, Some(d) if d.is_ascii_digit() || d == '+' || d == '-') {
                    return false;
                }
            }
        }
        true
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `source` into tokens.  Never fails: unterminated constructs are
/// closed at end of input (the rules only ever under-report on such files,
/// and rustc itself will reject them anyway).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        src: source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(0),
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => {
                    // Multi-byte UTF-8 punctuation (em-dashes in comments
                    // never reach here; in code it would be invalid Rust) is
                    // consumed byte-wise; the rules only match ASCII punct.
                    self.push_span(TokKind::Punct, self.pos, self.pos + 1, self.line);
                    self.pos += 1;
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push_span(&mut self, kind: TokKind, start: usize, end: usize, line: u32) {
        // Clamp to char boundaries defensively (punct fallback above may sit
        // inside a multi-byte char; such files contain no rule-relevant
        // tokens at that position).
        let end = end.min(self.src.len());
        if !self.src.is_char_boundary(start) || !self.src.is_char_boundary(end) {
            return;
        }
        self.tokens.push(Token {
            kind,
            text: self.src[start..end].to_string(),
            line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push_span(TokKind::LineComment, start, self.pos, self.line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        let mut depth = 1usize;
        self.pos += 2;
        while self.pos < self.bytes.len() && depth > 0 {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
        self.push_span(TokKind::BlockComment, start, self.pos, start_line);
    }

    /// A `"`-delimited string starting at `self.pos - prefix_len` (the
    /// prefix being `b`, `c`, ... already consumed by the caller).
    fn string_literal(&mut self, prefix_len: usize) {
        let start = self.pos - prefix_len;
        let start_line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    // An escape consumes the next byte too — which may be a
                    // newline (the line-continuation escape), so the line
                    // counter must still advance or every token after the
                    // string reports a stale line.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push_span(TokKind::Literal, start, self.pos, start_line);
    }

    /// A raw string `r"..."` / `r#"..."#` (possibly with a `b` prefix);
    /// `self.pos` sits on the `r`'s hashes-or-quote, `start` on the prefix.
    fn raw_string(&mut self, start: usize) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.bytes[self.pos] == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(1 + matched) == Some(b'#') {
                    matched += 1;
                }
                if matched == hashes {
                    self.pos += 1 + hashes;
                    break;
                }
            }
            self.pos += 1;
        }
        self.push_span(TokKind::Literal, start, self.pos, start_line);
    }

    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        // `'a` followed by another `'` is the char literal `'a'`; `'a` (or
        // `'abc`, `'_`) otherwise is a lifetime.  `'\...'` is always a char.
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(b'\\') => false,
            Some(b) if is_ident_start(b) => {
                let mut j = 2;
                while self.peek(j).is_some_and(is_ident_continue) {
                    j += 1;
                }
                self.peek(j) != Some(b'\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.pos += 1;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += 1;
            }
            self.push_span(TokKind::Lifetime, start, self.pos, self.line);
            return;
        }
        // Char (or byte-char) literal: scan to the closing quote.  Interior
        // bytes of multi-byte chars are never 0x27, so byte scanning is safe.
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    // `'\` + newline is malformed Rust, but keep the line
                    // counter honest anyway (mirrors `string_literal`).
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break, // unterminated; don't eat the file
                _ => self.pos += 1,
            }
        }
        self.push_span(TokKind::Literal, start, self.pos, self.line);
    }

    fn number(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                // `e`/`E` exponent may carry a sign: `1e-3`.
                if (b == b'e' || b == b'E')
                    && !self.src[start..].starts_with("0x")
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                {
                    self.pos += 2;
                    continue;
                }
                self.pos += 1;
            } else if b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // A digit after the dot means a float; `0..n` stays a range.
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push_span(TokKind::Literal, start, self.pos, self.line);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        let rest = &self.src[self.pos..];
        // String-ish prefixes: r" r#" b" b' br" br#" c" and raw idents r#x.
        for (prefix, raw) in [
            ("r\"", true),
            ("r#", true),
            ("b\"", false),
            ("br\"", true),
            ("br#", true),
            ("c\"", false),
            ("b'", false),
        ] {
            if rest.starts_with(prefix) {
                if prefix == "r#" {
                    // Raw ident (`r#type`) unless hashes lead to a quote.
                    let mut j = self.pos + 2;
                    while self.bytes.get(j) == Some(&b'#') {
                        j += 1;
                    }
                    if self.bytes.get(j) != Some(&b'"') {
                        self.pos += 2;
                        while self.peek(0).is_some_and(is_ident_continue) {
                            self.pos += 1;
                        }
                        self.push_span(TokKind::Ident, start, self.pos, self.line);
                        return;
                    }
                    self.pos += 1;
                    self.raw_string(start);
                    return;
                }
                if prefix == "b'" {
                    self.pos += 1;
                    self.char_or_lifetime();
                    // Re-tag the span to include the `b` prefix.
                    if let Some(last) = self.tokens.last_mut() {
                        last.text.insert(0, 'b');
                    }
                    return;
                }
                if raw {
                    // br" / br# / r": position on the hash-or-quote run.  A
                    // raw string NEVER honors `\` escapes, even with zero
                    // hashes — `r"C:\"` ends at the quote, so routing it
                    // through `string_literal` would swallow the rest of the
                    // line (and every rule-relevant token on it).
                    self.pos += prefix.len() - 1;
                    self.raw_string(start);
                    return;
                }
                // b" / c": plain string with a one-byte prefix.
                self.pos += 1;
                self.string_literal(1);
                return;
            }
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        self.push_span(TokKind::Ident, start, self.pos, self.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokKind, String)> {
        lex(source).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_punct_and_numbers() {
        let toks = kinds("let x = map.get(&k) + 0..n;");
        assert!(toks.contains(&(TokKind::Ident, "map".into())));
        assert!(toks.contains(&(TokKind::Ident, "get".into())));
        assert!(toks.contains(&(TokKind::Literal, "0".into())));
        assert!(toks.contains(&(TokKind::Ident, "n".into())));
        // `0..n` must not swallow the range dots.
        let dots = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Punct && t == ".")
            .count();
        assert_eq!(dots, 3, "{toks:?}");
    }

    #[test]
    fn floats_and_exponents_stay_single_literals() {
        let toks = kinds("a = 1.5e-3 + 0xff_usize;");
        assert!(toks.contains(&(TokKind::Literal, "1.5e-3".into())));
        assert!(toks.contains(&(TokKind::Literal, "0xff_usize".into())));
    }

    #[test]
    fn strings_hide_identifiers() {
        let toks = kinds(r#"let s = "unsafe unwrap(). // SAFETY:"; s.len()"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Literal));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let a = r#"has "quotes" and unwrap()"#; let b = b"unsafe";"##);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Literal).count(),
            2
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert!(toks.contains(&(TokKind::Literal, "'x'".into())));
        assert!(toks.contains(&(TokKind::Literal, "'\\n'".into())));
    }

    #[test]
    fn comments_are_tokens_with_lines() {
        let toks = lex("// one\nlet x = 1; /* two\nlines */ let y = 2;");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert_eq!(toks[0].line, 1);
        let block = toks
            .iter()
            .find(|t| t.kind == TokKind::BlockComment)
            .unwrap();
        assert_eq!(block.line, 2);
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokKind::Ident, "code".into()));
    }

    #[test]
    fn zero_hash_raw_strings_ignore_escapes() {
        // `r"C:\"` ends at the quote — the backslash is NOT an escape.  A
        // lexer that treats it as one swallows `; x.unwrap()` into the
        // literal and hides the unwrap from every rule.
        let toks = kinds("let p = r\"C:\\\"; x.unwrap();");
        assert!(
            toks.contains(&(TokKind::Literal, "r\"C:\\\"".into())),
            "{toks:?}"
        );
        assert!(
            toks.iter()
                .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"),
            "code after the raw string must stay visible: {toks:?}"
        );
        // Same for byte raw strings.
        let toks = kinds("let p = br\"a\\\"; y.unwrap();");
        assert!(
            toks.iter()
                .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"),
            "{toks:?}"
        );
    }

    #[test]
    fn backslash_newline_escapes_keep_line_numbers_honest() {
        // The line-continuation escape `\` + newline is consumed as one
        // escape; the newline must still count.
        let toks = lex("let s = \"a\\\n   b\";\nlet after = 1;");
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3, "{toks:?}");
    }

    #[test]
    fn multiline_raw_strings_count_their_lines() {
        let toks = lex("let s = r#\"one\ntwo\nthree\"#;\nlet next = 2;");
        let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 4, "{toks:?}");
    }

    #[test]
    fn lifetime_followed_by_comparison_is_not_a_char() {
        // `'a>` in a generic list, and `'_` placeholders.
        let toks = kinds("fn f<'a, '_>(x: &'a u32) -> bool { *x < 'b' as u32 }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            3,
            "{toks:?}"
        );
        assert!(toks.contains(&(TokKind::Literal, "'b'".into())));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokKind::Ident, "r#type".into())));
    }

    #[test]
    fn integer_literal_classification() {
        let toks = lex("a[0] b[1_000] c[0usize] d[1.5] e[0x10]");
        let ints: Vec<bool> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(Token::is_integer_literal)
            .collect();
        assert_eq!(ints, vec![true, true, true, false, true]);
    }
}
