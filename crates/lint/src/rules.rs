//! The rule engine: per-file token/line analysis for the D (determinism),
//! U (unsafe hygiene), P (panic freedom), R (resource bounds) and
//! L (lint discipline) rules.
//!
//! Rule A (API discipline) needs cross-file information and lives in
//! [`crate::lint_workspace`]; this module exposes the per-file pieces it
//! builds on ([`FileReport::exec_fns`], [`FileReport::pub_fn_names`]).
//!
//! Every rule here is scoped by *where* code lives:
//!
//! * **test code** — files under `tests/`, `benches/` or `examples/`
//!   directories, plus `#[test]` / `#[cfg(test)]` items anywhere — is exempt
//!   from the D and P rules (tests may unwrap and may iterate however they
//!   like) and from the U002 allowlist (a test-only `unsafe` harness such as
//!   a counting allocator is fine *where it is*), but **not** from U001:
//!   every `unsafe` in the tree needs its `// SAFETY:` argument.
//! * **request-path modules** (rule P) and **kernel crates** (rule D002)
//!   are named in [`Config`](crate::Config).

use crate::lexer::{lex, TokKind, Token};
use crate::{Config, Finding, UnsafeSite};

/// Methods whose receiver order is the hash-iteration order.
const ITERATION_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Everything one file contributes to the workspace report.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings from the path-scoped rules (D/U/P/L), suppressions applied.
    pub findings: Vec<Finding>,
    /// Every `unsafe` occurrence, for the machine-readable inventory.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// `pub fn *_exec` kernels declared in this file (rule A input).
    pub exec_fns: Vec<ExecFn>,
    /// All `pub fn` names in this file (rule A twin lookup).
    pub pub_fn_names: Vec<String>,
}

/// One `pub fn *_exec` declaration.
#[derive(Debug, Clone)]
pub struct ExecFn {
    /// The function name (ends with `_exec`).
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
}

/// True for paths whose entire contents are test/bench/example code.
pub fn is_test_path(relpath: &str) -> bool {
    let p = relpath.replace('\\', "/");
    p.starts_with("tests/")
        || p.contains("/tests/")
        || p.starts_with("benches/")
        || p.contains("/benches/")
        || p.starts_with("examples/")
        || p.contains("/examples/")
}

/// Analyzes one file.  `relpath` is workspace-relative with forward slashes
/// — several rules are keyed on it (request-path modules, kernel crates,
/// the unsafe allowlist).
pub fn analyze(relpath: &str, source: &str, cfg: &Config) -> FileReport {
    let toks = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let file_is_test = is_test_path(relpath);
    let test_mask = test_region_mask(&toks);
    let in_test = |i: usize| file_is_test || test_mask[i];

    let mut findings = Vec::new();
    let mut report = FileReport::default();

    let directives = collect_directives(relpath, &toks, &mut findings);

    rule_d001(relpath, &toks, &in_test, &mut findings);
    rule_d002_d003(relpath, &toks, &in_test, cfg, &mut findings);
    rule_u(
        relpath,
        &toks,
        &lines,
        &in_test,
        cfg,
        &mut findings,
        &mut report.unsafe_sites,
    );
    rule_p(relpath, &toks, &in_test, cfg, &mut findings);
    rule_r001(relpath, &toks, &in_test, cfg, &mut findings);
    collect_fns(&toks, &test_mask, file_is_test, &mut report);

    // Apply `// nrp-lint: allow(rule) — reason` suppressions last, so a
    // directive covers whichever rule fired on its target line.
    findings.retain(|f| {
        !directives
            .iter()
            .any(|d| d.rule == f.rule && d.target_line == f.line)
    });
    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    report.findings = findings;
    report
}

// ---------------------------------------------------------------------------
// Test regions
// ---------------------------------------------------------------------------

/// Marks tokens covered by an item carrying a `test`-ish attribute
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`): the attribute
/// itself, any stacked attributes after it, and the item body through its
/// matching close brace (or terminating semicolon).
pub fn test_region_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && next_sig(toks, i + 1).is_some_and(|j| toks[j].is_punct('[')) {
            let attr_start = i;
            let (attr_end, is_test) = scan_attribute(toks, i);
            if is_test {
                let end = scan_item_end(toks, attr_end + 1);
                for slot in mask.iter_mut().take(end.min(toks.len())).skip(attr_start) {
                    *slot = true;
                }
                i = end;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// From a `#` token, returns (index of the closing `]`, attribute mentions
/// `test`).
fn scan_attribute(toks: &[Token], hash: usize) -> (usize, bool) {
    let mut i = hash + 1;
    let mut depth = 0usize;
    let mut is_test = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i, is_test);
            }
        } else if t.is_ident("test") {
            is_test = true;
        }
        i += 1;
    }
    (toks.len() - 1, is_test)
}

/// From the token after an attribute, returns the index just past the item:
/// consumes stacked attributes, then scans to the matching `}` of the first
/// body brace (or past a terminating `;` for brace-less items).
fn scan_item_end(toks: &[Token], mut i: usize) -> usize {
    // Stacked attributes (`#[cfg(test)] #[ignore] fn ...`).
    while i < toks.len()
        && toks[i].is_punct('#')
        && next_sig(toks, i + 1).is_some_and(|j| toks[j].is_punct('['))
    {
        let (end, _) = scan_attribute(toks, i);
        i = end + 1;
    }
    let mut paren = 0i64;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct(';') && paren == 0 {
            return i + 1;
        } else if t.is_punct('{') && paren == 0 {
            let mut depth = 0i64;
            while i < toks.len() {
                if toks[i].is_punct('{') {
                    depth += 1;
                } else if toks[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                i += 1;
            }
            return toks.len();
        }
        i += 1;
    }
    toks.len()
}

/// Index of the next non-comment token at or after `i`.
fn next_sig(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !toks[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index of the previous non-comment token at or before `i`.
fn prev_sig(toks: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        if !toks[j].is_comment() {
            return Some(j);
        }
    }
}

// ---------------------------------------------------------------------------
// Allow directives (and rule L001)
// ---------------------------------------------------------------------------

struct Directive {
    rule: String,
    target_line: u32,
}

/// Well-formed (reasoned) `allow` directives of a file, as
/// `(rule, target line)` pairs — the semantic pass applies these to the
/// workspace-level findings (K/H/P004) the per-file engine never sees.
pub fn suppressions(toks: &[Token]) -> Vec<(String, u32)> {
    let mut sink = Vec::new();
    collect_directives("", toks, &mut sink)
        .into_iter()
        .map(|d| (d.rule, d.target_line))
        .collect()
}

/// Parses `// nrp-lint: allow(rule-id) — reason` comments.  A directive
/// without a reason is itself a finding (L001) and suppresses nothing.
fn collect_directives(
    relpath: &str,
    toks: &[Token],
    findings: &mut Vec<Finding>,
) -> Vec<Directive> {
    let mut directives = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if !tok.is_comment() || !tok.text.contains("nrp-lint:") {
            continue;
        }
        let Some(rest) = tok.text.split("nrp-lint:").nth(1) else {
            continue;
        };
        let rest = rest.trim_start();
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .map(|(rule, after)| (rule.trim().to_string(), after));
        let Some((rule, after)) = parsed else {
            findings.push(Finding::new(
                relpath,
                tok.line,
                "L001",
                "malformed `nrp-lint:` directive (expected `allow(rule-id) — reason`)".into(),
            ));
            continue;
        };
        let reason = after
            .trim_matches(|c: char| {
                c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | ',') || c == '*'
            })
            .trim();
        if reason.is_empty() {
            findings.push(Finding::new(
                relpath,
                tok.line,
                "L001",
                format!("`allow({rule})` without a reason — append `— <why this is sound>`"),
            ));
            continue;
        }
        // A trailing directive covers its own line; a standalone comment
        // covers the next code line.
        let standalone = !toks[..i]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| !t.is_comment());
        let target_line = if standalone {
            next_sig(toks, i + 1)
                .map(|j| toks[j].line)
                .unwrap_or(tok.line)
        } else {
            tok.line
        };
        directives.push(Directive { rule, target_line });
    }
    directives
}

// ---------------------------------------------------------------------------
// Rule D001 — HashMap/HashSet iteration
// ---------------------------------------------------------------------------

/// Names bound (as locals, parameters or fields) to a `HashMap`/`HashSet`
/// in this file, found by the declaration patterns `name: [&mut] Hash…` and
/// `name = Hash…::…`.
fn tracked_hash_names(toks: &[Token]) -> Vec<String> {
    let mut tracked = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if !(tok.is_ident("HashMap") || tok.is_ident("HashSet")) {
            continue;
        }
        let Some(mut j) = prev_sig(toks, i) else {
            continue;
        };
        // Skip `&`, `mut` and lifetimes between the binder and the type.
        for _ in 0..3 {
            if toks[j].is_punct('&') || toks[j].is_ident("mut") || toks[j].kind == TokKind::Lifetime
            {
                match prev_sig(toks, j) {
                    Some(p) => j = p,
                    None => break,
                }
            }
        }
        let binder = if toks[j].is_punct(':') || toks[j].is_punct('=') {
            prev_sig(toks, j).map(|p| &toks[p])
        } else {
            None
        };
        if let Some(b) = binder {
            if b.kind == TokKind::Ident && !matches!(b.text.as_str(), "let" | "mut" | "pub") {
                tracked.push(b.text.clone());
            }
        }
    }
    tracked
}

fn rule_d001(
    relpath: &str,
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let tracked = tracked_hash_names(toks);
    if tracked.is_empty() {
        return;
    }
    let is_tracked = |t: &Token| t.kind == TokKind::Ident && tracked.contains(&t.text);
    for (i, tok) in toks.iter().enumerate() {
        if in_test(i) || tok.is_comment() {
            continue;
        }
        // `<tracked>.iter()` and friends.
        if is_tracked(tok) {
            if let Some(dot) = next_sig(toks, i + 1) {
                if toks[dot].is_punct('.') {
                    if let Some(m) = next_sig(toks, dot + 1) {
                        let method = &toks[m];
                        if method.kind == TokKind::Ident
                            && ITERATION_METHODS.contains(&method.text.as_str())
                            && next_sig(toks, m + 1).is_some_and(|p| toks[p].is_punct('('))
                        {
                            findings.push(Finding::new(
                                relpath,
                                tok.line,
                                "D001",
                                format!(
                                    "`{}.{}()` iterates a HashMap/HashSet in nondeterministic \
                                     order — sort first, use a BTree/Vec, or allow with a reason",
                                    tok.text, method.text
                                ),
                            ));
                        }
                    }
                }
            }
        }
        // `for x in [&mut] <tracked> {`.
        if tok.is_ident("in") {
            let Some(mut j) = next_sig(toks, i + 1) else {
                continue;
            };
            for _ in 0..2 {
                if toks[j].is_punct('&') || toks[j].is_ident("mut") {
                    match next_sig(toks, j + 1) {
                        Some(n) => j = n,
                        None => break,
                    }
                }
            }
            if is_tracked(&toks[j]) && next_sig(toks, j + 1).is_some_and(|b| toks[b].is_punct('{'))
            {
                findings.push(Finding::new(
                    relpath,
                    toks[j].line,
                    "D001",
                    format!(
                        "`for … in {}` iterates a HashMap/HashSet in nondeterministic order — \
                         sort first, use a BTree/Vec, or allow with a reason",
                        toks[j].text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rules D002 (wall-clock in kernel crates), O001 (wall-clock outside the
// clock-owning crate) and D003 (unseeded RNG)
// ---------------------------------------------------------------------------

fn rule_d002_d003(
    relpath: &str,
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    let in_kernel = cfg
        .kernel_prefixes
        .iter()
        .any(|p| relpath.starts_with(p.as_str()));
    let timing_exempt = cfg.timing_allowed.iter().any(|p| p == relpath);
    let kernel = in_kernel && !timing_exempt;
    let clock_owner = cfg
        .clock_owner
        .iter()
        .any(|p| relpath.starts_with(p.as_str()));
    for (i, tok) in toks.iter().enumerate() {
        if in_test(i) || tok.kind != TokKind::Ident {
            continue;
        }
        let path_call = |name: &str| -> bool {
            tok.is_ident(name)
                && next_sig(toks, i + 1).is_some_and(|a| toks[a].is_punct(':'))
                && next_sig(toks, i + 2).is_some_and(|b| toks[b].is_punct(':'))
        };
        if path_call("Instant") || path_call("SystemTime") {
            if kernel {
                findings.push(Finding::new(
                    relpath,
                    tok.line,
                    "D002",
                    format!(
                        "`{}::…` reads the wall clock inside a kernel crate — timing belongs to \
                         the observability layer (`nrp_obs::clock`), or allow with a reason",
                        tok.text
                    ),
                ));
            } else if !in_kernel && !clock_owner && !timing_exempt {
                findings.push(Finding::new(
                    relpath,
                    tok.line,
                    "O001",
                    format!(
                        "`{}::…` reads the wall clock outside the clock-owning crate — route \
                         timing through `nrp_obs::clock::now()`, or allow with a reason",
                        tok.text
                    ),
                ));
            }
        }
        if matches!(
            tok.text.as_str(),
            "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng"
        ) || (path_call("rand")
            && next_sig(toks, i + 3).is_some_and(|j| toks[j].is_ident("random")))
        {
            findings.push(Finding::new(
                relpath,
                tok.line,
                "D003",
                format!(
                    "`{}` constructs an unseeded RNG — every RNG in this workspace must come \
                     from an explicit seed",
                    tok.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rules U001/U002 — unsafe hygiene (plus the inventory)
// ---------------------------------------------------------------------------

/// True when the lines immediately above `line` (1-based) form a
/// comment/attribute block containing `SAFETY:` (or the line itself does).
fn has_safety_comment(lines: &[&str], line: u32) -> bool {
    let idx = line as usize - 1;
    if idx >= lines.len() {
        return false;
    }
    if lines[idx].contains("SAFETY:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        let continues = t.starts_with("//")
            || t.starts_with("#[")
            || t.starts_with("#!")
            || t.starts_with("/*")
            || t.starts_with('*');
        if !continues {
            return false;
        }
        if t.contains("SAFETY:") {
            return true;
        }
    }
    false
}

fn rule_u(
    relpath: &str,
    toks: &[Token],
    lines: &[&str],
    in_test: &dyn Fn(usize) -> bool,
    cfg: &Config,
    findings: &mut Vec<Finding>,
    inventory: &mut Vec<UnsafeSite>,
) {
    for (i, tok) in toks.iter().enumerate() {
        if !tok.is_ident("unsafe") {
            continue;
        }
        let kind = match next_sig(toks, i + 1) {
            Some(j) if toks[j].is_punct('{') => "block",
            Some(j) if toks[j].is_ident("fn") => "fn",
            Some(j) if toks[j].is_ident("impl") => "impl",
            Some(j) if toks[j].is_ident("trait") => "trait",
            Some(j) if toks[j].is_ident("extern") => "extern",
            _ => "other",
        };
        let documented = has_safety_comment(lines, tok.line);
        let test_code = in_test(i);
        let allowlisted = cfg.unsafe_allowed.iter().any(|p| p == relpath);
        inventory.push(UnsafeSite {
            file: relpath.to_string(),
            line: tok.line,
            kind: kind.to_string(),
            documented,
            allowlisted,
            test_code,
            reachable_from: Vec::new(),
        });
        if !documented {
            findings.push(Finding::new(
                relpath,
                tok.line,
                "U001",
                format!(
                    "`unsafe` {kind} without a `// SAFETY:` comment immediately above — state \
                     the aliasing/lifetime/initialization argument"
                ),
            ));
        }
        if !test_code && !allowlisted {
            findings.push(Finding::new(
                relpath,
                tok.line,
                "U002",
                format!(
                    "`unsafe` is denied outside the allowlisted modules ({}) — move the \
                     unsafety behind a safe kernel API or extend the allowlist deliberately",
                    cfg.unsafe_allowed.join(", ")
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rules P001/P002/P003 — panic freedom in the serving request path
// ---------------------------------------------------------------------------

fn rule_p(
    relpath: &str,
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    if !cfg.request_path.iter().any(|p| p == relpath) {
        return;
    }
    for (i, tok) in toks.iter().enumerate() {
        if in_test(i) || tok.kind != TokKind::Ident {
            continue;
        }
        // P001: `.unwrap()` / `.expect(` — the `_or`/`_err` variants are
        // fine (they do not panic on the request path).
        if matches!(tok.text.as_str(), "unwrap" | "expect")
            && prev_sig(toks, i).is_some_and(|p| toks[p].is_punct('.'))
            && next_sig(toks, i + 1).is_some_and(|n| toks[n].is_punct('('))
        {
            findings.push(Finding::new(
                relpath,
                tok.line,
                "P001",
                format!(
                    "`.{}()` on the serving request path can kill a worker thread — return a \
                     typed `HttpError`/5xx response instead",
                    tok.text
                ),
            ));
        }
        // P002: panic-family macros.
        if matches!(tok.text.as_str(), "panic" | "todo" | "unimplemented")
            && next_sig(toks, i + 1).is_some_and(|n| toks[n].is_punct('!'))
        {
            findings.push(Finding::new(
                relpath,
                tok.line,
                "P002",
                format!(
                    "`{}!` on the serving request path — answer with an error response",
                    tok.text
                ),
            ));
        }
        // P003: slice-index-by-literal (`headers[0]`).
        if let (Some(open), true) = (
            next_sig(toks, i + 1),
            true, // receiver is this ident
        ) {
            if toks[open].is_punct('[') {
                if let Some(lit) = next_sig(toks, open + 1) {
                    if toks[lit].is_integer_literal()
                        && next_sig(toks, lit + 1).is_some_and(|c| toks[c].is_punct(']'))
                    {
                        findings.push(Finding::new(
                            relpath,
                            tok.line,
                            "P003",
                            format!(
                                "`{}[{}]` indexes by literal on the request path — use `.get({})` \
                                 and handle `None`",
                                tok.text, toks[lit].text, toks[lit].text
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule R001 — unbounded growth on the serving request path
// ---------------------------------------------------------------------------

/// Methods that grow a collection by one element.
const GROWTH_METHODS: &[&str] = &["push", "push_back"];

/// True when the token at `i` starts a comparison operator.  `forward`
/// selects the reading direction: after a `.len()` call (`x.len() < cap`,
/// `x.len() == cap`) or before the receiver (`cap > x.len()`,
/// `cap >= x.len()`).  A bare `=` only counts as part of `==`/`<=`/`>=`/
/// `!=` — plain assignment (`let n = x.len()`) is not a bound check.
fn comparison_at(toks: &[Token], i: usize, forward: bool) -> bool {
    let t = &toks[i];
    if t.is_punct('<') || t.is_punct('>') {
        return true;
    }
    if t.is_punct('=') {
        return if forward {
            next_sig(toks, i + 1).is_some_and(|n| toks[n].is_punct('='))
        } else {
            prev_sig(toks, i).is_some_and(|p| {
                toks[p].is_punct('=')
                    || toks[p].is_punct('<')
                    || toks[p].is_punct('>')
                    || toks[p].is_punct('!')
            })
        };
    }
    t.is_punct('!') && forward && next_sig(toks, i + 1).is_some_and(|n| toks[n].is_punct('='))
}

/// Collection names this file visibly bounds: bound to a
/// `Type::with_capacity(…)` call (as a `let` binding or a struct-literal
/// field), or compared through `.len()` against a limit somewhere in the
/// file.  Purely syntactic, like [`tracked_hash_names`]: the point is to
/// force every request-path growth site to carry *visible* evidence of its
/// bound (or an `allow` stating it), not to prove the bound.
fn bounded_collection_names(toks: &[Token]) -> Vec<String> {
    let mut bounded = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        // `binder = Type::with_capacity(…)` / `field: Type::with_capacity(…)`.
        if tok.is_ident("with_capacity") {
            let name = prev_sig(toks, i)
                .filter(|&a| toks[a].is_punct(':'))
                .and_then(|a| prev_sig(toks, a))
                .filter(|&b| toks[b].is_punct(':'))
                .and_then(|b| prev_sig(toks, b))
                .filter(|&t| toks[t].kind == TokKind::Ident)
                .and_then(|t| binder_before(toks, t));
            if let Some(name) = name {
                bounded.push(name);
            }
        }
        // `name.len()` adjacent to a comparison — a visible bound check.
        if tok.is_ident("len") && prev_sig(toks, i).is_some_and(|d| toks[d].is_punct('.')) {
            let receiver = prev_sig(toks, i)
                .and_then(|d| prev_sig(toks, d))
                .filter(|&r| toks[r].kind == TokKind::Ident);
            let close = next_sig(toks, i + 1)
                .filter(|&o| toks[o].is_punct('('))
                .and_then(|o| next_sig(toks, o + 1))
                .filter(|&c| toks[c].is_punct(')'));
            let (Some(receiver), Some(close)) = (receiver, close) else {
                continue;
            };
            // Walk `self.free` / `state.queue.inner` back to the start of
            // the place expression, so a comparison before it is seen.
            let mut expr_start = receiver;
            while let Some(dot) = prev_sig(toks, expr_start).filter(|&d| toks[d].is_punct('.')) {
                match prev_sig(toks, dot).filter(|&p| toks[p].kind == TokKind::Ident) {
                    Some(p) => expr_start = p,
                    None => break,
                }
            }
            let cmp_after = next_sig(toks, close + 1).is_some_and(|n| comparison_at(toks, n, true));
            let cmp_before =
                prev_sig(toks, expr_start).is_some_and(|p| comparison_at(toks, p, false));
            if cmp_after || cmp_before {
                bounded.push(toks[receiver].text.clone());
            }
        }
    }
    bounded
}

/// The name bound by an initializer whose right-hand side is
/// `Type::with_capacity(…)`, where `type_idx` is the `Type` token: either
/// the field of a struct-literal `field: Type::with_capacity(…)` or the
/// binding of `let [mut] name[: T] = Type::with_capacity(…)`.
fn binder_before(toks: &[Token], type_idx: usize) -> Option<String> {
    let sep = prev_sig(toks, type_idx)?;
    if toks[sep].is_punct(':') {
        let name = prev_sig(toks, sep)?;
        // A second `:` means this was a path segment (`vec::Vec::…`), not a
        // struct-literal field.
        (toks[name].kind == TokKind::Ident).then(|| toks[name].text.clone())
    } else if toks[sep].is_punct('=') {
        // `let mut name: Vec<X> = Vec::with_capacity(…)` — scan back to the
        // `let` of this statement and take its binding.
        let mut j = sep;
        loop {
            j = prev_sig(toks, j)?;
            let t = &toks[j];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                return None;
            }
            if t.is_ident("let") {
                let mut n = next_sig(toks, j + 1)?;
                if toks[n].is_ident("mut") {
                    n = next_sig(toks, n + 1)?;
                }
                return (toks[n].kind == TokKind::Ident).then(|| toks[n].text.clone());
            }
        }
    } else {
        None
    }
}

/// R001: every `.push(…)` / `.push_back(…)` in a request-path module must
/// target a collection with visible evidence of a bound — a
/// `with_capacity` initialization or a `len()` comparison somewhere in the
/// file — or carry an `allow(R001)` directive stating the bound.  An
/// overload-resilient server must not hold unbounded buffers on the paths
/// attackers (or load spikes) feed.
fn rule_r001(
    relpath: &str,
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    if !cfg.request_path.iter().any(|p| p == relpath) {
        return;
    }
    let bounded = bounded_collection_names(toks);
    for (i, tok) in toks.iter().enumerate() {
        if in_test(i) || tok.kind != TokKind::Ident {
            continue;
        }
        if !GROWTH_METHODS.contains(&tok.text.as_str()) {
            continue;
        }
        let Some(dot) = prev_sig(toks, i).filter(|&d| toks[d].is_punct('.')) else {
            continue;
        };
        if !next_sig(toks, i + 1).is_some_and(|n| toks[n].is_punct('(')) {
            continue;
        }
        let receiver = prev_sig(toks, dot).filter(|&r| toks[r].kind == TokKind::Ident);
        let name = match receiver {
            Some(r) => toks[r].text.clone(),
            None => "<expr>".to_string(),
        };
        if bounded.contains(&name) {
            continue;
        }
        findings.push(Finding::new(
            relpath,
            tok.line,
            "R001",
            format!(
                "`{name}.{}()` grows a collection on the serving request path with no \
                 visible bound — initialize it `with_capacity`, guard it with a `len()` \
                 comparison, or allow with a reason stating the bound",
                tok.text
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// Rule A inputs — pub fn collection
// ---------------------------------------------------------------------------

/// Collects `pub fn` names and the `*_exec` subset (rule A runs the
/// cross-file checks in `lint_workspace`).  Test regions are skipped.
fn collect_fns(toks: &[Token], test_mask: &[bool], file_is_test: bool, report: &mut FileReport) {
    if file_is_test {
        return;
    }
    for (i, tok) in toks.iter().enumerate() {
        if test_mask[i] || !tok.is_ident("pub") {
            continue;
        }
        // `pub` / `pub(crate)` / `pub(in …)` then optional qualifiers.
        let mut j = match next_sig(toks, i + 1) {
            Some(j) => j,
            None => continue,
        };
        if toks[j].is_punct('(') {
            let mut depth = 0i64;
            while j < toks.len() {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j = match next_sig(toks, j + 1) {
                Some(j) => j,
                None => continue,
            };
        }
        while toks[j].is_ident("const") || toks[j].is_ident("unsafe") || toks[j].is_ident("async") {
            j = match next_sig(toks, j + 1) {
                Some(j) => j,
                None => break,
            };
        }
        if !toks[j].is_ident("fn") {
            continue;
        }
        let Some(name_idx) = next_sig(toks, j + 1) else {
            continue;
        };
        let name = &toks[name_idx];
        if name.kind != TokKind::Ident {
            continue;
        }
        report.pub_fn_names.push(name.text.clone());
        if let Some(base) = name.text.strip_suffix("_exec") {
            if !base.is_empty() {
                report.exec_fns.push(ExecFn {
                    name: name.text.clone(),
                    line: name.line,
                });
            }
        }
    }
}
