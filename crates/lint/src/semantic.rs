//! The workspace-level semantic pass: everything that needs the item
//! parser, the call graph and the lock model together.
//!
//! Produces the K findings (via [`crate::locks`]), the H findings (static
//! zero-allocation checking of warm paths), transitive panic reachability
//! (P004), the call-graph-backed A rules, per-unsafe-site reachability for
//! the inventory artifact, and the `lock-order.json` payload.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{Ambiguity, CallGraph, FileIndex};
use crate::lexer::TokKind;
use crate::locks::{analyze_locks, LockAnalysis};
use crate::parser::{next_sig, prev_sig};
use crate::rules::suppressions;
use crate::{Config, Finding};

/// Allocation constructors (H001): `Type::ctor` pairs that always allocate
/// (or may, for `with_capacity`) on the heap.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "VecDeque", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Allocating method calls (H001).
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "collect"];

/// Allocating macros (H001).
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Amortized growth operations (H002) — exempt in `warm_proven` files,
/// whose steady-state allocation freedom a counting-allocator test proves.
const GROWTH_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "reserve",
    "resize",
    "append",
];

/// Constructor names exempt from H when the *type* (not a function) is the
/// configured root: building a `PushWorkspace` is the cold path.
const COLD_CTORS: &[&str] = &["new", "with_capacity", "default"];

/// What the semantic pass feeds back into the workspace report.
#[derive(Debug, Default)]
pub struct SemanticReport {
    /// K/H/P004/A findings, file-local suppressions already applied.
    pub findings: Vec<Finding>,
    /// Call sites that resolved to more than one candidate.
    pub ambiguities: Vec<Ambiguity>,
    /// Pretty-printed `lock-order.json` payload.
    pub lock_order_json: String,
    /// Denominator of the lock-coverage self-check: every
    /// `Mutex`/`RwLock`/`Condvar` identifier in the workspace.
    pub lock_type_sites: usize,
    /// Named lock declarations discovered.
    pub lock_decls: usize,
    /// `(file, line)` of each unsafe site -> public functions that
    /// transitively reach its enclosing function.
    pub unsafe_reachable: BTreeMap<(String, u32), Vec<String>>,
}

/// Runs the semantic pass over the full workspace source set.
pub fn analyze_workspace(sources: &[(String, String)], cfg: &Config) -> SemanticReport {
    let files: Vec<FileIndex> = sources
        .iter()
        .map(|(rel, src)| FileIndex::build(rel, src))
        .collect();
    let graph = CallGraph::build(&files);
    let locks = analyze_locks(&files, &graph, cfg);

    let mut report = SemanticReport {
        ambiguities: graph.ambiguities.clone(),
        lock_type_sites: locks.type_sites,
        lock_decls: locks.decls.len(),
        lock_order_json: lock_order_json(&locks),
        ..SemanticReport::default()
    };
    let mut findings = locks.findings.clone();

    rule_h(&files, &graph, cfg, &mut findings);
    rule_p004(&files, &graph, cfg, &mut findings);
    rule_a(&files, &graph, &mut findings);
    report.unsafe_reachable = unsafe_reachability(&files, &graph);

    // File-local `// nrp-lint: allow(rule) — reason` directives suppress
    // semantic findings exactly like per-file ones.
    let mut allowed: BTreeMap<&str, Vec<(String, u32)>> = BTreeMap::new();
    for fi in &files {
        allowed.insert(&fi.relpath, suppressions(&fi.toks));
    }
    findings.retain(|f| {
        !allowed
            .get(f.file.as_str())
            .is_some_and(|sup| sup.iter().any(|(r, l)| *r == f.rule && *l == f.line))
    });
    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    findings.dedup();
    report.findings = findings;
    report
}

/// Root node set for the H rules: functions named in `hot_roots` plus all
/// methods of types named there (minus cold constructors).
fn hot_root_ids(graph: &CallGraph, cfg: &Config) -> BTreeSet<usize> {
    let mut roots = BTreeSet::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if n.is_test {
            continue;
        }
        let fn_root = cfg.hot_roots.contains(&n.name);
        let ty_root = n
            .impl_type
            .as_deref()
            .is_some_and(|t| cfg.hot_roots.iter().any(|r| r == t))
            && !COLD_CTORS.contains(&n.name.as_str());
        if fn_root || ty_root {
            roots.insert(id);
        }
    }
    roots
}

/// H001/H002 — static zero-allocation checking of warm paths.
fn rule_h(files: &[FileIndex], graph: &CallGraph, cfg: &Config, findings: &mut Vec<Finding>) {
    let roots = hot_root_ids(graph, cfg);
    if roots.is_empty() {
        return;
    }
    let reachable = graph.reachable_from(&roots);
    for &id in &reachable {
        let node = &graph.nodes[id];
        if node.is_test {
            continue;
        }
        let fi = &files[node.file_idx];
        let warm_proven = cfg.warm_proven.contains(&fi.relpath);
        let chain = || chain_from_roots(graph, &roots, id);
        let toks = &fi.toks;
        for i in fi.fns[node.fn_idx].body.clone() {
            let tok = &toks[i];
            if tok.kind != TokKind::Ident {
                continue;
            }
            let name = tok.text.as_str();
            // Macros: `format!(…)`, `vec![…]`.
            if ALLOC_MACROS.contains(&name)
                && next_sig(toks, i + 1).is_some_and(|p| toks[p].is_punct('!'))
            {
                findings.push(Finding::new(
                    &fi.relpath,
                    tok.line,
                    "H001",
                    format!(
                        "`{name}!` allocates on the warm path ({}) — preallocate in the \
                         workspace or return a typed value",
                        chain()
                    ),
                ));
                continue;
            }
            // Constructors: `Vec::new(…)`, `Box::new(…)`, `String::from(…)`.
            if ALLOC_TYPES.contains(&name) {
                if let Some(ctor) = path_segment_after(toks, i) {
                    if ALLOC_CTORS.contains(&ctor.text.as_str()) {
                        findings.push(Finding::new(
                            &fi.relpath,
                            tok.line,
                            "H001",
                            format!(
                                "`{name}::{}` allocates on the warm path ({}) — reuse the \
                                 workspace's buffers instead",
                                ctor.text,
                                chain()
                            ),
                        ));
                        continue;
                    }
                }
            }
            // Method calls: `.to_string()`, `.collect()`, and growth ops.
            let is_method = prev_sig(toks, i).is_some_and(|p| toks[p].is_punct('.'))
                && next_sig(toks, i + 1).is_some_and(|p| toks[p].is_punct('('));
            if is_method && ALLOC_METHODS.contains(&name) {
                findings.push(Finding::new(
                    &fi.relpath,
                    tok.line,
                    "H001",
                    format!(
                        "`.{name}()` allocates on the warm path ({}) — write into a \
                         reused buffer",
                        chain()
                    ),
                ));
                continue;
            }
            if is_method && !warm_proven && GROWTH_METHODS.contains(&name) {
                findings.push(Finding::new(
                    &fi.relpath,
                    tok.line,
                    "H002",
                    format!(
                        "`.{name}()` may grow its container on the warm path ({}) — \
                         preallocate, or move the function into a `warm_proven` file \
                         backed by a counting-allocator test",
                        chain()
                    ),
                ));
            }
        }
    }
}

/// The `Seg` of `Type::Seg` when the token at `ty` is followed by `::`.
fn path_segment_after(toks: &[crate::lexer::Token], ty: usize) -> Option<&crate::lexer::Token> {
    let c1 = next_sig(toks, ty + 1).filter(|&p| toks[p].is_punct(':'))?;
    let c2 = next_sig(toks, c1 + 1).filter(|&p| toks[p].is_punct(':'))?;
    let seg = next_sig(toks, c2 + 1)?;
    (toks[seg].kind == TokKind::Ident).then(|| &toks[seg])
}

/// P004 — transitive panic reachability: panic sites in functions reachable
/// from the request path, outside the request-path files themselves (those
/// are already covered line-by-line by P001/P002).
fn rule_p004(files: &[FileIndex], graph: &CallGraph, cfg: &Config, findings: &mut Vec<Finding>) {
    let roots: BTreeSet<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.is_test && cfg.request_path.contains(&n.file))
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return;
    }
    let reachable = graph.reachable_from(&roots);
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for &id in &reachable {
        let node = &graph.nodes[id];
        if node.is_test || cfg.request_path.contains(&node.file) {
            continue;
        }
        let fi = &files[node.file_idx];
        let toks = &fi.toks;
        for i in fi.fns[node.fn_idx].body.clone() {
            let tok = &toks[i];
            if tok.kind != TokKind::Ident {
                continue;
            }
            let panic_site = match tok.text.as_str() {
                "unwrap" | "expect" => {
                    prev_sig(toks, i).is_some_and(|p| toks[p].is_punct('.'))
                        && next_sig(toks, i + 1).is_some_and(|p| toks[p].is_punct('('))
                }
                "panic" | "todo" | "unimplemented" => {
                    next_sig(toks, i + 1).is_some_and(|p| toks[p].is_punct('!'))
                }
                _ => false,
            };
            if !panic_site || !seen.insert((fi.relpath.clone(), tok.line)) {
                continue;
            }
            findings.push(Finding::new(
                &fi.relpath,
                tok.line,
                "P004",
                format!(
                    "`{}` can panic and is reachable from the serving request path ({}) — \
                     return an error, or allow with a proof it cannot fire",
                    tok.text,
                    chain_from_roots(graph, &roots, id)
                ),
            ));
        }
    }
}

/// A001/A002 on call-graph facts: every public `*_exec` kernel needs a
/// same-file sequential twin that really exists as an item, and a call edge
/// from the thread-invariance roster.
fn rule_a(files: &[FileIndex], graph: &CallGraph, findings: &mut Vec<Finding>) {
    const ROSTER: &str = "tests/thread_invariance.rs";
    // Every node the roster file's tests call, plus names as written —
    // method calls on externally-typed receivers still count by name.
    let mut roster_called: BTreeSet<usize> = BTreeSet::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if n.file == ROSTER {
            roster_called.extend(graph.edges[id].iter().copied());
        }
    }
    let roster_names: BTreeSet<&str> = roster_called
        .iter()
        .map(|&id| graph.nodes[id].name.as_str())
        .collect();

    for node in &graph.nodes {
        if node.is_test || !node.is_pub || !node.name.ends_with("_exec") {
            continue;
        }
        let base = node.name.strip_suffix("_exec").unwrap_or(&node.name);
        if base.is_empty() {
            continue;
        }
        let with = format!("{base}_with");
        let fi = &files[node.file_idx];
        let has_twin = fi
            .fns
            .iter()
            .any(|d| d.is_pub && (d.name == base || d.name == with));
        if !has_twin {
            findings.push(Finding::new(
                &node.file,
                node.line,
                "A001",
                format!(
                    "`{}` has no sequential twin — export `pub fn {base}` or \
                     `pub fn {with}` so callers can bypass the Exec policy",
                    node.name
                ),
            ));
        }
        if !roster_names.contains(node.name.as_str()) {
            findings.push(Finding::new(
                &node.file,
                node.line,
                "A002",
                format!(
                    "`{}` is never called from the tests/thread_invariance.rs roster — \
                     every Exec kernel must prove bitwise thread-invariance",
                    node.name
                ),
            ));
        }
    }
}

/// For every line with code in a function, which public non-test functions
/// reach it — keyed by `(file, first line..last line)` lookup done by the
/// caller per unsafe site.
fn unsafe_reachability(
    files: &[FileIndex],
    graph: &CallGraph,
) -> BTreeMap<(String, u32), Vec<String>> {
    // Line span per node, from the declaration line to the line of the last
    // body token.
    let mut spans: Vec<(usize, u32, u32)> = Vec::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        let fi = &files[n.file_idx];
        let body = &fi.fns[n.fn_idx].body;
        let end = body
            .end
            .checked_sub(1)
            .and_then(|e| fi.toks.get(e))
            .map(|t| t.line)
            .unwrap_or(n.line);
        spans.push((id, n.line, end.max(n.line)));
    }
    let mut out = BTreeMap::new();
    for fi in files {
        for (i, tok) in fi.toks.iter().enumerate() {
            if !tok.is_ident("unsafe") {
                continue;
            }
            let _ = i;
            let Some(&(node_id, ..)) = spans.iter().find(|&&(id, lo, hi)| {
                graph.nodes[id].file == fi.relpath && tok.line >= lo && tok.line <= hi
            }) else {
                continue;
            };
            let reachers = graph.reaching(&BTreeSet::from([node_id]));
            let mut names: Vec<String> = reachers
                .iter()
                .filter(|&&r| graph.nodes[r].is_pub && !graph.nodes[r].is_test && r != node_id)
                .map(|&r| graph.nodes[r].qualified())
                .collect();
            names.sort();
            names.dedup();
            out.insert((fi.relpath.clone(), tok.line), names);
        }
    }
    out
}

/// `root → … → target` rendered for messages, from whichever root reaches
/// `target` by the shortest chain found first.
fn chain_from_roots(graph: &CallGraph, roots: &BTreeSet<usize>, target: usize) -> String {
    for &r in roots {
        let chain = graph.chain(r, target);
        if !chain.is_empty() {
            return chain.join(" → ");
        }
    }
    graph.nodes[target].qualified()
}

fn s(v: &str) -> serde::Value {
    serde::Value::String(v.to_string())
}

fn n(v: u32) -> serde::Value {
    serde::Value::Number(serde::Number::PosInt(v as u64))
}

fn obj(fields: impl IntoIterator<Item = (&'static str, serde::Value)>) -> serde::Value {
    let mut map = serde::Map::new();
    for (k, v) in fields {
        map.insert(k, v);
    }
    serde::Value::Object(map)
}

/// Renders the lock inventory as the `lock-order.json` artifact.
fn lock_order_json(locks: &LockAnalysis) -> String {
    let decls = serde::Value::Array(
        locks
            .decls
            .iter()
            .map(|d| {
                obj([
                    ("name", s(&d.name)),
                    ("kind", s(d.kind.as_str())),
                    ("file", s(&d.file)),
                    ("line", n(d.line)),
                    ("test", serde::Value::Bool(d.test_code)),
                ])
            })
            .collect(),
    );
    let edges = serde::Value::Array(
        locks
            .edges
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("held", s(&e.held)),
                    ("acquired", s(&e.acquired)),
                    ("file", s(&e.file)),
                    ("line", n(e.line)),
                    ("fn", s(&e.func)),
                ];
                if let Some(via) = &e.via {
                    fields.push(("via", s(via)));
                }
                obj(fields)
            })
            .collect(),
    );
    let waits = serde::Value::Array(
        locks
            .waits
            .iter()
            .map(|w| {
                obj([
                    ("condvar", s(&w.condvar)),
                    ("lock", s(&w.lock)),
                    ("file", s(&w.file)),
                    ("line", n(w.line)),
                    ("fn", s(&w.func)),
                ])
            })
            .collect(),
    );
    let coverage = obj([
        ("type_sites", n(locks.type_sites as u32)),
        ("declared", n(locks.decls.len() as u32)),
    ]);
    let root = obj([
        ("locks", decls),
        ("order_edges", edges),
        ("condvar_waits", waits),
        ("coverage", coverage),
    ]);
    serde_json::to_string_pretty(&root).unwrap_or_else(|_| "{}".into())
}
