//! `nrp-lint` — project-specific static analysis for the nrp workspace.
//!
//! `rustc` and clippy cannot see the contracts this repo's value rests on:
//! bitwise thread-invariance of every embedding, documented-only `unsafe` in
//! the parallel kernels, and a serving layer that must never panic on user
//! input.  This crate is a self-contained analyzer (hand-rolled lexer, no
//! crates.io dependencies, consistent with the `vendor/` shim policy) that
//! walks every `.rs` file and enforces them:
//!
//! | rule | checks |
//! |------|--------|
//! | D001 | no `HashMap`/`HashSet` iteration in non-test code |
//! | D002 | no `Instant::now`/`SystemTime` in kernel crates (`linalg`, `core`, `graph`) |
//! | D003 | no unseeded RNG construction (`thread_rng`, `from_entropy`, `OsRng`, `rand::random`) |
//! | U001 | every `unsafe` is immediately preceded by a `// SAFETY:` comment |
//! | U002 | `unsafe` is denied outside the allowlisted modules (today: `linalg::parallel`) |
//! | P001 | no `.unwrap()`/`.expect()` in `nrp-serve` request-path modules |
//! | P002 | no `panic!`/`todo!`/`unimplemented!` in request-path modules |
//! | P003 | no slice-index-by-literal in request-path modules |
//! | A001 | every `pub fn *_exec` kernel has a sequential twin (`base` or `base_with`) |
//! | A002 | every `*_exec` kernel appears in the `tests/thread_invariance.rs` roster |
//! | L001 | `// nrp-lint: allow(rule)` directives must carry a reason |
//!
//! Findings print as `file:line: rule-id message`.  The escape hatch is a
//! comment on (or directly above) the offending line:
//!
//! ```text
//! // nrp-lint: allow(D002) — StageClock is the designated timing module
//! ```
//!
//! The directive *requires* a reason after a `—`/`-`/`:` separator; without
//! one it suppresses nothing and is itself flagged (L001).  See
//! `CONTRIBUTING.md` § "Project lints" for the policy discussion.

pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::{analyze, FileReport};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule identifier (`D001`, `U002`, ...).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(file: &str, line: u32, rule: &str, message: String) -> Self {
        Self {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One `unsafe` occurrence, for the machine-readable inventory artifact.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// `block` | `fn` | `impl` | `trait` | `extern` | `other`.
    pub kind: String,
    /// Whether a `// SAFETY:` comment immediately precedes it.
    pub documented: bool,
    /// Whether the file is on the `unsafe` allowlist.
    pub allowlisted: bool,
    /// Whether the site lives in test/bench/example code.
    pub test_code: bool,
}

impl UnsafeSite {
    fn to_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("file", serde::Value::String(self.file.clone()));
        map.insert(
            "line",
            serde::Value::Number(serde::Number::PosInt(self.line as u64)),
        );
        map.insert("kind", serde::Value::String(self.kind.clone()));
        map.insert("documented", serde::Value::Bool(self.documented));
        map.insert("allowlisted", serde::Value::Bool(self.allowlisted));
        map.insert("test", serde::Value::Bool(self.test_code));
        serde::Value::Object(map)
    }
}

/// Rule configuration.  The defaults encode today's policy; tests override
/// individual fields to probe rule behavior.
#[derive(Debug, Clone)]
pub struct Config {
    /// Files (workspace-relative) where `unsafe` is permitted (U002).
    pub unsafe_allowed: Vec<String>,
    /// Path prefixes of the kernel crates where wall-clock reads are
    /// banned (D002).
    pub kernel_prefixes: Vec<String>,
    /// Kernel-crate files exempt from D002 (designated timing modules).
    /// Empty today: `core::context::StageClock` carries per-site
    /// `allow(D002)` annotations instead, so every exemption states its
    /// reason in the source.
    pub timing_allowed: Vec<String>,
    /// `nrp-serve` request-path modules covered by the P rules.
    pub request_path: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            unsafe_allowed: vec!["crates/linalg/src/parallel.rs".into()],
            kernel_prefixes: vec![
                "crates/linalg/src/".into(),
                "crates/core/src/".into(),
                "crates/graph/src/".into(),
            ],
            timing_allowed: vec![],
            request_path: vec![
                "crates/serve/src/http.rs".into(),
                "crates/serve/src/server.rs".into(),
                "crates/serve/src/batcher.rs".into(),
                "crates/serve/src/cache.rs".into(),
                "crates/serve/src/client.rs".into(),
            ],
        }
    }
}

/// Result of a full workspace run.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every `unsafe` site in the tree, sorted by (file, line).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Number of `.rs` files analyzed.
    pub files_checked: usize,
}

/// Lints a single source text under a (possibly virtual) workspace-relative
/// path.  Path-scoped rules (U002, D002, P) key off `relpath`, so fixture
/// tests can probe them by lending a snippet a virtual location.
///
/// Rule A is cross-file and only runs in [`lint_workspace`].
pub fn lint_source(relpath: &str, source: &str, cfg: &Config) -> FileReport {
    analyze(relpath, source, cfg)
}

/// Walks every `.rs` file under `root` (skipping `target`, `vendor`,
/// `.git`, `fixtures` and `node_modules` directories), runs the per-file
/// rules, then the cross-file rule A checks against the
/// `tests/thread_invariance.rs` roster.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = WorkspaceReport::default();
    // relpath -> (exec fns, pub fn names) for rule A.
    let mut fn_maps: BTreeMap<String, (Vec<rules::ExecFn>, Vec<String>)> = BTreeMap::new();
    let mut roster = String::new();

    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if rel_str == "tests/thread_invariance.rs" {
            roster = source.clone();
        }
        let file_report = analyze(&rel_str, &source, cfg);
        report.findings.extend(file_report.findings);
        report.unsafe_sites.extend(file_report.unsafe_sites);
        if !file_report.exec_fns.is_empty() {
            fn_maps.insert(rel_str, (file_report.exec_fns, file_report.pub_fn_names));
        }
        report.files_checked += 1;
    }

    // Rule A: every `pub fn *_exec` kernel needs a sequential twin in the
    // same file (A001) and a mention in the thread-invariance roster (A002).
    for (rel, (exec_fns, pub_fns)) in &fn_maps {
        for exec in exec_fns {
            let base = exec.name.strip_suffix("_exec").unwrap_or(&exec.name);
            let with = format!("{base}_with");
            if !pub_fns.iter().any(|n| n == base || *n == with) {
                report.findings.push(Finding::new(
                    rel,
                    exec.line,
                    "A001",
                    format!(
                        "`{}` has no sequential twin — export `pub fn {base}` or \
                         `pub fn {with}` so callers can bypass the Exec policy",
                        exec.name
                    ),
                ));
            }
            if !roster.contains(&exec.name) {
                report.findings.push(Finding::new(
                    rel,
                    exec.line,
                    "A002",
                    format!(
                        "`{}` is missing from the tests/thread_invariance.rs roster — every \
                         Exec kernel must prove bitwise thread-invariance",
                        exec.name
                    ),
                ));
            }
        }
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
        .unsafe_sites
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Renders the unsafe inventory as pretty-printed JSON.
pub fn unsafe_inventory_json(sites: &[UnsafeSite]) -> String {
    let array = serde::Value::Array(sites.iter().map(|s| s.to_value()).collect());
    serde_json::to_string_pretty(&array).unwrap_or_else(|_| "[]".into())
}
