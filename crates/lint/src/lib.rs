//! `nrp-lint` — project-specific static analysis for the nrp workspace.
//!
//! `rustc` and clippy cannot see the contracts this repo's value rests on:
//! bitwise thread-invariance of every embedding, documented-only `unsafe` in
//! the parallel kernels, and a serving layer that must never panic on user
//! input.  This crate is a self-contained analyzer (hand-rolled lexer, no
//! crates.io dependencies, consistent with the `vendor/` shim policy) that
//! walks every `.rs` file and enforces them:
//!
//! | rule | checks |
//! |------|--------|
//! | D001 | no `HashMap`/`HashSet` iteration in non-test code |
//! | D002 | no `Instant::now`/`SystemTime` in kernel crates (`linalg`, `core`, `graph`) |
//! | O001 | no `Instant::now`/`SystemTime` outside the clock-owning crate (`nrp-obs`) — non-kernel code routes timing through `nrp_obs::clock` |
//! | D003 | no unseeded RNG construction (`thread_rng`, `from_entropy`, `OsRng`, `rand::random`) |
//! | U001 | every `unsafe` is immediately preceded by a `// SAFETY:` comment |
//! | U002 | `unsafe` is denied outside the allowlisted modules (today: `linalg::parallel`) |
//! | P001 | no `.unwrap()`/`.expect()` in `nrp-serve` request-path modules |
//! | P002 | no `panic!`/`todo!`/`unimplemented!` in request-path modules |
//! | P003 | no slice-index-by-literal in request-path modules |
//! | R001 | every `push`/`push_back` in request-path modules targets a visibly bounded collection (`with_capacity` init or `len()` comparison) |
//! | A001 | every `pub fn *_exec` kernel has a sequential twin (`base` or `base_with`) |
//! | A002 | every `*_exec` kernel appears in the `tests/thread_invariance.rs` roster |
//! | L001 | `// nrp-lint: allow(rule)` directives must carry a reason |
//!
//! Findings print as `file:line: rule-id message`.  The escape hatch is a
//! comment on (or directly above) the offending line:
//!
//! ```text
//! // nrp-lint: allow(D002) — StageClock is the designated timing module
//! ```
//!
//! The directive *requires* a reason after a `—`/`-`/`:` separator; without
//! one it suppresses nothing and is itself flagged (L001).  See
//! `CONTRIBUTING.md` § "Project lints" for the policy discussion.

pub mod callgraph;
pub mod lexer;
pub mod locks;
pub mod parser;
pub mod rules;
pub mod semantic;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::{analyze, FileReport};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule identifier (`D001`, `U002`, ...).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(file: &str, line: u32, rule: &str, message: String) -> Self {
        Self {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One `unsafe` occurrence, for the machine-readable inventory artifact.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// `block` | `fn` | `impl` | `trait` | `extern` | `other`.
    pub kind: String,
    /// Whether a `// SAFETY:` comment immediately precedes it.
    pub documented: bool,
    /// Whether the file is on the `unsafe` allowlist.
    pub allowlisted: bool,
    /// Whether the site lives in test/bench/example code.
    pub test_code: bool,
    /// Qualified names of public workspace functions that transitively
    /// reach the function containing this site (call-graph facts; empty
    /// for sites outside any function or before the semantic pass runs).
    pub reachable_from: Vec<String>,
}

impl UnsafeSite {
    fn to_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("file", serde::Value::String(self.file.clone()));
        map.insert(
            "line",
            serde::Value::Number(serde::Number::PosInt(self.line as u64)),
        );
        map.insert("kind", serde::Value::String(self.kind.clone()));
        map.insert("documented", serde::Value::Bool(self.documented));
        map.insert("allowlisted", serde::Value::Bool(self.allowlisted));
        map.insert("test", serde::Value::Bool(self.test_code));
        map.insert(
            "reachable_from",
            serde::Value::Array(
                self.reachable_from
                    .iter()
                    .map(|n| serde::Value::String(n.clone()))
                    .collect(),
            ),
        );
        serde::Value::Object(map)
    }
}

/// Rule configuration.  The defaults encode today's policy; tests override
/// individual fields to probe rule behavior.
#[derive(Debug, Clone)]
pub struct Config {
    /// Files (workspace-relative) where `unsafe` is permitted (U002).
    pub unsafe_allowed: Vec<String>,
    /// Path prefixes of the kernel crates where wall-clock reads are
    /// banned (D002).
    pub kernel_prefixes: Vec<String>,
    /// Kernel-crate files exempt from D002 (designated timing modules).
    /// Empty today: since `StageClock` moved into `nrp-obs`, no kernel
    /// file reads the wall clock at all — exemptions would carry per-site
    /// `allow(D002)` annotations stating their reason in the source.
    pub timing_allowed: Vec<String>,
    /// Path prefixes of the designated clock-owning crate (O001): the only
    /// non-test code allowed to call `Instant::now`/`SystemTime::now`
    /// directly.  Everything else routes timing through
    /// `nrp_obs::clock::now()`, so the workspace has exactly one place
    /// where wall-clock time enters.
    pub clock_owner: Vec<String>,
    /// `nrp-serve` request-path modules covered by the P and R rules.
    /// `fault.rs` is deliberately absent: its `Panic` action panics by
    /// design, and it is compiled out of release builds entirely.
    pub request_path: Vec<String>,
    /// Warm-path roots for the H rules: function names and impl-type names
    /// whose (transitively) reachable code must not allocate.
    pub hot_roots: Vec<String>,
    /// Files whose amortized growth ops (H002: `push`/`reserve`/…) are
    /// proven allocation-free at steady state by a counting-allocator test
    /// — H001 (unconditional allocation) still applies there.
    pub warm_proven: Vec<String>,
    /// Free functions that acquire a lock on behalf of their caller
    /// (`lock_unpoisoned`): call sites count as direct acquisitions and the
    /// wrapper body itself is excluded from the lock analysis.
    pub lock_wrappers: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            unsafe_allowed: vec!["crates/linalg/src/parallel.rs".into()],
            kernel_prefixes: vec![
                "crates/linalg/src/".into(),
                "crates/core/src/".into(),
                "crates/graph/src/".into(),
            ],
            timing_allowed: vec![],
            clock_owner: vec!["crates/obs/src/".into()],
            request_path: vec![
                "crates/serve/src/http.rs".into(),
                "crates/serve/src/server.rs".into(),
                "crates/serve/src/batcher.rs".into(),
                "crates/serve/src/cache.rs".into(),
                "crates/serve/src/client.rs".into(),
                "crates/serve/src/degrade.rs".into(),
            ],
            hot_roots: vec!["forward_push_into".into(), "PushWorkspace".into()],
            warm_proven: vec!["crates/core/src/push.rs".into()],
            lock_wrappers: vec!["lock_unpoisoned".into()],
        }
    }
}

/// Result of a full workspace run.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every `unsafe` site in the tree, sorted by (file, line), with
    /// call-graph reachability context filled in.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Number of `.rs` files analyzed.
    pub files_checked: usize,
    /// Call sites the semantic pass could not resolve to one candidate.
    pub ambiguities: Vec<callgraph::Ambiguity>,
    /// The `lock-order.json` payload for this tree.
    pub lock_order_json: String,
    /// Coverage numbers behind the lock inventory: every
    /// `Mutex`/`RwLock`/`Condvar` identifier seen, and how many named
    /// declarations they yielded.
    pub lock_type_sites: usize,
    pub lock_decls: usize,
}

/// Lints a single source text under a (possibly virtual) workspace-relative
/// path.  Path-scoped rules (U002, D002, P) key off `relpath`, so fixture
/// tests can probe them by lending a snippet a virtual location.
///
/// Rule A is cross-file and only runs in [`lint_workspace`].
pub fn lint_source(relpath: &str, source: &str, cfg: &Config) -> FileReport {
    analyze(relpath, source, cfg)
}

/// Walks every `.rs` file under `root` (skipping `target`, `vendor`,
/// `.git`, `fixtures` and `node_modules` directories), runs the per-file
/// rules, then the cross-file rule A checks against the
/// `tests/thread_invariance.rs` roster.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = WorkspaceReport::default();
    let mut sources: Vec<(String, String)> = Vec::new();

    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let file_report = analyze(&rel_str, &source, cfg);
        report.findings.extend(file_report.findings);
        report.unsafe_sites.extend(file_report.unsafe_sites);
        sources.push((rel_str, source));
        report.files_checked += 1;
    }

    // The semantic pass: call graph, lock analysis (K rules), warm-path
    // allocation checking (H rules), transitive panic reachability (P004)
    // and the call-graph-backed A rules.
    let semantic = semantic::analyze_workspace(&sources, cfg);
    report.findings.extend(semantic.findings);
    for site in &mut report.unsafe_sites {
        if let Some(reachers) = semantic
            .unsafe_reachable
            .get(&(site.file.clone(), site.line))
        {
            site.reachable_from = reachers.clone();
        }
    }
    report.ambiguities = semantic.ambiguities;
    report.lock_order_json = semantic.lock_order_json;
    report.lock_type_sites = semantic.lock_type_sites;
    report.lock_decls = semantic.lock_decls;

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
        .unsafe_sites
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Renders the unsafe inventory as pretty-printed JSON.
pub fn unsafe_inventory_json(sites: &[UnsafeSite]) -> String {
    let array = serde::Value::Array(sites.iter().map(|s| s.to_value()).collect());
    serde_json::to_string_pretty(&array).unwrap_or_else(|_| "[]".into())
}

/// Renders findings (plus the semantic pass's ambiguity report) as the
/// `--format json` payload: a single object with `findings`,
/// `ambiguities` and `files_checked`.
pub fn findings_json(
    findings: &[Finding],
    ambiguities: &[callgraph::Ambiguity],
    files_checked: usize,
) -> String {
    let s = |v: &str| serde::Value::String(v.to_string());
    let n = |v: u64| serde::Value::Number(serde::Number::PosInt(v));
    let findings = findings
        .iter()
        .map(|f| {
            let mut map = serde::Map::new();
            map.insert("file", s(&f.file));
            map.insert("line", n(f.line as u64));
            map.insert("rule", s(&f.rule));
            map.insert("message", s(&f.message));
            serde::Value::Object(map)
        })
        .collect();
    let ambiguities = ambiguities
        .iter()
        .map(|a| {
            let mut map = serde::Map::new();
            map.insert("file", s(&a.file));
            map.insert("line", n(a.line as u64));
            map.insert("caller", s(&a.caller));
            map.insert("callee", s(&a.callee));
            map.insert(
                "candidates",
                serde::Value::Array(a.candidates.iter().map(|c| s(c)).collect()),
            );
            serde::Value::Object(map)
        })
        .collect();
    let mut root = serde::Map::new();
    root.insert("findings", serde::Value::Array(findings));
    root.insert("ambiguities", serde::Value::Array(ambiguities));
    root.insert("files_checked", n(files_checked as u64));
    serde_json::to_string_pretty(&serde::Value::Object(root)).unwrap_or_else(|_| "{}".into())
}
