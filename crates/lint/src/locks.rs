//! K-rules: lock-order and blocking-under-lock analysis.
//!
//! The pass inventories every `Mutex`/`RwLock`/`Condvar` identifier in the
//! workspace, tracks guard lifetimes through each function body with the
//! pre-2024 temporary-lifetime rules, propagates "what does this call
//! acquire / can it block" summaries through the call graph, and reports:
//!
//! * **K001** — a cycle in the lock-acquisition order graph (including the
//!   length-1 cycle of calling into code that re-acquires a lock the caller
//!   already holds; `std::sync::Mutex` is not re-entrant).
//! * **K002** — `Condvar::wait` while holding a lock other than the one in
//!   the wait guard, or one condvar waited on with two different locks.
//! * **K003** — a potentially blocking operation (`join`, channel
//!   `send`/`recv`, `accept`, `connect`, stream `read`/`write`/`flush`, or
//!   a call whose callee transitively does any of those or waits on a
//!   condvar) executed while holding a lock.
//!
//! Lock identity is by *name*: the last identifier before `.lock()` (or the
//! last identifier inside a `lock_unpoisoned(…)`-style wrapper call),
//! canonicalised against the declaration inventory case-insensitively and
//! by `_`-separated suffix (`accept_connections` is a clone handle of the
//! `connections` field).  Two unrelated locks sharing a field name would
//! alias — acceptable for this workspace, where lock names are globally
//! distinct by construction (and checked by the inventory being reviewed
//! with `lock-order.json`).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::callgraph::FileIndex;
use crate::lexer::{TokKind, Token};
use crate::parser::{matching_brace, next_sig, prev_sig};
use crate::rules::test_region_mask;
use crate::{Config, Finding};

/// Method names that may block the calling thread (K003).  `wait` is
/// excluded here — condvar waits are K002's domain at the direct site, but
/// they do count as "blocking" in transitive summaries (a call that can
/// park on a condvar must not run under an unrelated lock).
const BLOCKING_METHODS: &[&str] = &[
    "join",
    "recv",
    "recv_timeout",
    "send",
    "accept",
    "connect",
    "flush",
    "read",
    "write",
    "read_exact",
    "write_all",
    "read_to_end",
    "read_to_string",
];

/// Result-adapter methods that keep a `.lock()` chain a *guard* binding
/// (`let g = m.lock().expect(…)`).  Any other trailing method consumes the
/// guard into a plain value, making the acquisition a statement temporary.
const GUARD_ADAPTERS: &[&str] = &["expect", "unwrap", "unwrap_or_else", "unwrap_or_default"];

/// Idents that wrap a lock in a declaration (`Arc<Mutex<T>>`,
/// `OnceLock<Mutex<T>>`, `Arc::new(Mutex::new(v))`) and are skipped when
/// walking from the lock type back to its binder.
const DECL_WRAPPERS: &[&str] = &[
    "Arc", "Rc", "Box", "Option", "OnceLock", "LazyLock", "new", "mut",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockKind {
    Mutex,
    RwLock,
    Condvar,
}

impl LockKind {
    pub fn as_str(self) -> &'static str {
        match self {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
            LockKind::Condvar => "Condvar",
        }
    }
}

/// A named lock declaration (field, static, param or let binding).
#[derive(Debug, Clone)]
pub struct LockDecl {
    pub name: String,
    pub kind: LockKind,
    pub file: String,
    pub line: u32,
    pub test_code: bool,
}

/// One `held → acquired` pair observed at an acquisition or call site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderEdge {
    pub held: String,
    pub acquired: String,
    pub file: String,
    pub line: u32,
    /// Qualified name of the function containing the witness site.
    pub func: String,
    /// Set when the acquisition happens inside a callee rather than
    /// literally at the site (`via` = the callee's qualified name).
    pub via: Option<String>,
}

/// One `Condvar::wait` site and the lock its guard belongs to.
#[derive(Debug, Clone)]
pub struct CondvarWait {
    pub condvar: String,
    pub lock: String,
    pub file: String,
    pub line: u32,
    pub func: String,
}

/// Everything the lock pass produces.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    /// Deduplicated declarations, sorted by (name, file, line).
    pub decls: Vec<LockDecl>,
    /// Total count of `Mutex`/`RwLock`/`Condvar` identifier tokens outside
    /// comments — the denominator of the 100%-coverage self-check.
    pub type_sites: usize,
    /// Deduplicated order edges, sorted.
    pub edges: Vec<OrderEdge>,
    /// All condvar wait sites.
    pub waits: Vec<CondvarWait>,
    /// K001/K002/K003 findings (suppressions NOT yet applied).
    pub findings: Vec<Finding>,
}

/// Tracks one held guard during the body walk.
#[derive(Debug, Clone)]
struct Held {
    lock: String,
    /// Guard variable name, when let-bound (for `drop(g)` and K002).
    var: Option<String>,
    release: Release,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Release {
    /// Released when the brace depth drops below this value.
    Depth(i64),
    /// Released at (or before) this token index.
    Tok(usize),
}

pub fn analyze_locks(files: &[FileIndex], graph: &CallGraph, cfg: &Config) -> LockAnalysis {
    let mut out = LockAnalysis::default();

    // ---- inventory: every lock-type identifier, and the declarations ----
    let mut decl_names: BTreeMap<String, LockKind> = BTreeMap::new();
    for fi in files {
        let mask = test_region_mask(&fi.toks);
        for (i, tok) in fi.toks.iter().enumerate() {
            let kind = match tok.text.as_str() {
                "Mutex" => LockKind::Mutex,
                "RwLock" => LockKind::RwLock,
                "Condvar" => LockKind::Condvar,
                _ => continue,
            };
            if tok.kind != TokKind::Ident {
                continue;
            }
            out.type_sites += 1;
            if let Some(binder) = decl_binder(&fi.toks, i) {
                let test_code = fi.is_test_file || mask[i];
                decl_names.entry(binder.clone()).or_insert(kind);
                out.decls.push(LockDecl {
                    name: binder,
                    kind,
                    file: fi.relpath.clone(),
                    line: tok.line,
                    test_code,
                });
            }
        }
    }
    out.decls
        .sort_by(|a, b| (&a.name, &a.file, a.line).cmp(&(&b.name, &b.file, b.line)));
    out.decls
        .dedup_by(|a, b| a.name == b.name && a.file == b.file && a.line == b.line);

    let canon = |raw: &str| canonicalize(raw, &decl_names);

    // ---- pass 1: per-function direct facts -----------------------------
    let n = graph.nodes.len();
    let is_wrapper = |id: usize| cfg.lock_wrappers.iter().any(|w| *w == graph.nodes[id].name);
    let mut direct_acquires: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut direct_blocks: Vec<bool> = vec![false; n];
    for (id, node) in graph.nodes.iter().enumerate() {
        if is_wrapper(id) {
            continue; // the wrapper body is the mechanism, not a user
        }
        let fi = &files[node.file_idx];
        let body = fi.fns[node.fn_idx].body.clone();
        for i in body {
            if let Some(acq) = acquisition_at(&fi.toks, i, cfg, &decl_names) {
                direct_acquires[id].insert(canon(&acq.name));
            } else if blocking_at(&fi.toks, i, &decl_names).is_some()
                || wait_at(&fi.toks, i).is_some()
            {
                direct_blocks[id] = true;
            }
        }
    }

    // ---- fixpoint: transitive summaries --------------------------------
    let mut trans_acquires = direct_acquires.clone();
    let mut trans_blocks = direct_blocks.clone();
    loop {
        let mut changed = false;
        for id in 0..n {
            for &callee in &graph.edges[id] {
                if is_wrapper(callee) {
                    continue;
                }
                if trans_blocks[callee] && !trans_blocks[id] {
                    trans_blocks[id] = true;
                    changed = true;
                }
                let add: Vec<String> = trans_acquires[callee]
                    .difference(&trans_acquires[id])
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    trans_acquires[id].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- pass 2: guard-tracking walk, findings and edges ---------------
    let mut cv_locks: BTreeMap<String, (String, String, u32)> = BTreeMap::new();
    let mut edges: BTreeSet<OrderEdge> = BTreeSet::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if is_wrapper(id) || node.is_test {
            continue;
        }
        let fi = &files[node.file_idx];
        walk_fn(
            id,
            node,
            fi,
            graph,
            cfg,
            &decl_names,
            &trans_acquires,
            &trans_blocks,
            &mut edges,
            &mut cv_locks,
            &mut out,
        );
    }
    out.edges = edges.into_iter().collect();

    // ---- K001: cycles in the order graph -------------------------------
    report_cycles(&out.edges, &mut out.findings);

    out.waits
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out.findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out
}

/// Walks back from a lock-type token to its binder: over generic/grouping
/// punctuation and known wrappers to a `:` or `=`, whose left-hand
/// identifier is the lock's name.  `None` for use-statements, fn-pointer
/// types, turbofish and other non-declaring positions.
fn decl_binder(toks: &[Token], ty: usize) -> Option<String> {
    let mut j = prev_sig(toks, ty)?;
    for _ in 0..12 {
        let t = &toks[j];
        if t.is_punct('<')
            || t.is_punct('(')
            || t.is_punct('&')
            || t.kind == TokKind::Lifetime
            || (t.kind == TokKind::Ident && DECL_WRAPPERS.contains(&t.text.as_str()))
            || t.is_punct(':') && prev_sig(toks, j).is_some_and(|p| toks[p].is_punct(':'))
        {
            // `::` is two `:` tokens — consume both.
            if t.is_punct(':') {
                j = prev_sig(toks, j)?;
            }
            j = prev_sig(toks, j)?;
            continue;
        }
        if t.is_punct(':') || t.is_punct('=') {
            let b = prev_sig(toks, j)?;
            let binder = &toks[b];
            if binder.kind == TokKind::Ident
                && !matches!(binder.text.as_str(), "let" | "mut" | "pub" | "use")
            {
                return Some(binder.text.clone());
            }
            return None;
        }
        return None;
    }
    None
}

/// Canonical lock name for an acquisition-site name: exact declaration
/// match, else case-insensitive, else `_`-suffix (`accept_connections` →
/// `connections`).  Unknown names pass through unchanged.
fn canonicalize(raw: &str, decls: &BTreeMap<String, LockKind>) -> String {
    if decls.contains_key(raw) {
        return raw.to_string();
    }
    let lower = raw.to_ascii_lowercase();
    for name in decls.keys() {
        if name.to_ascii_lowercase() == lower {
            return name.clone();
        }
    }
    for name in decls.keys() {
        if let Some(prefix) = raw.strip_suffix(name.as_str()) {
            if prefix.ends_with('_') {
                return name.clone();
            }
        }
    }
    raw.to_string()
}

struct Acquisition {
    /// Raw (un-canonicalised) lock name.
    name: String,
    /// Token index of the opening paren of the acquisition call.
    open_paren: usize,
    /// `lock` / `read` / `write` / the wrapper name.
    method: String,
}

/// Recognises an acquisition whose *name token* is at `i`: `recv.lock(…)`,
/// `recv.read(…)`/`recv.write(…)` on a declared `RwLock`, or
/// `wrapper(&…lock…)` for configured wrapper fns.
fn acquisition_at(
    toks: &[Token],
    i: usize,
    cfg: &Config,
    decls: &BTreeMap<String, LockKind>,
) -> Option<Acquisition> {
    let tok = &toks[i];
    if tok.kind != TokKind::Ident {
        return None;
    }
    let open = next_sig(toks, i + 1).filter(|&p| toks[p].is_punct('('))?;
    if cfg.lock_wrappers.contains(&tok.text) {
        // `lock_unpoisoned(&self.worker)` — the lock is the last identifier
        // inside the argument parens.
        let close = matching_paren(toks, open);
        let name = toks[open + 1..close]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident)?
            .text
            .clone();
        return Some(Acquisition {
            name,
            open_paren: open,
            method: tok.text.clone(),
        });
    }
    if !matches!(tok.text.as_str(), "lock" | "read" | "write") {
        return None;
    }
    if !prev_sig(toks, i).is_some_and(|p| toks[p].is_punct('.')) {
        return None;
    }
    let name = receiver_name(toks, i)?;
    if tok.text != "lock" {
        // `.read()`/`.write()` acquire only when the receiver resolves to a
        // declared RwLock; otherwise it's stream I/O (K003's business).
        let canon = canonicalize(&name, decls);
        if decls.get(&canon) != Some(&LockKind::RwLock) {
            return None;
        }
    }
    Some(Acquisition {
        name,
        open_paren: open,
        method: tok.text.clone(),
    })
}

/// Last identifier of the receiver chain before the `.` that precedes the
/// method token at `i`: `self.shared.slot.lock` → `slot`;
/// `registry().lock` → `registry`.
fn receiver_name(toks: &[Token], i: usize) -> Option<String> {
    let dot = prev_sig(toks, i)?;
    let r = prev_sig(toks, dot)?;
    let t = &toks[r];
    if t.kind == TokKind::Ident {
        return Some(t.text.clone());
    }
    if t.is_punct(')') {
        // `registry().lock()` — name the call, not the parens.
        let mut depth = 0i64;
        let mut j = r;
        loop {
            if toks[j].is_punct(')') {
                depth += 1;
            } else if toks[j].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        let f = prev_sig(toks, j)?;
        if toks[f].kind == TokKind::Ident {
            return Some(toks[f].text.clone());
        }
    }
    None
}

/// A blocking method call at token `i` (`.join(…)` etc.).  Lock
/// acquisitions shaped like `.read(`/`.write(` on declared RwLocks are NOT
/// blocking ops; everything else in [`BLOCKING_METHODS`] is.
fn blocking_at(toks: &[Token], i: usize, decls: &BTreeMap<String, LockKind>) -> Option<String> {
    let tok = &toks[i];
    if tok.kind != TokKind::Ident || !BLOCKING_METHODS.contains(&tok.text.as_str()) {
        return None;
    }
    if !prev_sig(toks, i).is_some_and(|p| toks[p].is_punct('.')) {
        return None;
    }
    if !next_sig(toks, i + 1).is_some_and(|p| toks[p].is_punct('(')) {
        return None;
    }
    if matches!(tok.text.as_str(), "read" | "write") {
        if let Some(name) = receiver_name(toks, i) {
            if decls.get(&canonicalize(&name, decls)) == Some(&LockKind::RwLock) {
                return None;
            }
        }
    }
    Some(tok.text.clone())
}

/// A `cv.wait(guard)` / `wait_while` / `wait_timeout` site at token `i`:
/// returns `(condvar name, guard argument ident)`.
fn wait_at(toks: &[Token], i: usize) -> Option<(String, String)> {
    let tok = &toks[i];
    if tok.kind != TokKind::Ident
        || !matches!(tok.text.as_str(), "wait" | "wait_while" | "wait_timeout")
    {
        return None;
    }
    if !prev_sig(toks, i).is_some_and(|p| toks[p].is_punct('.')) {
        return None;
    }
    let open = next_sig(toks, i + 1).filter(|&p| toks[p].is_punct('('))?;
    let cv = receiver_name(toks, i)?;
    let close = matching_paren(toks, open);
    let guard = toks[open + 1..close]
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text != "mut")?
        .text
        .clone();
    Some((cv, guard))
}

fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('(') {
            depth += 1;
        } else if toks[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Classifies the statement context of an acquisition whose chain starts at
/// `head` and whose call ends at `close`: a let-bound guard (held to end of
/// block), a construct scrutinee (held through `if let`/`while let`/`match`)
/// or a statement temporary (dead at the next `;` / block open).
enum Span {
    Guard { var: String },
    Construct { end_tok: usize },
    Temporary { end_tok: usize },
}

fn acquisition_span(toks: &[Token], head: usize, close: usize, body_end: usize) -> Span {
    // -- look backwards from the chain head ------------------------------
    let mut j = prev_sig(toks, head);
    // Skip leading `&`, `&mut`, `*` of the acquisition expression.
    while let Some(p) = j {
        if toks[p].is_punct('&') || toks[p].is_punct('*') || toks[p].is_ident("mut") {
            j = prev_sig(toks, p);
        } else {
            break;
        }
    }
    if let Some(eq) = j {
        if toks[eq].is_punct('=') && !prev_sig(toks, eq).is_some_and(|p| toks[p].is_punct('=')) {
            // `… = ACQ`: find the pattern/binder to the left.
            let mut k = prev_sig(toks, eq);
            let var = k
                .filter(|&p| toks[p].kind == TokKind::Ident)
                .map(|p| toks[p].text.clone());
            // Walk left over the pattern to a `let` (plus optional
            // `if`/`while` in front of it).
            let mut saw_let = false;
            for _ in 0..24 {
                let Some(p) = k else { break };
                if toks[p].is_ident("let") {
                    saw_let = true;
                    k = prev_sig(toks, p);
                    break;
                }
                if toks[p].is_punct(';') || toks[p].is_punct('{') || toks[p].is_punct('}') {
                    break;
                }
                k = prev_sig(toks, p);
            }
            if saw_let {
                let in_construct =
                    k.is_some_and(|p| toks[p].is_ident("if") || toks[p].is_ident("while"));
                if in_construct {
                    // `if let P = ACQ { … }` — the scrutinee temporary
                    // lives through the whole construct (else arm too).
                    return Span::Construct {
                        end_tok: construct_end(toks, close, body_end),
                    };
                }
                // `let g = ACQ<adapters>;` — a guard iff every trailing
                // method is a Result adapter.
                if let Some(var) = var {
                    match trailing_chain(toks, close, body_end) {
                        Trailing::AdaptersThenSemi => return Span::Guard { var },
                        Trailing::Other(end) => return Span::Temporary { end_tok: end },
                    }
                }
            }
        }
        if let Some(p) = j {
            if toks[p].is_ident("match") {
                return Span::Construct {
                    end_tok: construct_end(toks, close, body_end),
                };
            }
        }
    }
    match trailing_chain(toks, close, body_end) {
        Trailing::AdaptersThenSemi | Trailing::Other(_) => Span::Temporary {
            end_tok: statement_end(toks, close, body_end),
        },
    }
}

enum Trailing {
    /// Only `expect`/`unwrap`-family adapters (or nothing) up to the `;`.
    AdaptersThenSemi,
    /// A non-adapter method consumed the guard; value dies at this token.
    Other(usize),
}

/// Scans the method chain after the acquisition call's closing paren.
fn trailing_chain(toks: &[Token], close: usize, body_end: usize) -> Trailing {
    let mut i = close;
    loop {
        let Some(next) = next_sig(toks, i + 1).filter(|&p| p < body_end) else {
            return Trailing::AdaptersThenSemi;
        };
        let t = &toks[next];
        if t.is_punct(';') {
            return Trailing::AdaptersThenSemi;
        }
        if t.is_punct('?') {
            i = next;
            continue;
        }
        if t.is_punct('.') {
            let Some(m) = next_sig(toks, next + 1).filter(|&p| p < body_end) else {
                return Trailing::AdaptersThenSemi;
            };
            if toks[m].kind == TokKind::Ident && GUARD_ADAPTERS.contains(&toks[m].text.as_str()) {
                let Some(open) = next_sig(toks, m + 1).filter(|&p| toks[p].is_punct('(')) else {
                    return Trailing::Other(statement_end(toks, m, body_end));
                };
                i = matching_paren(toks, open);
                continue;
            }
            return Trailing::Other(statement_end(toks, m, body_end));
        }
        // `)`/`}`/operator — the expression ends here without a `;` (tail
        // expression or an argument): treat as adapters-only.
        return Trailing::AdaptersThenSemi;
    }
}

/// Token index of the next `;` at paren depth 0, or the next block-open
/// `{` (an `if cond {` temporary dies before the block body runs).
fn statement_end(toks: &[Token], from: usize, body_end: usize) -> usize {
    let mut depth = 0i64;
    let mut i = from + 1;
    while i < body_end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth <= 0 && (t.is_punct(';') || t.is_punct('{')) {
            // `<= 0`: the acquisition may sit inside call arguments
            // (`mem::take(&mut *lock_unpoisoned(&x))`), where the statement
            // continues past closing parens we never saw open.
            return i;
        }
        i += 1;
    }
    body_end
}

/// End of an `if let`/`while let`/`match` construct: the close of the brace
/// block after `close`, extended over a trailing `else` arm.
fn construct_end(toks: &[Token], close: usize, body_end: usize) -> usize {
    let mut i = close;
    while i < body_end && !toks[i].is_punct('{') {
        i += 1;
    }
    if i >= body_end {
        return body_end;
    }
    let mut end = matching_brace(toks, i);
    // `else { … }` / `else if let … { … }` arms extend the span.
    while let Some(e) = next_sig(toks, end + 1).filter(|&p| p < body_end) {
        if !toks[e].is_ident("else") {
            break;
        }
        let mut j = e;
        while j < body_end && !toks[j].is_punct('{') {
            j += 1;
        }
        if j >= body_end {
            return body_end;
        }
        end = matching_brace(toks, j);
    }
    end.min(body_end)
}

#[allow(clippy::too_many_arguments)]
fn walk_fn(
    id: usize,
    node: &crate::callgraph::FnNode,
    fi: &FileIndex,
    graph: &CallGraph,
    cfg: &Config,
    decls: &BTreeMap<String, LockKind>,
    trans_acquires: &[BTreeSet<String>],
    trans_blocks: &[bool],
    edges: &mut BTreeSet<OrderEdge>,
    cv_locks: &mut BTreeMap<String, (String, String, u32)>,
    out: &mut LockAnalysis,
) {
    let toks = &fi.toks;
    let body = fi.fns[node.fn_idx].body.clone();
    let body_end = body.end;
    let func = node.qualified();
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i64;
    let mut i = body.start;
    while i < body_end {
        let tok = &toks[i];
        if tok.is_comment() {
            i += 1;
            continue;
        }
        // Expire token-scoped and depth-scoped guards.
        held.retain(|h| match h.release {
            Release::Tok(t) => i <= t,
            Release::Depth(d) => depth >= d,
        });
        if tok.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if tok.is_punct('}') {
            depth -= 1;
            held.retain(|h| match h.release {
                Release::Depth(d) => depth >= d,
                Release::Tok(_) => true,
            });
            i += 1;
            continue;
        }
        // Explicit `drop(g)`.
        if tok.is_ident("drop") {
            if let Some(open) = next_sig(toks, i + 1).filter(|&p| toks[p].is_punct('(')) {
                if let Some(arg) = next_sig(toks, open + 1) {
                    if toks[arg].kind == TokKind::Ident {
                        let name = &toks[arg].text;
                        held.retain(|h| h.var.as_deref() != Some(name.as_str()));
                    }
                }
                i = matching_paren(toks, open) + 1;
                continue;
            }
        }
        // Condvar waits (K002).
        if let Some((cv_raw, guard_var)) = wait_at(toks, i) {
            let cv = canonicalize(&cv_raw, decls);
            let wait_lock = held
                .iter()
                .find(|h| h.var.as_deref() == Some(guard_var.as_str()))
                .map(|h| h.lock.clone())
                .unwrap_or_else(|| canonicalize(&guard_var, decls));
            out.waits.push(CondvarWait {
                condvar: cv.clone(),
                lock: wait_lock.clone(),
                file: fi.relpath.clone(),
                line: tok.line,
                func: func.clone(),
            });
            let others: Vec<&str> = held
                .iter()
                .filter(|h| h.lock != wait_lock)
                .map(|h| h.lock.as_str())
                .collect();
            if !others.is_empty() {
                out.findings.push(Finding::new(
                    &fi.relpath,
                    tok.line,
                    "K002",
                    format!(
                        "`{cv}.wait({guard_var})` parks while still holding `{}` — every lock \
                         except the wait guard must be released before a condvar wait",
                        others.join("`, `")
                    ),
                ));
            }
            match cv_locks.get(&cv) {
                None => {
                    cv_locks.insert(cv, (wait_lock, fi.relpath.clone(), tok.line));
                }
                Some((first_lock, first_file, first_line)) => {
                    if *first_lock != wait_lock {
                        out.findings.push(Finding::new(
                            &fi.relpath,
                            tok.line,
                            "K002",
                            format!(
                                "condvar `{cv}` waits with lock `{wait_lock}` here but with \
                                 `{first_lock}` at {first_file}:{first_line} — a condvar must \
                                 pair with exactly one mutex"
                            ),
                        ));
                    }
                }
            }
            i += 1;
            continue;
        }
        // Acquisitions.
        if let Some(acq) = acquisition_at(toks, i, cfg, decls) {
            let lock = canonicalize(&acq.name, decls);
            for h in &held {
                if h.lock == lock {
                    out.findings.push(Finding::new(
                        &fi.relpath,
                        tok.line,
                        "K001",
                        format!(
                            "`{}` is acquired while already held in `{func}` — \
                             `std::sync` locks are not re-entrant, this deadlocks",
                            lock
                        ),
                    ));
                } else {
                    edges.insert(OrderEdge {
                        held: h.lock.clone(),
                        acquired: lock.clone(),
                        file: fi.relpath.clone(),
                        line: tok.line,
                        func: func.clone(),
                        via: None,
                    });
                }
            }
            let close = matching_paren(toks, acq.open_paren);
            let chain_head =
                if acq.method == "lock" || acq.method == "read" || acq.method == "write" {
                    chain_start(toks, i)
                } else {
                    i
                };
            let release = match acquisition_span(toks, chain_head, close, body_end) {
                Span::Guard { var } => {
                    held.push(Held {
                        lock,
                        var: Some(var),
                        release: Release::Depth(depth),
                    });
                    i = close + 1;
                    continue;
                }
                Span::Construct { end_tok } | Span::Temporary { end_tok } => end_tok,
            };
            held.push(Held {
                lock,
                var: None,
                release: Release::Tok(release),
            });
            i = close + 1;
            continue;
        }
        // Blocking ops under a held lock (K003).
        if let Some(op) = blocking_at(toks, i, decls) {
            if !held.is_empty() {
                let locks: Vec<&str> = held.iter().map(|h| h.lock.as_str()).collect();
                out.findings.push(Finding::new(
                    &fi.relpath,
                    tok.line,
                    "K003",
                    format!(
                        "`.{op}(…)` can block while `{}` is held in `{func}` — release the \
                         lock before the blocking call",
                        locks.join("`, `")
                    ),
                ));
            }
            i += 1;
            continue;
        }
        // Calls: transitive acquisition edges and blocking (K001/K003).
        if tok.kind == TokKind::Ident && !held.is_empty() {
            if let Some(callees) = graph.call_sites.get(&(id, i)) {
                for &c in callees {
                    let callee_name = graph.nodes[c].qualified();
                    for lock in &trans_acquires[c] {
                        if held.iter().any(|h| &h.lock == lock) {
                            out.findings.push(Finding::new(
                                &fi.relpath,
                                tok.line,
                                "K001",
                                format!(
                                    "call to `{callee_name}` (re)acquires `{lock}` which \
                                     `{func}` already holds — `std::sync` locks are not \
                                     re-entrant, this deadlocks"
                                ),
                            ));
                        } else {
                            for h in &held {
                                edges.insert(OrderEdge {
                                    held: h.lock.clone(),
                                    acquired: lock.clone(),
                                    file: fi.relpath.clone(),
                                    line: tok.line,
                                    func: func.clone(),
                                    via: Some(callee_name.clone()),
                                });
                            }
                        }
                    }
                    if trans_blocks[c] {
                        let locks: Vec<&str> = held.iter().map(|h| h.lock.as_str()).collect();
                        out.findings.push(Finding::new(
                            &fi.relpath,
                            tok.line,
                            "K003",
                            format!(
                                "call to `{callee_name}` can block (channel/join/condvar \
                                 inside) while `{}` is held in `{func}` — release the lock \
                                 first",
                                locks.join("`, `")
                            ),
                        ));
                    }
                }
            }
        }
        i += 1;
    }
}

/// First token of the receiver chain ending at the method token `i`:
/// `self.shared.slot.lock` → index of `self`.
fn chain_start(toks: &[Token], i: usize) -> usize {
    let mut head = i;
    loop {
        let Some(dot) = prev_sig(toks, head) else {
            return head;
        };
        if !toks[dot].is_punct('.') {
            return head;
        }
        let Some(r) = prev_sig(toks, dot) else {
            return head;
        };
        if toks[r].kind == TokKind::Ident {
            head = r;
            continue;
        }
        if toks[r].is_punct(')') {
            let mut depth = 0i64;
            let mut j = r;
            loop {
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                match j.checked_sub(1) {
                    Some(k) => j = k,
                    None => return head,
                }
            }
            match prev_sig(toks, j) {
                Some(f) if toks[f].kind == TokKind::Ident => {
                    head = f;
                    continue;
                }
                _ => return head,
            }
        }
        return head;
    }
}

/// Finds every elementary cycle in the (small) lock-name order graph and
/// reports each once, anchored at its first witness edge.
fn report_cycles(edges: &[OrderEdge], findings: &mut Vec<Finding>) {
    // Adjacency with one representative witness per (from, to).
    let mut adj: BTreeMap<&str, BTreeMap<&str, &OrderEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.held)
            .or_default()
            .entry(&e.acquired)
            .or_insert(e);
    }
    let names: Vec<&str> = adj.keys().copied().collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in &names {
        // DFS bounded by the tiny graph size; collect simple cycles through
        // `start` whose minimum element is `start` (canonical rotation →
        // each cycle reported once).
        let mut stack = vec![(start, vec![start])];
        while let Some((at, path)) = stack.pop() {
            let Some(nexts) = adj.get(at) else { continue };
            for (&to, _) in nexts.iter() {
                if to == start {
                    let canon: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    if canon.iter().min() == canon.first() // rotation anchor
                        && reported.insert(canon.clone())
                    {
                        let mut msg = String::from("lock-order cycle: ");
                        for (k, name) in path.iter().enumerate() {
                            let next = path.get(k + 1).copied().unwrap_or(start);
                            let e = adj[name][next];
                            msg.push_str(&format!(
                                "`{}` → `{}` ({}:{} in `{}`{}); ",
                                e.held,
                                e.acquired,
                                e.file,
                                e.line,
                                e.func,
                                e.via
                                    .as_deref()
                                    .map(|v| format!(" via `{v}`"))
                                    .unwrap_or_default()
                            ));
                        }
                        msg.push_str(
                            "threads taking these paths concurrently deadlock — \
                                      acquire in one canonical order",
                        );
                        let first = adj[start][path.get(1).copied().unwrap_or(start)];
                        findings.push(Finding::new(&first.file, first.line, "K001", msg));
                    }
                } else if !path.contains(&to) && to > start {
                    let mut p = path.clone();
                    p.push(to);
                    stack.push((to, p));
                }
            }
        }
    }
}
