//! A lightweight item parser on top of the lexer: just enough structure for
//! the semantic rules (call graph, lock analysis, reachability).
//!
//! The parser recognises `impl` blocks (to attribute methods to a self
//! type) and `fn` items (name, visibility, body token range).  It is a
//! single linear pass with a brace-depth counter — no expression grammar,
//! no generics resolution — because the semantic rules only need to know
//! *which function* a token belongs to and *what type* a method hangs off.
//! Everything the pass cannot decide is reported, not guessed silently: see
//! [`crate::callgraph`]'s ambiguity list.

use crate::lexer::{TokKind, Token};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// The function's name.
    pub name: String,
    /// Self type of the enclosing `impl` block, if the fn is a method or
    /// associated function (`impl Batcher { fn submit … }` → `Batcher`).
    pub impl_type: Option<String>,
    /// Declared `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// Token index of the `fn` keyword — the start of the declaration's
    /// scope, so per-fn analyses (receiver typing) see the parameter list.
    pub sig_start: usize,
    /// Token index range of the body, *excluding* the outer braces.
    /// Empty for bodyless declarations (trait methods, extern fns).
    pub body: std::ops::Range<usize>,
    /// The fn lives in a `#[test]`/`#[cfg(test)]` region (the containing
    /// file may additionally be test-only; callers combine both).
    pub is_test: bool,
}

impl FnDecl {
    /// `Type::name` for methods, plain `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// All `fn` items of one file, in source order.
pub fn parse_fns(toks: &[Token], test_mask: &[bool]) -> Vec<FnDecl> {
    let mut fns = Vec::new();
    // Stack of enclosing impl blocks: (self type, brace depth of the impl
    // body).  A fn whose declaration sits at exactly that depth is a method
    // of the impl; deeper fns are nested items and stay unattributed.
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            while impls.last().is_some_and(|(_, d)| *d > depth) {
                impls.pop();
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") && impl_is_item(toks, i) {
            if let Some((self_type, open)) = parse_impl_header(toks, i) {
                impls.push((self_type, depth + 1));
                depth += 1;
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("fn") {
            if let Some(decl) = parse_fn(toks, i, test_mask, &impls, depth) {
                // Continue scanning *inside* the body (for nested fns and
                // closing braces) rather than skipping it; the depth counter
                // keeps attribution straight.
                i += 1;
                fns.push(decl);
                continue;
            }
        }
        i += 1;
    }
    fns
}

/// `impl` starts an item (not an `impl Trait` type) when the previous
/// significant token could end an item: nothing, `;`, `{`, `}`, a closing
/// attribute `]`, or the `unsafe` qualifier.
fn impl_is_item(toks: &[Token], i: usize) -> bool {
    match prev_sig(toks, i) {
        None => true,
        Some(p) => {
            let t = &toks[p];
            t.is_punct(';')
                || t.is_punct('{')
                || t.is_punct('}')
                || t.is_punct(']')
                || t.is_ident("unsafe")
        }
    }
}

/// From an item `impl` token, returns `(self type name, index of the body
/// open brace)`.  The self type is the last path segment before the body
/// (or before any generic arguments): `impl fmt::Debug for WorkerPool` →
/// `WorkerPool`; `impl<T> Foo<T>` → `Foo`.
fn parse_impl_header(toks: &[Token], impl_idx: usize) -> Option<(String, usize)> {
    let mut i = impl_idx + 1;
    let mut angle = 0i64;
    // The self type is the type after `for` if present, else the first type.
    let mut after_for = false;
    let mut candidate: Option<usize> = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') && angle == 0 {
            let name = candidate.map(|c| toks[c].text.clone())?;
            return Some((name, i));
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 {
            if t.is_ident("for") {
                after_for = true;
                candidate = None;
            } else if t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("where") {
                // Keep the last ident seen at angle depth 0 — path segments
                // overwrite each other, so `fmt::Debug` ends at `Debug` and a
                // later `for WorkerPool` resets to `WorkerPool`.
                candidate = Some(i);
            } else if t.is_ident("where") {
                // A where clause after the self type; candidate is final.
                let _ = after_for;
            }
        }
        i += 1;
    }
    None
}

/// From a `fn` token, parses one declaration.  Returns `None` when `fn` is
/// part of a function-pointer type (`fn(usize)`) rather than an item.
fn parse_fn(
    toks: &[Token],
    fn_idx: usize,
    test_mask: &[bool],
    impls: &[(String, usize)],
    depth: usize,
) -> Option<FnDecl> {
    let name_idx = next_sig(toks, fn_idx + 1)?;
    if toks[name_idx].kind != TokKind::Ident {
        return None; // `fn(` — a function-pointer type.
    }
    let name = toks[name_idx].text.clone();
    let impl_type = impls
        .last()
        .filter(|(_, d)| *d == depth)
        .map(|(t, _)| t.clone());
    let is_pub = fn_is_pub(toks, fn_idx);
    let is_test = test_mask.get(fn_idx).copied().unwrap_or(false);

    // Scan the signature for the body `{` (paren and angle depth 0) or a
    // terminating `;` (bodyless declaration).
    let mut i = name_idx + 1;
    let mut paren = 0i64;
    let mut angle = 0i64;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct('<') && paren == 0 {
            angle += 1;
        } else if t.is_punct('>') && paren == 0 {
            // `->` must not close an angle bracket.
            if !(i > 0 && toks[i - 1].is_punct('-')) {
                angle = (angle - 1).max(0);
            }
        } else if t.is_punct(';') && paren == 0 {
            return Some(FnDecl {
                name,
                impl_type,
                is_pub,
                line: toks[name_idx].line,
                sig_start: fn_idx,
                body: i..i,
                is_test,
            });
        } else if t.is_punct('{') && paren == 0 && angle <= 0 {
            let close = matching_brace(toks, i);
            return Some(FnDecl {
                name,
                impl_type,
                is_pub,
                line: toks[name_idx].line,
                sig_start: fn_idx,
                body: i + 1..close,
                is_test,
            });
        }
        i += 1;
    }
    None
}

/// Walks back from a `fn` token over qualifiers (`const`, `unsafe`,
/// `async`, `extern "C"`, `pub(...)`) looking for `pub`.
fn fn_is_pub(toks: &[Token], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    for _ in 0..8 {
        let Some(p) = prev_sig(toks, j) else {
            return false;
        };
        let t = &toks[p];
        if t.is_ident("pub") {
            return true;
        }
        if t.is_ident("const") || t.is_ident("unsafe") || t.is_ident("async") {
            j = p;
            continue;
        }
        if t.kind == TokKind::Literal || t.is_ident("extern") {
            // `extern "C" fn` — keep walking.
            j = p;
            continue;
        }
        if t.is_punct(')') {
            // `pub(crate)` / `pub(in …)`: skip the group, then expect `pub`.
            let mut depth = 0i64;
            let mut k = p;
            loop {
                if toks[k].is_punct(')') {
                    depth += 1;
                } else if toks[k].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return false;
                }
                k -= 1;
            }
            j = k;
            continue;
        }
        return false;
    }
    false
}

/// Index just past the `}` matching the `{` at `open`.  Returns `toks.len()`
/// for unterminated bodies.
pub fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Index of the next non-comment token at or after `i`.
pub fn next_sig(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !toks[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index of the previous non-comment token strictly before `i`.
pub fn prev_sig(toks: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !toks[j].is_comment() {
            return Some(j);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(source: &str) -> Vec<FnDecl> {
        let toks = lex(source);
        let mask = vec![false; toks.len()];
        parse_fns(&toks, &mask)
    }

    #[test]
    fn free_fns_and_methods() {
        let fns = parse(
            "pub fn free(x: u32) -> u32 { x }\n\
             struct S;\n\
             impl S {\n\
                 pub fn method(&self) -> u32 { helper() }\n\
                 fn private(&self) {}\n\
             }\n\
             fn helper() -> u32 { 7 }\n",
        );
        let names: Vec<String> = fns.iter().map(FnDecl::qualified).collect();
        assert_eq!(names, vec!["free", "S::method", "S::private", "helper"]);
        assert!(fns[0].is_pub && fns[1].is_pub && !fns[2].is_pub && !fns[3].is_pub);
    }

    #[test]
    fn trait_impls_attribute_to_the_self_type() {
        let fns = parse(
            "impl std::fmt::Debug for WorkerPool {\n\
                 fn fmt(&self, f: &mut Formatter) -> Result { Ok(()) }\n\
             }\n\
             impl<T: Clone> Drop for Guard<'_, T> {\n\
                 fn drop(&mut self) {}\n\
             }\n",
        );
        let names: Vec<String> = fns.iter().map(FnDecl::qualified).collect();
        assert_eq!(names, vec!["WorkerPool::fmt", "Guard::drop"]);
    }

    #[test]
    fn impl_trait_in_signatures_is_not_an_item() {
        let fns = parse(
            "pub fn takes(f: impl Fn(usize) + Sync) -> impl Iterator<Item = u32> {\n\
                 std::iter::empty()\n\
             }\n",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "takes");
        assert!(fns[0].impl_type.is_none());
    }

    #[test]
    fn nested_fns_are_not_methods() {
        let fns = parse(
            "impl S {\n\
                 fn outer(&self) {\n\
                     fn inner() {}\n\
                     inner();\n\
                 }\n\
             }\n",
        );
        let names: Vec<String> = fns.iter().map(FnDecl::qualified).collect();
        assert_eq!(names, vec!["S::outer", "inner"]);
    }

    #[test]
    fn body_ranges_cover_the_body_only() {
        let src = "fn a() { first(); }\nfn b() { second(); }\n";
        let toks = lex(src);
        let mask = vec![false; toks.len()];
        let fns = parse_fns(&toks, &mask);
        assert_eq!(fns.len(), 2);
        let body_idents = |d: &FnDecl| -> Vec<String> {
            toks[d.body.clone()]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .collect()
        };
        assert_eq!(body_idents(&fns[0]), vec!["first"]);
        assert_eq!(body_idents(&fns[1]), vec!["second"]);
    }

    #[test]
    fn bodyless_and_pointer_fns() {
        let fns = parse(
            "trait T { fn required(&self); }\n\
             type Callback = fn(usize) -> bool;\n\
             extern \"C\" { fn c_side(x: u32); }\n",
        );
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["required", "c_side"]);
        assert!(fns.iter().all(|f| f.body.is_empty()));
    }

    #[test]
    fn where_clauses_and_generic_returns() {
        let fns = parse(
            "pub fn generic<T, F>(n: usize, f: F) -> Vec<T>\n\
             where\n\
                 T: Send,\n\
                 F: Fn(usize) -> T,\n\
             {\n\
                 body_marker();\n\
                 Vec::new()\n\
             }\n",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "generic");
        assert!(!fns[0].body.is_empty());
    }
}
