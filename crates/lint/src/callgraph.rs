//! Name-resolution-lite call graph over the whole workspace.
//!
//! Calls are resolved by name and receiver heuristics, not by type
//! checking, so the graph is an *over-approximation*: a call site may fan
//! out to several same-named candidates.  Every multi-candidate resolution
//! is recorded as an [`Ambiguity`] so the imprecision stays visible — the
//! semantic rules (K/H/P004) accept the over-approximation because for
//! deadlock and panic *freedom* a spurious edge can only add findings, never
//! hide one.
//!
//! Receiver heuristics, in resolution order:
//!
//! 1. `self.m(…)` — the enclosing impl's type first, then every workspace
//!    impl defining `m`.
//! 2. `Type::m(…)` — the `(Type, m)` method index when `Type` is a
//!    workspace impl type; otherwise `m` as a free function.
//! 3. `recv.m(…)` where `recv` is a plain identifier — binding *events*
//!    (`recv: Type`, `let recv = Type::…`, `let recv = ….lock()…`) type the
//!    receiver.  The nearest event before the call site in the calling
//!    function wins, so `let a = build(…)` *shadows* an earlier `a: f64`
//!    back to "unknown"; with no in-scope event, file-wide typed events for
//!    the name apply (naming conventions are stable within a file).  A
//!    known non-workspace type (e.g. `Vec`, a lock guard) means the method
//!    is external and no edge is drawn.
//! 4. Anything else (chained calls, temporaries) falls back to every
//!    workspace impl defining `m` (ambiguity when more than one).
//!
//! Known limitations (documented, deliberate): `drop(x)` is `std::mem::drop`
//! and draws no edge to `Drop` impls (the lock analysis models guard drops
//! itself); macro bodies are opaque (`name!(…)` is skipped); trait-object
//! dispatch resolves like case 4.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, TokKind, Token};
use crate::parser::{next_sig, parse_fns, prev_sig, FnDecl};
use crate::rules::is_test_path;

/// Keywords and binding forms that look like `ident (` but are never calls.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "fn", "let", "move", "else",
    "unsafe", "where", "impl", "dyn", "pub", "crate", "super", "mut", "ref", "box", "async",
    "await", "use", "mod", "const", "static", "type", "struct", "enum", "union", "trait",
];

/// One lexed + parsed file, the unit the graph is built from.
#[derive(Debug)]
pub struct FileIndex {
    /// Workspace-relative path with forward slashes.
    pub relpath: String,
    /// The file's full token stream.
    pub toks: Vec<Token>,
    /// All `fn` items, in source order.
    pub fns: Vec<FnDecl>,
    /// The whole file is test/bench/example code.
    pub is_test_file: bool,
}

impl FileIndex {
    /// Lexes and parses one source text.
    pub fn build(relpath: &str, source: &str) -> Self {
        let toks = lex(source);
        let mask = crate::rules::test_region_mask(&toks);
        let fns = parse_fns(&toks, &mask);
        Self {
            relpath: relpath.to_string(),
            toks,
            fns,
            is_test_file: is_test_path(relpath),
        }
    }
}

/// One function in the graph.  `file_idx`/`fn_idx` point back into the
/// [`FileIndex`] list the graph was built from, so analyses can re-scan the
/// body tokens.
#[derive(Debug, Clone)]
pub struct FnNode {
    pub file: String,
    pub file_idx: usize,
    pub fn_idx: usize,
    pub name: String,
    pub impl_type: Option<String>,
    pub is_pub: bool,
    pub line: u32,
    /// Test item, or any item inside a test-only file.
    pub is_test: bool,
}

impl FnNode {
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A call site that resolved to more than one candidate.
#[derive(Debug, Clone)]
pub struct Ambiguity {
    pub file: String,
    pub line: u32,
    /// Qualified name of the calling function.
    pub caller: String,
    /// The callee name as written.
    pub callee: String,
    /// Qualified names of every candidate the edge fans out to.
    pub candidates: Vec<String>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// `edges[n]` = node ids `n` calls (deduplicated, ordered).
    pub edges: Vec<BTreeSet<usize>>,
    /// Call sites per edge: `(caller, callee) -> (file, line)` of the first
    /// witnessing call.
    pub witnesses: BTreeMap<(usize, usize), (String, u32)>,
    /// Every resolved call site: `(caller, token index of the callee name)`
    /// -> candidate callee ids.  Lets token-walking analyses (the lock
    /// pass) ask "what does *this* call resolve to" without re-resolving.
    pub call_sites: BTreeMap<(usize, usize), Vec<usize>>,
    pub ambiguities: Vec<Ambiguity>,
}

impl CallGraph {
    /// Builds the graph over all files.
    pub fn build(files: &[FileIndex]) -> Self {
        let mut g = CallGraph::default();
        // -- node table ----------------------------------------------------
        for (file_idx, fi) in files.iter().enumerate() {
            for (fn_idx, d) in fi.fns.iter().enumerate() {
                g.nodes.push(FnNode {
                    file: fi.relpath.clone(),
                    file_idx,
                    fn_idx,
                    name: d.name.clone(),
                    impl_type: d.impl_type.clone(),
                    is_pub: d.is_pub,
                    line: d.line,
                    is_test: d.is_test || fi.is_test_file,
                });
            }
        }
        g.edges = vec![BTreeSet::new(); g.nodes.len()];

        // -- name indices (BTreeMaps: the linter obeys its own D001) -------
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut impl_types: BTreeSet<&str> = BTreeSet::new();
        for (id, n) in g.nodes.iter().enumerate() {
            match &n.impl_type {
                None => free.entry(&n.name).or_default().push(id),
                Some(t) => {
                    methods.entry(&n.name).or_default().push(id);
                    typed.entry((t, &n.name)).or_default().push(id);
                    impl_types.insert(t);
                }
            }
        }

        // -- per-node call-site resolution ---------------------------------
        let events: Vec<Vec<BindingEvent>> =
            files.iter().map(|fi| binding_events(&fi.toks)).collect();
        let mut new_edges: Vec<(usize, BTreeSet<usize>)> = Vec::new();
        let mut ambiguities = Vec::new();
        for (id, node) in g.nodes.iter().enumerate() {
            let fi = &files[node.file_idx];
            let decl = &fi.fns[node.fn_idx];
            let bindings = &events[node.file_idx];
            let mut callees = BTreeSet::new();
            resolve_body(
                id,
                node,
                decl,
                fi,
                bindings,
                &free,
                &methods,
                &typed,
                &impl_types,
                &g.nodes,
                &mut callees,
                &mut ambiguities,
                &mut g.witnesses,
                &mut g.call_sites,
            );
            new_edges.push((id, callees));
        }
        for (id, callees) in new_edges {
            g.edges[id] = callees;
        }
        g.ambiguities = ambiguities;
        g.ambiguities
            .sort_by(|a, b| (&a.file, a.line, &a.callee).cmp(&(&b.file, b.line, &b.callee)));
        g
    }

    /// Node ids reachable from `roots` (inclusive), following call edges.
    pub fn reachable_from(&self, roots: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut seen = roots.clone();
        let mut stack: Vec<usize> = roots.iter().copied().collect();
        while let Some(n) = stack.pop() {
            for &m in &self.edges[n] {
                if seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        seen
    }

    /// Node ids that can reach any of `targets` (inclusive) — reverse
    /// reachability, for "which public APIs reach this unsafe block".
    pub fn reaching(&self, targets: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut rev: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.nodes.len()];
        for (n, outs) in self.edges.iter().enumerate() {
            for &m in outs {
                rev[m].insert(n);
            }
        }
        let mut seen = targets.clone();
        let mut stack: Vec<usize> = targets.iter().copied().collect();
        while let Some(n) = stack.pop() {
            for &m in &rev[n] {
                if seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        seen
    }

    /// A shortest call chain `from → … → to`, as qualified names, for
    /// human-readable finding messages.  Empty when unreachable.
    pub fn chain(&self, from: usize, to: usize) -> Vec<String> {
        if from == to {
            return vec![self.nodes[from].qualified()];
        }
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        let mut seen = BTreeSet::from([from]);
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if seen.insert(m) {
                    prev.insert(m, n);
                    if m == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(&p) = prev.get(&cur) {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return path.iter().map(|&i| self.nodes[i].qualified()).collect();
                    }
                    queue.push_back(m);
                }
            }
        }
        Vec::new()
    }
}

/// One receiver-typing fact, in token order: at token `idx`, `name` was
/// bound with type `ty` (`None` = bound to something the heuristics cannot
/// type, which *shadows* any earlier typing of the same name).
#[derive(Debug, Clone)]
struct BindingEvent {
    idx: usize,
    name: String,
    ty: Option<String>,
}

/// All binding events of one file, from `name: Type` (params, fields,
/// lets), `let name = Type::…` / `Type {…}` constructions, and guard
/// acquisitions (`let name = ….lock()…` types `name` as `MutexGuard`).  A
/// `let name = <anything else>` records a `None` event so stale types from
/// earlier in the function do not leak forward past a rebinding.
fn binding_events(toks: &[Token]) -> Vec<BindingEvent> {
    let mut events = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || tok.is_comment() {
            continue;
        }
        let Some(sep) = next_sig(toks, i + 1) else {
            continue;
        };
        if toks[sep].is_punct(':') {
            // `name : Type` — but not `name ::` (a path).
            if next_sig(toks, sep + 1).is_some_and(|j| toks[j].is_punct(':')) {
                continue;
            }
            if let Some(ty) = first_type_ident(toks, sep + 1) {
                events.push(BindingEvent {
                    idx: i,
                    name: tok.text.clone(),
                    ty: Some(ty),
                });
            }
        } else if toks[sep].is_punct('=') {
            // `let name = …` (skip `==`, `=>`).
            if next_sig(toks, sep + 1)
                .is_some_and(|j| toks[j].is_punct('=') || toks[j].is_punct('>'))
            {
                continue;
            }
            let is_let_binding = prev_sig(toks, i)
                .is_some_and(|p| toks[p].is_ident("let") || toks[p].is_ident("mut"));
            if !is_let_binding {
                continue;
            }
            let mut ty = None;
            if let Some(j) = next_sig(toks, sep + 1) {
                let t = &toks[j];
                let looks_like_type = t.kind == TokKind::Ident
                    && t.text.chars().next().is_some_and(char::is_uppercase);
                if looks_like_type
                    && next_sig(toks, j + 1)
                        .is_some_and(|k| toks[k].is_punct(':') || toks[k].is_punct('{'))
                {
                    ty = Some(t.text.clone());
                }
            }
            if ty.is_none() && initializer_acquires_guard(toks, sep + 1) {
                // `let g = ….lock()…` / `lock_unpoisoned(…)`: `g` is a lock
                // guard.  Deref'd method calls on guards resolve like any
                // external type (no edge) — the lock analysis models guard
                // lifetimes itself from the token stream.
                ty = Some("MutexGuard".to_string());
            }
            events.push(BindingEvent {
                idx: i,
                name: tok.text.clone(),
                ty,
            });
        }
    }
    events
}

/// Whether a `let` initializer (tokens from just after `=` to the
/// statement-ending `;`) acquires a lock guard: a `.lock(`/`.read(`/
/// `.write(` adapter or a `lock_unpoisoned(…)` wrapper call.
fn initializer_acquires_guard(toks: &[Token], start: usize) -> bool {
    let mut paren = 0i64;
    let mut brace = 0i64;
    for j in start..toks.len() {
        let t = &toks[j];
        if t.is_comment() {
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace < 0 {
                return false;
            }
        } else if t.is_punct(';') && paren <= 0 && brace == 0 {
            return false;
        } else if t.kind == TokKind::Ident
            && next_sig(toks, j + 1).is_some_and(|k| toks[k].is_punct('('))
        {
            let dotted = prev_sig(toks, j).is_some_and(|p| toks[p].is_punct('.'));
            if (dotted && matches!(t.text.as_str(), "lock" | "read" | "write"))
                || (!dotted && t.text == "lock_unpoisoned")
            {
                return true;
            }
        }
    }
    false
}

/// The type of `name` at token `at`, per the nearest binding event before
/// `at` within the scope `[scope_start, at)`.  `None` = no event in scope
/// (fan out); `Some(None)` = rebound to unknown (fan out); `Some(Some(ty))`
/// = typed.
fn binding_at<'e>(
    events: &'e [BindingEvent],
    name: &str,
    scope_start: usize,
    at: usize,
) -> Option<&'e Option<String>> {
    events
        .iter()
        .rfind(|e| e.name == name && e.idx >= scope_start && e.idx < at)
        .map(|e| &e.ty)
}

/// First type-name identifier after a `:` separator, skipping `&`, `mut`,
/// lifetimes, `dyn` and `impl`.  Deref-transparent wrappers (`Arc<T>`,
/// `Rc<T>`, `Box<T>`) are seen through: method calls on them dispatch to
/// `T`, so `pool: Arc<WorkerPool>` types `pool` as `WorkerPool`.
fn first_type_ident(toks: &[Token], mut i: usize) -> Option<String> {
    for _ in 0..10 {
        let j = next_sig(toks, i)?;
        let t = &toks[j];
        if t.is_punct('&')
            || t.kind == TokKind::Lifetime
            || t.is_ident("mut")
            || t.is_ident("dyn")
            || t.is_ident("impl")
        {
            i = j + 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            if matches!(t.text.as_str(), "Arc" | "Rc" | "Box") {
                if let Some(k) = next_sig(toks, j + 1).filter(|&k| toks[k].is_punct('<')) {
                    i = k + 1;
                    continue;
                }
            }
            return Some(t.text.clone());
        }
        return None;
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn resolve_body(
    caller_id: usize,
    caller: &FnNode,
    decl: &FnDecl,
    fi: &FileIndex,
    bindings: &[BindingEvent],
    free: &BTreeMap<&str, Vec<usize>>,
    methods: &BTreeMap<&str, Vec<usize>>,
    typed: &BTreeMap<(&str, &str), Vec<usize>>,
    impl_types: &BTreeSet<&str>,
    nodes: &[FnNode],
    callees: &mut BTreeSet<usize>,
    ambiguities: &mut Vec<Ambiguity>,
    witnesses: &mut BTreeMap<(usize, usize), (String, u32)>,
    call_sites: &mut BTreeMap<(usize, usize), Vec<usize>>,
) {
    let toks = &fi.toks;
    for i in decl.body.clone() {
        let tok = &toks[i];
        if tok.kind != TokKind::Ident || NON_CALL_IDENTS.contains(&tok.text.as_str()) {
            continue;
        }
        let Some(after) = next_sig(toks, i + 1) else {
            continue;
        };
        if toks[after].is_punct('!') {
            continue; // macro invocation — opaque
        }
        if !toks[after].is_punct('(') {
            continue;
        }
        let name = tok.text.as_str();
        let prev = prev_sig(toks, i);
        let candidates: Vec<usize> = match prev {
            // `recv . name (`
            Some(p) if toks[p].is_punct('.') => {
                let recv = prev_sig(toks, p);
                match recv.map(|r| &toks[r]) {
                    Some(r) if r.is_ident("self") => {
                        // `self.name(…)` — enclosing impl first.
                        let own = decl
                            .impl_type
                            .as_deref()
                            .and_then(|t| typed.get(&(t, name)))
                            .cloned()
                            .unwrap_or_default();
                        if own.is_empty() {
                            methods.get(name).cloned().unwrap_or_default()
                        } else {
                            own
                        }
                    }
                    Some(r) if r.kind == TokKind::Ident => {
                        // Plain-ident receiver: the nearest in-scope binding
                        // event before the call site wins; with no in-scope
                        // event, fall back to the file-wide typed events for
                        // the name (naming conventions like `pool:
                        // &WorkerPool` are stable across a file's fns).
                        let r_idx = recv.unwrap_or(i);
                        let resolve_typed = |tys: &[&String]| -> Vec<usize> {
                            // A known type without the method means the call
                            // is inherited/derived (workspace type) or std's
                            // (external type: Vec, Arc, a guard) — no edge.
                            tys.iter()
                                .flat_map(|t| {
                                    typed.get(&(t.as_str(), name)).cloned().unwrap_or_default()
                                })
                                .collect()
                        };
                        match binding_at(bindings, &r.text, decl.sig_start, r_idx) {
                            Some(Some(ty)) => resolve_typed(&[ty]),
                            // Rebound to an untypable expression: fan out.
                            Some(None) => methods.get(name).cloned().unwrap_or_default(),
                            None => {
                                let tys: Vec<&String> = bindings
                                    .iter()
                                    .filter(|e| e.name == r.text)
                                    .filter_map(|e| e.ty.as_ref())
                                    .collect();
                                if tys.is_empty() {
                                    methods.get(name).cloned().unwrap_or_default()
                                } else {
                                    resolve_typed(&tys)
                                }
                            }
                        }
                    }
                    // Chained/complex receiver — fall back to all impls.
                    _ => methods.get(name).cloned().unwrap_or_default(),
                }
            }
            // `Seg :: name (`
            Some(p) if toks[p].is_punct(':') => {
                let seg = prev_sig(toks, p)
                    .and_then(|q| prev_sig(toks, q))
                    .map(|s| &toks[s]);
                match seg {
                    Some(s) if s.kind == TokKind::Ident && impl_types.contains(s.text.as_str()) => {
                        typed
                            .get(&(s.text.as_str(), name))
                            .cloned()
                            .unwrap_or_default()
                    }
                    _ => free.get(name).cloned().unwrap_or_default(),
                }
            }
            // Bare `name (` — a free-function call (same-file preferred).
            _ => {
                let all = free.get(name).cloned().unwrap_or_default();
                let local: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&id| nodes[id].file_idx == caller.file_idx)
                    .collect();
                if local.is_empty() {
                    all
                } else {
                    local
                }
            }
        };
        if candidates.is_empty() {
            continue;
        }
        if candidates.len() > 1 {
            ambiguities.push(Ambiguity {
                file: fi.relpath.clone(),
                line: tok.line,
                caller: caller.qualified(),
                callee: name.to_string(),
                candidates: candidates.iter().map(|&id| nodes[id].qualified()).collect(),
            });
        }
        call_sites.insert((caller_id, i), candidates.clone());
        for id in candidates {
            witnesses
                .entry((caller_id, id))
                .or_insert_with(|| (fi.relpath.clone(), tok.line));
            callees.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(sources: &[(&str, &str)]) -> (Vec<FileIndex>, CallGraph) {
        let files: Vec<FileIndex> = sources
            .iter()
            .map(|(path, src)| FileIndex::build(path, src))
            .collect();
        let g = CallGraph::build(&files);
        (files, g)
    }

    fn edge_names(g: &CallGraph) -> BTreeSet<(String, String)> {
        let mut out = BTreeSet::new();
        for (n, outs) in g.edges.iter().enumerate() {
            for &m in outs {
                out.insert((g.nodes[n].qualified(), g.nodes[m].qualified()));
            }
        }
        out
    }

    #[test]
    fn free_function_calls_resolve_across_files() {
        let (_f, g) = graph(&[
            ("crates/a/src/lib.rs", "pub fn entry() { helper(); }\n"),
            (
                "crates/b/src/lib.rs",
                "pub fn helper() { leaf(); }\npub fn leaf() {}\n",
            ),
        ]);
        let edges = edge_names(&g);
        assert!(
            edges.contains(&("entry".into(), "helper".into())),
            "{edges:?}"
        );
        assert!(
            edges.contains(&("helper".into(), "leaf".into())),
            "{edges:?}"
        );
        assert!(g.ambiguities.is_empty(), "{:?}", g.ambiguities);
    }

    #[test]
    fn self_method_calls_prefer_the_enclosing_impl() {
        let (_f, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct A;\nstruct B;\n\
             impl A { pub fn run(&self) { self.step(); } fn step(&self) {} }\n\
             impl B { fn step(&self) {} }\n",
        )]);
        let edges = edge_names(&g);
        assert!(
            edges.contains(&("A::run".into(), "A::step".into())),
            "{edges:?}"
        );
        assert!(
            !edges.contains(&("A::run".into(), "B::step".into())),
            "{edges:?}"
        );
        assert!(g.ambiguities.is_empty(), "{:?}", g.ambiguities);
    }

    #[test]
    fn typed_receivers_avoid_false_edges_to_std_methods() {
        // `v.push(…)` on a Vec must NOT edge to `Stack::push`.
        let (_f, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct Stack;\nimpl Stack { pub fn push(&mut self, x: u32) {} }\n\
             pub fn uses_vec(v: &mut Vec<u32>) { v.push(1); }\n\
             pub fn uses_stack(s: &mut Stack) { s.push(1); }\n",
        )]);
        let edges = edge_names(&g);
        assert!(
            !edges.contains(&("uses_vec".into(), "Stack::push".into())),
            "{edges:?}"
        );
        assert!(
            edges.contains(&("uses_stack".into(), "Stack::push".into())),
            "{edges:?}"
        );
    }

    #[test]
    fn untyped_receivers_fan_out_and_report_ambiguity() {
        let (_f, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct A;\nstruct B;\n\
             impl A { pub fn work(&self) {} }\n\
             impl B { pub fn work(&self) {} }\n\
             pub fn dispatch() { make().work(); }\n",
        )]);
        let edges = edge_names(&g);
        assert!(
            edges.contains(&("dispatch".into(), "A::work".into())),
            "{edges:?}"
        );
        assert!(
            edges.contains(&("dispatch".into(), "B::work".into())),
            "{edges:?}"
        );
        assert_eq!(g.ambiguities.len(), 1, "{:?}", g.ambiguities);
        assert_eq!(g.ambiguities[0].callee, "work");
        assert_eq!(g.ambiguities[0].candidates, vec!["A::work", "B::work"]);
    }

    #[test]
    fn type_qualified_calls_use_the_method_index() {
        let (_f, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct Pool;\nimpl Pool { pub fn new() -> Pool { Pool } }\n\
             pub fn build() { let _p = Pool::new(); }\n\
             pub fn external() { let _v = Vec::new(); }\n",
        )]);
        let edges = edge_names(&g);
        assert!(
            edges.contains(&("build".into(), "Pool::new".into())),
            "{edges:?}"
        );
        // `Vec::new` is external — `external` must have no out-edges.
        let ext = g.nodes.iter().position(|n| n.name == "external").unwrap();
        assert!(g.edges[ext].is_empty(), "{:?}", g.edges[ext]);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (_f, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn noisy() { println!(\"x\"); if (1 > 0) { } while (false) { } }\n\
             pub fn println() {} // same-named fn must not be hit by the macro\n",
        )]);
        let noisy = g.nodes.iter().position(|n| n.name == "noisy").unwrap();
        assert!(g.edges[noisy].is_empty(), "{:?}", g.edges[noisy]);
    }

    #[test]
    fn reachability_and_chains() {
        let (_f, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\npub fn b() { c(); }\npub fn c() {}\npub fn lone() {}\n",
        )]);
        let id = |name: &str| g.nodes.iter().position(|n| n.name == name).unwrap();
        let fwd = g.reachable_from(&BTreeSet::from([id("a")]));
        assert!(fwd.contains(&id("c")) && !fwd.contains(&id("lone")));
        let rev = g.reaching(&BTreeSet::from([id("c")]));
        assert!(rev.contains(&id("a")) && !rev.contains(&id("lone")));
        assert_eq!(g.chain(id("a"), id("c")), vec!["a", "b", "c"]);
        assert!(g.chain(id("lone"), id("c")).is_empty());
    }

    #[test]
    fn rebinding_shadows_an_earlier_type_back_to_unknown() {
        // A closure param `|a: f64|` types `a`, but a later `let a = …`
        // rebinding must shadow it so the method call still fans out.
        let (_f, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct Matrix;\nimpl Matrix { pub fn matmul(&self) {} }\n\
             pub fn roster() {\n\
                 let fold = |a: f64, b: f64| a + b;\n\
                 let a = make_matrix();\n\
                 a.matmul();\n\
                 let _ = fold;\n\
             }\n",
        )]);
        let edges = edge_names(&g);
        assert!(
            edges.contains(&("roster".into(), "Matrix::matmul".into())),
            "{edges:?}"
        );
    }

    #[test]
    fn untyped_lets_fan_out_within_their_fn() {
        // `let s = obtain()` rebinds `s` to an untypable expression; the
        // call fans out rather than inheriting `typed`'s `s: Stack`.
        let (_f, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct Stack;\nimpl Stack { pub fn push(&mut self) {} }\n\
             pub fn typed(s: &mut Stack) { s.push(); }\n\
             pub fn other() { let s = obtain(); s.push(); }\n",
        )]);
        let edges = edge_names(&g);
        assert!(
            edges.contains(&("typed".into(), "Stack::push".into())),
            "{edges:?}"
        );
        assert!(
            edges.contains(&("other".into(), "Stack::push".into())),
            "{edges:?}"
        );
    }

    #[test]
    fn file_wide_conventions_type_receivers_with_no_in_scope_binding() {
        // `pool.run()` in a fn that never binds `pool` picks up the
        // file-wide `pool: WorkerPool` convention from another fn, so the
        // call does not fan out to every workspace `run`.
        let (_f, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct WorkerPool;\nimpl WorkerPool { pub fn run(&self) {} }\n\
             struct Sweep;\nimpl Sweep { pub fn run(&self) {} }\n\
             pub fn sized(pool: &WorkerPool) { pool.run(); }\n\
             pub fn unsized_caller() { with(|pool| { pool.run(); }); }\n",
        )]);
        let edges = edge_names(&g);
        assert!(
            edges.contains(&("unsized_caller".into(), "WorkerPool::run".into())),
            "{edges:?}"
        );
        assert!(
            !edges.contains(&("unsized_caller".into(), "Sweep::run".into())),
            "{edges:?}"
        );
    }

    #[test]
    fn lock_guard_lets_type_the_binding_as_external() {
        // `let map = registry().lock().expect(…); map.get(…)` — the guard
        // derefs to a std map, so `get` must not edge to a workspace method.
        let (_f, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct Client;\nimpl Client { pub fn get(&self) {} }\n\
             pub fn lookup() {\n\
                 let map = registry().lock().expect(\"poisoned\");\n\
                 map.get();\n\
             }\n",
        )]);
        let lookup = g.nodes.iter().position(|n| n.name == "lookup").unwrap();
        assert!(g.edges[lookup].is_empty(), "{:?}", g.edges[lookup]);
    }

    #[test]
    fn deref_transparent_wrappers_resolve_to_the_inner_type() {
        // `pool: Arc<WorkerPool>` dispatches method calls on the inner type,
        // so `pool.run(…)` must edge to `WorkerPool::run`, not fan out.
        let (_f, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct WorkerPool;\nimpl WorkerPool { pub fn run(&self) {} }\n\
             struct Sweep;\nimpl Sweep { pub fn run(&self) {} }\n\
             pub fn dispatch(pool: &Arc<WorkerPool>) { pool.run(); }\n",
        )]);
        let edges = edge_names(&g);
        assert!(
            edges.contains(&("dispatch".into(), "WorkerPool::run".into())),
            "{edges:?}"
        );
        assert!(
            !edges.contains(&("dispatch".into(), "Sweep::run".into())),
            "{edges:?}"
        );
    }

    #[test]
    fn same_file_free_fns_win_over_other_files() {
        let (_f, g) = graph(&[
            (
                "crates/a/src/lib.rs",
                "pub fn init() {}\npub fn run() { init(); }\n",
            ),
            ("crates/b/src/lib.rs", "pub fn init() {}\n"),
        ]);
        let run = g.nodes.iter().position(|n| n.name == "run").unwrap();
        let a_init = g
            .nodes
            .iter()
            .position(|n| n.name == "init" && n.file.starts_with("crates/a"))
            .unwrap();
        assert_eq!(g.edges[run], BTreeSet::from([a_init]));
        assert!(g.ambiguities.is_empty(), "{:?}", g.ambiguities);
    }
}
