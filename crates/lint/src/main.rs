//! `nrp-lint` CLI.
//!
//! ```text
//! nrp-lint --workspace [--deny] [--root DIR] [--unsafe-inventory PATH]
//!          [--lock-order PATH] [--format text|json]
//! nrp-lint [--deny] [--format text|json] FILE[=VIRTUAL] ...
//! ```
//!
//! `--workspace` walks every `.rs` file under the root (default: the
//! current directory, or the nearest ancestor containing a workspace
//! `Cargo.toml`) and runs all rules including the cross-file rule A pair.
//! Explicit `FILE` arguments run the per-file rules only; `FILE=VIRTUAL`
//! lints the contents of `FILE` as if it lived at the workspace-relative
//! path `VIRTUAL`, which is how the fixture tests probe path-scoped rules
//! (U002, D002, P) without planting files inside real crates.
//!
//! `--lock-order PATH` writes the semantic pass's lock inventory (every
//! named `Mutex`/`RwLock`/`Condvar`, the observed acquisition-order edges
//! and condvar pairings) as JSON — CI regenerates it and fails on drift
//! against the checked-in `lock-order.json`.  `--format json` replaces the
//! text findings on stdout with one JSON object carrying `findings`,
//! `ambiguities` and `files_checked`.
//!
//! Exit status is 0 unless `--deny` is set and findings exist.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use nrp_lint::{findings_json, lint_source, lint_workspace, unsafe_inventory_json, Config};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut inventory_path: Option<PathBuf> = None;
    let mut lock_order_path: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--deny" => deny = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => return usage("--root requires a directory"),
                }
            }
            "--unsafe-inventory" => {
                i += 1;
                match args.get(i) {
                    Some(p) => inventory_path = Some(PathBuf::from(p)),
                    None => return usage("--unsafe-inventory requires a path"),
                }
            }
            "--lock-order" => {
                i += 1;
                match args.get(i) {
                    Some(p) => lock_order_path = Some(PathBuf::from(p)),
                    None => return usage("--lock-order requires a path"),
                }
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => json = false,
                    Some("json") => json = true,
                    _ => return usage("--format requires `text` or `json`"),
                }
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                return usage(&format!("unknown flag {flag}"));
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }
    if !workspace && files.is_empty() {
        return usage("pass --workspace or at least one FILE");
    }

    let cfg = Config::default();
    let mut findings = Vec::new();
    let mut ambiguities = Vec::new();
    let mut files_checked = 0usize;

    if workspace {
        let root = root.unwrap_or_else(find_workspace_root);
        match lint_workspace(&root, &cfg) {
            Ok(report) => {
                files_checked += report.files_checked;
                findings.extend(report.findings);
                ambiguities = report.ambiguities;
                if let Some(path) = &inventory_path {
                    let payload = unsafe_inventory_json(&report.unsafe_sites);
                    if let Err(err) = std::fs::write(path, payload) {
                        eprintln!("nrp-lint: cannot write {}: {err}", path.display());
                        return ExitCode::from(2);
                    }
                    eprintln!(
                        "nrp-lint: unsafe inventory ({} sites) written to {}",
                        report.unsafe_sites.len(),
                        path.display()
                    );
                }
                if let Some(path) = &lock_order_path {
                    if let Err(err) = std::fs::write(path, &report.lock_order_json) {
                        eprintln!("nrp-lint: cannot write {}: {err}", path.display());
                        return ExitCode::from(2);
                    }
                    eprintln!(
                        "nrp-lint: lock order ({} declarations over {} type sites) written to {}",
                        report.lock_decls,
                        report.lock_type_sites,
                        path.display()
                    );
                }
            }
            Err(err) => {
                eprintln!("nrp-lint: workspace walk failed: {err}");
                return ExitCode::from(2);
            }
        }
    }

    for spec in &files {
        let (path, virtual_path) = match spec.split_once('=') {
            Some((real, virt)) => (real, virt.to_string()),
            None => (spec.as_str(), spec.replace('\\', "/")),
        };
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("nrp-lint: cannot read {path}: {err}");
                return ExitCode::from(2);
            }
        };
        findings.extend(lint_source(&virtual_path, &source, &cfg).findings);
        files_checked += 1;
    }

    if json {
        println!("{}", findings_json(&findings, &ambiguities, files_checked));
    } else {
        for finding in &findings {
            println!("{finding}");
        }
    }
    if findings.is_empty() {
        eprintln!("nrp-lint: {files_checked} file(s) checked, no findings");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "nrp-lint: {} finding(s) across {files_checked} file(s)",
            findings.len()
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

const USAGE: &str = "usage: nrp-lint [--workspace] [--deny] [--root DIR] \
                     [--unsafe-inventory PATH] [--lock-order PATH] \
                     [--format text|json] [FILE[=VIRTUAL]]...";

fn usage(message: &str) -> ExitCode {
    eprintln!("nrp-lint: {message}\n{USAGE}");
    ExitCode::from(2)
}

/// Walks up from the current directory to the first ancestor whose
/// `Cargo.toml` declares `[workspace]`; falls back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        match dir.parent() {
            Some(parent) => dir = Path::new(parent).to_path_buf(),
            None => return PathBuf::from("."),
        }
    }
}
