//! Criterion micro-benchmarks of the three performance-substrate hot paths:
//!
//! * **pool vs. scoped dispatch** — many tiny chunk maps, the shape of an
//!   embedding's kernel stream (propagation hops × Krylov iterations × CGS2
//!   passes): the persistent [`WorkerPool`] pays thread spawn once, the
//!   scoped path pays it per call.
//! * **push workspace reuse** — per-source forward push with a reused
//!   [`PushWorkspace`] (epoch-stamped sparse reset, zero allocation) vs. a
//!   fresh workspace per source (three `O(n)` allocations each).
//! * **CSR assembly** — `from_triplets` counting sort (`O(nnz)`) vs. the
//!   comparison-sort reference (`O(nnz log nnz)`).
//!
//! `cargo run -p nrp-bench --bin bench_hotpaths` runs the same measurements
//! headlessly and emits `BENCH_hotpaths.json` for the perf trajectory.

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use nrp_bench::hotpaths::{assembly_triplets, kernel_stream, push_sweep};
use nrp_core::parallel::{Exec, WorkerPool};
use nrp_core::push::PushWorkspace;
use nrp_graph::generators::erdos_renyi_nm;
use nrp_graph::{Graph, GraphKind};
use nrp_linalg::SparseMatrix;

fn graph(nodes: usize, edges: usize) -> Graph {
    erdos_renyi_nm(nodes, edges, GraphKind::Directed, 7).expect("valid ER parameters")
}

fn bench_pool_vs_scoped(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let threads = 4;
    let calls = 200;
    let n = 1024;
    group.bench_function(BenchmarkId::new("scoped", threads), |b| {
        let exec = Exec::scoped(threads);
        b.iter(|| black_box(kernel_stream(&exec, calls, n)));
    });
    group.bench_function(BenchmarkId::new("pooled", threads), |b| {
        let pool = Arc::new(WorkerPool::new(threads));
        let exec = Exec::pooled(pool, threads);
        b.iter(|| black_box(kernel_stream(&exec, calls, n)));
    });
    group.finish();
}

fn bench_push_workspace(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_push");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let g = graph(20_000, 100_000);
    let sources = 256u32;
    group.bench_function("fresh_workspace", |b| {
        b.iter(|| black_box(push_sweep(&g, sources, None)));
    });
    group.bench_function("reused_workspace", |b| {
        let mut ws = PushWorkspace::with_capacity(g.num_nodes());
        b.iter(|| black_box(push_sweep(&g, sources, Some(&mut ws))));
    });
    group.finish();
}

fn bench_csr_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_assembly");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let rows = 20_000;
    let cols = 20_000;
    let triplets = assembly_triplets(500_000, rows, cols);
    group.bench_function("counting_sort", |b| {
        b.iter(|| {
            black_box(SparseMatrix::from_triplets(rows, cols, &triplets).expect("valid triplets"))
        });
    });
    group.bench_function("comparison_sort", |b| {
        b.iter(|| {
            black_box(
                SparseMatrix::from_triplets_comparison(rows, cols, &triplets)
                    .expect("valid triplets"),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pool_vs_scoped,
    bench_push_workspace,
    bench_csr_assembly
);
criterion_main!(benches);
