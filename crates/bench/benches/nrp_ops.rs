//! Criterion micro-benchmarks of the NRP pipeline stages, backing the
//! complexity claims of Section 4.4: ApproxPPR factorization, one
//! reweighting epoch, and the end-to-end pipeline at two graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nrp_core::approx_ppr::{ApproxPpr, ApproxPprParams};
use nrp_core::reweight::{update_backward_weights, NodeWeights, ReweightConfig};
use nrp_core::{Embedder, Nrp, NrpParams};
use nrp_graph::generators::erdos_renyi_nm;
use nrp_graph::{Graph, GraphKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn graph(nodes: usize, edges: usize) -> Graph {
    erdos_renyi_nm(nodes, edges, GraphKind::Directed, 7).expect("valid ER parameters")
}

fn bench_approx_ppr(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_ppr_factorize");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (nodes, edges) in [(2_000usize, 10_000usize), (4_000, 20_000)] {
        let g = graph(nodes, edges);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{nodes}_m{edges}")),
            &g,
            |b, g| {
                let embedder = ApproxPpr::new(ApproxPprParams {
                    half_dimension: 16,
                    ..Default::default()
                });
                b.iter(|| embedder.factorize(g).expect("factorization succeeds"));
            },
        );
    }
    group.finish();
}

fn bench_reweight_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("reweight_epoch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (nodes, edges) in [(2_000usize, 10_000usize), (4_000, 20_000)] {
        let g = graph(nodes, edges);
        let (x, y) = ApproxPpr::new(ApproxPprParams {
            half_dimension: 16,
            ..Default::default()
        })
        .factorize(&g)
        .expect("factorization succeeds");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{nodes}_m{edges}")),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut weights = NodeWeights::initialize(g);
                    let mut rng = ChaCha8Rng::seed_from_u64(1);
                    update_backward_weights(
                        g,
                        &x,
                        &y,
                        &mut weights,
                        &ReweightConfig::default(),
                        &mut rng,
                    )
                    .expect("epoch succeeds");
                    weights
                });
            },
        );
    }
    group.finish();
}

fn bench_full_nrp(c: &mut Criterion) {
    let mut group = c.benchmark_group("nrp_end_to_end");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (nodes, edges) in [(2_000usize, 10_000usize), (4_000, 20_000)] {
        let g = graph(nodes, edges);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{nodes}_m{edges}")),
            &g,
            |b, g| {
                let embedder = Nrp::new(
                    NrpParams::builder()
                        .dimension(32)
                        .reweight_epochs(5)
                        .build()
                        .expect("valid params"),
                );
                b.iter(|| embedder.embed_default(g).expect("embedding succeeds"));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_approx_ppr,
    bench_reweight_epoch,
    bench_full_nrp
);
criterion_main!(benches);
