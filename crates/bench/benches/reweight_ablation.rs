//! Ablation: the paper's approximate `b₁` term (Eq. 14) vs the exact `b₁`
//! inside the coordinate-descent reweighting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nrp_core::approx_ppr::{ApproxPpr, ApproxPprParams};
use nrp_core::reweight::{learn_weights, ReweightConfig};
use nrp_graph::generators::erdos_renyi_nm;
use nrp_graph::GraphKind;

fn bench_b1_variants(c: &mut Criterion) {
    let graph = erdos_renyi_nm(3_000, 15_000, GraphKind::Directed, 5).expect("valid ER parameters");
    let (x, y) = ApproxPpr::new(ApproxPprParams {
        half_dimension: 16,
        ..Default::default()
    })
    .factorize(&graph)
    .expect("factorization succeeds");
    let mut group = c.benchmark_group("reweighting_b1");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, exact) in [("approximate_b1", false), ("exact_b1", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &exact, |b, &exact| {
            b.iter(|| {
                learn_weights(
                    &graph,
                    &x,
                    &y,
                    &ReweightConfig {
                        epochs: 3,
                        exact_b1: exact,
                        ..Default::default()
                    },
                )
                .expect("reweighting succeeds")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_b1_variants);
criterion_main!(benches);
