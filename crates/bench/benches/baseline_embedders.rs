//! Wall-clock comparison of every embedding method on a fixed SBM graph —
//! the micro-benchmark counterpart of the Fig. 7 harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nrp_bench::methods::roster;
use nrp_graph::generators::stochastic_block_model;
use nrp_graph::GraphKind;

fn bench_embedders(c: &mut Criterion) {
    let (graph, _) = stochastic_block_model(&[250, 250, 250], 0.03, 0.002, GraphKind::Directed, 11)
        .expect("valid SBM parameters");
    let mut group = c.benchmark_group("embedders");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for method in roster(32, 1) {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &graph,
            |b, g| {
                b.iter(|| method.embed_default(g).expect("embedding succeeds"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_embedders);
criterion_main!(benches);
