//! Ablation: block-Krylov SVD (the paper's BKSVD) vs plain subspace
//! iteration as the range finder inside ApproxPPR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nrp_graph::generators::erdos_renyi_nm;
use nrp_graph::GraphKind;
use nrp_linalg::{AdjacencyOperator, RandomizedSvd, RandomizedSvdMethod};

fn bench_svd_methods(c: &mut Criterion) {
    let graph =
        erdos_renyi_nm(3_000, 15_000, GraphKind::Undirected, 3).expect("valid ER parameters");
    let op = AdjacencyOperator::new(&graph);
    let mut group = c.benchmark_group("randomized_svd");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, method) in [
        ("block_krylov", RandomizedSvdMethod::BlockKrylov),
        ("subspace_iteration", RandomizedSvdMethod::SubspaceIteration),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &method, |b, &method| {
            b.iter(|| {
                RandomizedSvd::new(32)
                    .iterations(6)
                    .method(method)
                    .seed(1)
                    .compute(&op)
                    .expect("svd succeeds")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_svd_methods);
criterion_main!(benches);
