//! Minimal table formatting for the harness binaries.
//!
//! Output is printed both as an aligned human-readable table and as CSV (one
//! line per row prefixed with `csv,`) so results can be scraped into plots.

/// A simple column-aligned table that also emits CSV rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column header.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are displayed as-is).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table plus CSV lines.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&render_row(&self.header, &widths));
        out.push_str(&render_row(
            &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
            &widths,
        ));
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out.push('\n');
        out.push_str(&format!("csv,{}\n", self.header.join(",")));
        for row in &self.rows {
            out.push_str(&format!("csv,{}\n", row.join(",")));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

fn render_row<S: AsRef<str>>(cells: &[S], widths: &[usize]) -> String {
    let mut line = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let width = widths.get(i).copied().unwrap_or(0);
        line.push_str(&format!("{:width$}  ", cell.as_ref(), width = width));
    }
    line.push('\n');
    line
}

/// Formats a float with 4 decimal places.
pub fn fmt4(value: f64) -> String {
    format!("{value:.4}")
}

/// Formats a duration in seconds with 3 decimal places.
pub fn fmt_secs(duration: std::time::Duration) -> String {
    format!("{:.3}", duration.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_header_rows_and_csv() {
        let mut t = Table::new("demo", &["method", "auc"]);
        t.add_row(vec!["NRP".into(), fmt4(0.91234)]);
        t.add_row(vec!["DeepWalk".into(), fmt4(0.875)]);
        let rendered = t.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("csv,method,auc"));
        assert!(rendered.contains("csv,NRP,0.9123"));
        assert!(rendered.contains("DeepWalk"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt4(0.5), "0.5000");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
