//! Minimal table formatting plus RFC-4180 CSV for the harness binaries.
//!
//! Output is printed both as an aligned human-readable table and as CSV (one
//! line per row prefixed with `csv,`) so results can be scraped into plots.
//! CSV cells are quoted per RFC 4180 ([`csv_escape`]): a cell containing a
//! comma, a double quote or a line break is wrapped in double quotes with
//! embedded quotes doubled, so serialized `MethodConfig` documents and error
//! messages survive the round trip through [`parse_csv_record`].

/// A simple column-aligned table that also emits CSV rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column header.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are displayed as-is).
    ///
    /// Rows narrower than the header are padded with empty cells at render
    /// time; a row *wider* than the header would emit columns the header
    /// does not declare, so it is rejected here.
    ///
    /// # Panics
    ///
    /// Panics if `cells` has more entries than the header — that is a bug in
    /// the harness that would silently corrupt the scraped CSV.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert!(
            cells.len() <= self.header.len(),
            "table '{}': row has {} cells but the header declares {} columns",
            self.title,
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table plus CSV lines.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&render_row(&self.header, &widths));
        out.push_str(&render_row(
            &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
            &widths,
        ));
        let empty = String::new();
        for row in &self.rows {
            let padded: Vec<&String> = (0..columns).map(|i| row.get(i).unwrap_or(&empty)).collect();
            out.push_str(&render_row(&padded, &widths));
        }
        out.push('\n');
        out.push_str(&format!("csv,{}\n", csv_line(&self.header)));
        for row in &self.rows {
            let padded: Vec<&String> = (0..columns).map(|i| row.get(i).unwrap_or(&empty)).collect();
            out.push_str(&format!("csv,{}\n", csv_line(&padded)));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

fn render_row<S: AsRef<str>>(cells: &[S], widths: &[usize]) -> String {
    let mut line = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let width = widths.get(i).copied().unwrap_or(0);
        line.push_str(&format!("{:width$}  ", cell.as_ref(), width = width));
    }
    line.push('\n');
    line
}

/// Quotes a single CSV cell per RFC 4180: cells containing a comma, a double
/// quote, or a CR/LF are wrapped in double quotes with embedded double
/// quotes doubled; all other cells pass through unchanged.
pub fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(cell.len() + 2);
        out.push('"');
        for c in cell.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        cell.to_string()
    }
}

/// Joins cells into one RFC-4180 CSV record (no trailing newline).
pub fn csv_line<S: AsRef<str>>(cells: &[S]) -> String {
    cells
        .iter()
        .map(|c| csv_escape(c.as_ref()))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses one RFC-4180 CSV record produced by [`csv_line`] back into its
/// cells, undoing the quoting.  Errors on an unterminated quoted cell or on
/// stray content after a closing quote.
///
/// The input must be a single record: callers split the stream on physical
/// lines, which is sound because the harness writers never put a line break
/// inside a cell (the sweep runner flattens them) — a quoted cell spanning
/// lines therefore surfaces as an "unterminated quoted cell" error rather
/// than being silently mis-parsed.
pub fn parse_csv_record(line: &str) -> Result<Vec<String>, String> {
    let mut cells = Vec::new();
    let mut cell = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek() {
            Some('"') => {
                chars.next();
                // Quoted cell: read until the closing quote, treating "" as
                // an escaped quote.
                loop {
                    match chars.next() {
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                cell.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(c) => cell.push(c),
                        None => return Err("unterminated quoted cell".into()),
                    }
                }
                match chars.next() {
                    Some(',') => {
                        cells.push(std::mem::take(&mut cell));
                    }
                    None => {
                        cells.push(std::mem::take(&mut cell));
                        return Ok(cells);
                    }
                    Some(c) => {
                        return Err(format!("unexpected `{c}` after closing quote"));
                    }
                }
            }
            _ => {
                // Unquoted cell: read up to the next comma.
                loop {
                    match chars.next() {
                        Some(',') => {
                            cells.push(std::mem::take(&mut cell));
                            break;
                        }
                        Some(c) => cell.push(c),
                        None => {
                            cells.push(std::mem::take(&mut cell));
                            return Ok(cells);
                        }
                    }
                }
            }
        }
    }
}

/// Formats a float with 4 decimal places.
pub fn fmt4(value: f64) -> String {
    format!("{value:.4}")
}

/// Formats a duration in seconds with 3 decimal places.
pub fn fmt_secs(duration: std::time::Duration) -> String {
    format!("{:.3}", duration.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_header_rows_and_csv() {
        let mut t = Table::new("demo", &["method", "auc"]);
        t.add_row(vec!["NRP".into(), fmt4(0.91234)]);
        t.add_row(vec!["DeepWalk".into(), fmt4(0.875)]);
        let rendered = t.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("csv,method,auc"));
        assert!(rendered.contains("csv,NRP,0.9123"));
        assert!(rendered.contains("DeepWalk"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn cells_with_commas_and_quotes_are_rfc4180_quoted() {
        // Regression: a serialized MethodConfig or an error message contains
        // commas (and quotes); unescaped emission corrupted the `csv,` lines.
        let mut t = Table::new("escape", &["method", "config"]);
        t.add_row(vec![
            "NRP".into(),
            r#"{"method": "NRP", "dimension": 16}"#.into(),
        ]);
        let rendered = t.render();
        let csv_row = rendered
            .lines()
            .find(|l| l.starts_with("csv,NRP"))
            .expect("csv row present");
        let cells = parse_csv_record(csv_row).unwrap();
        assert_eq!(cells.len(), 3, "{csv_row}");
        assert_eq!(cells[1], "NRP");
        assert_eq!(cells[2], r#"{"method": "NRP", "dimension": 16}"#);
    }

    #[test]
    fn short_rows_are_padded_to_the_header_width() {
        // Regression: an error row narrower than the header used to emit a
        // ragged CSV record.
        let mut t = Table::new("pad", &["method", "k=16", "k=32"]);
        t.add_row(vec!["LINE".into(), "err:cancelled".into()]);
        let rendered = t.render();
        let csv_row = rendered
            .lines()
            .find(|l| l.starts_with("csv,LINE"))
            .expect("csv row present");
        let cells = parse_csv_record(csv_row).unwrap();
        assert_eq!(cells, vec!["csv", "LINE", "err:cancelled", ""]);
    }

    #[test]
    #[should_panic(expected = "3 cells but the header declares 2")]
    fn rows_wider_than_the_header_are_rejected() {
        let mut t = Table::new("wide", &["a", "b"]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
    }

    #[test]
    fn csv_escape_quotes_only_when_needed() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(csv_escape(""), "");
    }

    #[test]
    fn csv_line_round_trips_through_the_parser() {
        let cells = vec![
            "plain".to_string(),
            "with,comma".to_string(),
            "with \"quotes\"".to_string(),
            String::new(),
            "{\"method\": \"NRP\", \"alpha\": 0.15}".to_string(),
        ];
        let line = csv_line(&cells);
        assert_eq!(parse_csv_record(&line).unwrap(), cells);
    }

    #[test]
    fn parser_rejects_malformed_records() {
        assert!(parse_csv_record("\"unterminated").is_err());
        assert!(parse_csv_record("\"closed\"junk,b").is_err());
        assert_eq!(parse_csv_record("").unwrap(), vec![String::new()]);
        assert_eq!(parse_csv_record("a,,b").unwrap(), vec!["a", "", "b"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt4(0.5), "0.5000");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
