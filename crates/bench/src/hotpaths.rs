//! Shared workloads of the hot-path benchmarks, used by both the criterion
//! bench (`benches/hotpaths.rs`) and the headless `bench_hotpaths` binary so
//! the two always measure the same thing.

use nrp_core::parallel::{self, Exec};
use nrp_core::push::{forward_push_into, PushWorkspace};
use nrp_core::DanglingPolicy;
use nrp_graph::{Graph, NodeId};

/// One micro-stage stream: `calls` chunk maps over `n` items with a small
/// amount of real work per chunk — dispatch overhead dominates, which is
/// exactly what the persistent pool amortizes.
pub fn kernel_stream(exec: &Exec, calls: usize, n: usize) -> f64 {
    let mut acc = 0.0;
    for round in 0..calls {
        let partials = parallel::par_chunk_map_exec(n, 64, exec, |range| {
            range.map(|i| ((i * 31 + round) % 97) as f64).sum::<f64>()
        });
        acc += partials.into_iter().sum::<f64>();
    }
    acc
}

/// Forward pushes from the first `sources` nodes, either reusing the given
/// workspace (the zero-allocation hot path) or allocating a fresh one per
/// source (the historical behaviour).  Returns the total push count.
pub fn push_sweep(graph: &Graph, sources: u32, reuse: Option<&mut PushWorkspace>) -> usize {
    let mut total = 0usize;
    match reuse {
        Some(ws) => {
            for source in 0..sources {
                total += forward_push_into(
                    graph,
                    source as NodeId,
                    0.15,
                    1e-4,
                    DanglingPolicy::SelfLoop,
                    ws,
                )
                .expect("push succeeds")
                .num_pushes;
            }
        }
        None => {
            for source in 0..sources {
                let mut ws = PushWorkspace::new();
                total += forward_push_into(
                    graph,
                    source as NodeId,
                    0.15,
                    1e-4,
                    DanglingPolicy::SelfLoop,
                    &mut ws,
                )
                .expect("push succeeds")
                .num_pushes;
            }
        }
    }
    total
}

/// Deterministic pseudo-random triplets (xorshift stream) with a realistic
/// duplicate rate, for the CSR-assembly scenarios.
pub fn assembly_triplets(nnz: usize, rows: usize, cols: usize) -> Vec<(usize, usize, f64)> {
    let mut state = 0x9e3779b97f4a7c15u64;
    (0..nnz)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state % rows as u64) as usize;
            let c = ((state >> 32) % cols as u64) as usize;
            (r, c, (state % 1000) as f64 * 0.01 - 5.0)
        })
        .collect()
}
