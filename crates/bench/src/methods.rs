//! The method roster shared by the figure harnesses — built from the
//! `nrp-core` method registry, so the harnesses sweep exactly the methods a
//! declarative `MethodConfig` document can name.

use nrp_core::{ApproxPpr, ApproxPprParams};
use nrp_core::{Embedder, MethodConfig, Nrp, NrpParams};

/// Builds NRP with the paper's default hyper-parameters at dimension `k`.
pub fn nrp(dimension: usize, seed: u64) -> Nrp {
    Nrp::new(
        NrpParams::builder()
            .dimension(dimension)
            .seed(seed)
            .build()
            .expect("paper defaults are valid"),
    )
}

/// Builds the ApproxPPR baseline at dimension `k`.
pub fn approx_ppr(dimension: usize, seed: u64) -> ApproxPpr {
    ApproxPpr::new(ApproxPprParams {
        half_dimension: (dimension / 2).max(1),
        seed,
        ..Default::default()
    })
}

/// The configurations behind [`roster`]: every registered method at paper
/// defaults, with the dimension and seed applied uniformly and the sampling
/// budgets of the walk-based methods reduced so a full sweep completes in
/// reasonable time (the relative ordering of the methods is unaffected).
pub fn roster_configs(dimension: usize, seed: u64) -> Vec<MethodConfig> {
    MethodConfig::all_defaults()
        .into_iter()
        .map(|mut config| {
            config.set_dimension(dimension);
            config.set_seed(seed);
            match &mut config {
                MethodConfig::DeepWalk {
                    walks_per_node,
                    walk_length,
                    ..
                } => {
                    *walks_per_node = 5;
                    *walk_length = 30;
                }
                MethodConfig::Node2Vec {
                    walks_per_node,
                    walk_length,
                    p,
                    q,
                    ..
                } => {
                    *walks_per_node = 5;
                    *walk_length = 30;
                    *p = 0.5;
                    *q = 2.0;
                }
                MethodConfig::Line { samples, .. } => *samples = 100_000,
                MethodConfig::Verse {
                    samples_per_node, ..
                } => *samples_per_node = 20,
                MethodConfig::App {
                    samples_per_node, ..
                } => *samples_per_node = 20,
                _ => {}
            }
            config
        })
        .collect()
}

/// Converts an `NRP` [`MethodConfig`] entry into concrete [`NrpParams`] —
/// used by the NRP-only parameter-sweep bins (Figs. 8, 10, 11) to take their
/// base configuration from a `--config` document.  Returns `None` for any
/// other variant.
pub fn nrp_params_from_config(config: &MethodConfig) -> Option<NrpParams> {
    match config {
        MethodConfig::Nrp {
            dimension,
            alpha,
            num_hops,
            reweight_epochs,
            epsilon,
            lambda,
            svd_method,
            exact_b1,
            dangling,
            seed,
        } => Some(NrpParams {
            dimension: *dimension,
            alpha: *alpha,
            num_hops: *num_hops,
            reweight_epochs: *reweight_epochs,
            epsilon: *epsilon,
            lambda: *lambda,
            svd_method: *svd_method,
            exact_b1: *exact_b1,
            dangling: *dangling,
            seed: *seed,
        }),
        _ => None,
    }
}

/// The full roster evaluated by the figure harnesses: NRP, ApproxPPR and one
/// representative per competitor family, instantiated through the method
/// registry from [`roster_configs`].
pub fn roster(dimension: usize, seed: u64) -> Vec<Box<dyn Embedder>> {
    nrp_baselines::register_baselines();
    roster_configs(dimension, seed)
        .iter()
        .map(|config| {
            config
                .build()
                .expect("roster methods are registered and valid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_contains_nrp_and_all_families() {
        let names: Vec<&str> = roster(16, 1).iter().map(|m| m.name()).collect();
        for expected in [
            "NRP",
            "ApproxPPR",
            "STRAP",
            "AROPE",
            "RandNE",
            "Spectral",
            "DeepWalk",
            "node2vec",
            "LINE",
            "VERSE",
            "APP",
        ] {
            assert!(names.contains(&expected), "roster missing {expected}");
        }
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn roster_is_built_from_all_defaults() {
        let configs = roster_configs(32, 9);
        let default_names: Vec<&str> = MethodConfig::all_defaults()
            .iter()
            .map(|c| c.method_name())
            .collect();
        let roster_names: Vec<&str> = configs.iter().map(|c| c.method_name()).collect();
        assert_eq!(roster_names, default_names);
        for config in &configs {
            assert_eq!(config.dimension(), 32, "{}", config.method_name());
            assert_eq!(config.seed(), 9, "{}", config.method_name());
        }
    }

    #[test]
    fn every_roster_method_is_json_constructible_and_runs() {
        use nrp_graph::generators::stochastic_block_model;
        use nrp_graph::GraphKind;

        nrp_baselines::register_baselines();
        let (graph, _) =
            stochastic_block_model(&[12, 12], 0.4, 0.05, GraphKind::Undirected, 3).unwrap();
        for config in roster_configs(8, 3) {
            // Round-trip through JSON, then build and embed through the
            // registry: proves a JSON document can drive every method.
            let json = config
                .to_json()
                .unwrap_or_else(|_| panic!("{}", config.method_name()));
            let parsed: MethodConfig =
                serde_json::from_str(&json).unwrap_or_else(|_| panic!("{}", config.method_name()));
            assert_eq!(parsed, config);
            let embedder = parsed
                .build()
                .unwrap_or_else(|_| panic!("{}", config.method_name()));
            let embedding = embedder
                .embed_default(&graph)
                .unwrap_or_else(|_| panic!("{}", config.method_name()));
            assert_eq!(embedding.num_nodes(), 24, "{}", config.method_name());
            assert!(embedding.is_finite(), "{}", config.method_name());
        }
    }
}
