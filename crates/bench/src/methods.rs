//! The method roster shared by the figure harnesses.

use nrp_baselines::{app, arope, deepwalk, line, node2vec, randne, spectral, strap, verse};
use nrp_baselines::{App, Arope, DeepWalk, Line, Node2Vec, RandNe, SpectralEmbedding, Strap, Verse};
use nrp_core::{ApproxPpr, ApproxPprParams, Embedder, Nrp, NrpParams};

/// Builds NRP with the paper's default hyper-parameters at dimension `k`.
pub fn nrp(dimension: usize, seed: u64) -> Nrp {
    Nrp::new(
        NrpParams::builder()
            .dimension(dimension)
            .seed(seed)
            .build()
            .expect("paper defaults are valid"),
    )
}

/// Builds the ApproxPPR baseline at dimension `k`.
pub fn approx_ppr(dimension: usize, seed: u64) -> ApproxPpr {
    ApproxPpr::new(ApproxPprParams { half_dimension: (dimension / 2).max(1), seed, ..Default::default() })
}

/// The full roster evaluated by the figure harnesses: NRP, ApproxPPR and one
/// representative per competitor family.  Walk-based methods get reduced
/// sampling budgets compared with their library defaults so the harness
/// completes in reasonable time; the relative ordering is unaffected.
pub fn roster(dimension: usize, seed: u64) -> Vec<Box<dyn Embedder>> {
    vec![
        Box::new(nrp(dimension, seed)),
        Box::new(approx_ppr(dimension, seed)),
        Box::new(Strap::new(strap::StrapParams { dimension, seed, ..Default::default() })),
        Box::new(Arope::new(arope::AropeParams { dimension, seed, ..Default::default() })),
        Box::new(RandNe::new(randne::RandNeParams { dimension, seed, ..Default::default() })),
        Box::new(SpectralEmbedding::new(spectral::SpectralParams { dimension, seed, ..Default::default() })),
        Box::new(DeepWalk::new(deepwalk::DeepWalkParams {
            dimension,
            walks_per_node: 5,
            walk_length: 30,
            seed,
            ..Default::default()
        })),
        Box::new(Node2Vec::new(node2vec::Node2VecParams {
            dimension,
            walks_per_node: 5,
            walk_length: 30,
            p: 0.5,
            q: 2.0,
            seed,
            ..Default::default()
        })),
        Box::new(Line::new(line::LineParams { dimension, samples: 100_000, seed, ..Default::default() })),
        Box::new(Verse::new(verse::VerseParams {
            dimension,
            samples_per_node: 20,
            seed,
            ..Default::default()
        })),
        Box::new(App::new(app::AppParams {
            dimension,
            samples_per_node: 20,
            seed,
            ..Default::default()
        })),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_contains_nrp_and_all_families() {
        let names: Vec<&str> = roster(16, 1).iter().map(|m| m.name()).collect();
        for expected in ["NRP", "ApproxPPR", "STRAP", "AROPE", "RandNE", "Spectral", "DeepWalk", "node2vec", "LINE", "VERSE", "APP"] {
            assert!(names.contains(&expected), "roster missing {expected}");
        }
        assert_eq!(names.len(), 11);
    }
}
