//! Closed-loop load generator for the `nrp-serve` HTTP server.
//!
//! Serving benchmarks need three things the embedding harnesses don't:
//! Zipf-skewed key popularity (real query traffic concentrates on hot
//! sources, which is what makes the server's LRU cache earn its keep),
//! latency *percentiles* rather than medians of means, and a closed loop —
//! every worker keeps exactly one request in flight on a persistent
//! connection, so reported latencies are uncontaminated by client-side
//! queueing.
//!
//! Used by the `bench_serve` binary and the CI serve smoke job.

use std::net::SocketAddr;
use std::time::Instant;

use nrp_serve::HttpClient;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A Zipf(`exponent`) distribution over `0..n` with a precomputed CDF;
/// sampling is one uniform draw plus a binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A distribution over `0..n` where item `i` has mass proportional to
    /// `1 / (i + 1)^exponent`.  `exponent = 0` is uniform; the classic
    /// web-traffic skew is around 1.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `exponent` is not finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(exponent.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution has no items (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one item.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose CDF value is >= u,
        // i.e. the unique i with cdf[i-1] < u <= cdf[i].
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Nearest-rank percentile of an **ascending-sorted** slice; `p` in [0, 100].
///
/// # Panics
///
/// Panics on an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One load scenario: how many workers, how many requests each, how skewed.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Server to hammer.
    pub addr: SocketAddr,
    /// Concurrent closed-loop workers (each holds one persistent
    /// connection with exactly one request in flight).
    pub workers: usize,
    /// Requests each worker issues.
    pub requests_per_worker: usize,
    /// Zipf exponent of the source-popularity distribution (0 = uniform).
    pub zipf_exponent: f64,
    /// Sources are drawn from `0..num_sources`.
    pub num_sources: u32,
    /// Base RNG seed; each worker derives its own stream from it.
    pub seed: u64,
    /// Extra query-string suffix appended to every `/ppr` request
    /// (e.g. `"&top=16"`); empty for full answers.
    pub query_suffix: String,
}

/// The measured outcome of one [`run_load`] call.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-request latencies in seconds, ascending.
    pub latencies: Vec<f64>,
    /// Wall-clock seconds from first request to last response.
    pub wall_secs: f64,
    /// Requests that returned HTTP 200 with parseable JSON.
    pub ok: usize,
    /// Requests that failed (transport error, non-200, bad JSON).
    pub errors: usize,
}

impl LoadReport {
    /// Median latency, seconds.
    pub fn p50(&self) -> f64 {
        percentile(&self.latencies, 50.0)
    }

    /// 99th-percentile latency, seconds.
    pub fn p99(&self) -> f64 {
        percentile(&self.latencies, 99.0)
    }

    /// Completed requests per wall-clock second.
    pub fn qps(&self) -> f64 {
        self.ok as f64 / self.wall_secs.max(f64::MIN_POSITIVE)
    }
}

/// Runs the closed loop: `workers` threads, each issuing
/// `requests_per_worker` Zipf-distributed `/ppr` queries over one
/// keep-alive connection, measuring each request end-to-end.
pub fn run_load(spec: &LoadSpec) -> LoadReport {
    let zipf = Zipf::new(spec.num_sources as usize, spec.zipf_exponent);
    let start = Instant::now();
    let outcomes: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.workers)
            .map(|worker| {
                let zipf = &zipf;
                scope.spawn(move || {
                    // splitmix-style odd multiplier decorrelates the
                    // per-worker streams without a second seed parameter.
                    let mut rng = ChaCha8Rng::seed_from_u64(
                        spec.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut client = HttpClient::new(spec.addr);
                    let mut latencies = Vec::with_capacity(spec.requests_per_worker);
                    let mut errors = 0usize;
                    for _ in 0..spec.requests_per_worker {
                        let source = zipf.sample(&mut rng) as u32;
                        let target = format!("/ppr?source={source}{}", spec.query_suffix);
                        let sent = Instant::now();
                        match client.get_json(&target) {
                            Ok(_) => latencies.push(sent.elapsed().as_secs_f64()),
                            Err(_) => errors += 1,
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker panicked"))
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let mut errors = 0;
    for (worker_latencies, worker_errors) in outcomes {
        latencies.extend(worker_latencies);
        errors += worker_errors;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    LoadReport {
        ok: latencies.len(),
        latencies,
        wall_secs,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_a_distribution() {
        let zipf = Zipf::new(100, 1.0);
        assert_eq!(zipf.len(), 100);
        assert!(zipf.cdf.windows(2).all(|w| w[0] <= w[1]), "CDF is monotone");
        assert_eq!(*zipf.cdf.last().unwrap(), 1.0);
    }

    #[test]
    fn zipf_sampling_is_deterministic_and_in_range() {
        let zipf = Zipf::new(50, 1.2);
        let draw = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..200).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(9);
        assert_eq!(a, draw(9));
        assert_ne!(a, draw(10));
        assert!(a.iter().all(|&i| i < 50));
    }

    #[test]
    fn zipf_skews_toward_low_indices() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let hot = (0..5_000).filter(|_| zipf.sample(&mut rng) < 10).count() as f64;
        // Under Zipf(1) over 1000 items the top 10 carry ~39% of the mass;
        // uniform would give 1%.
        assert!(hot / 5_000.0 > 0.25, "top-10 share was {}", hot / 5_000.0);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        for (i, &c) in zipf.cdf.iter().enumerate() {
            let expected = (i + 1) as f64 / 4.0;
            assert!((c - expected).abs() < 1e-12, "cdf[{i}] = {c}");
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 50.0), 2.0);
        assert_eq!(percentile(&sorted, 99.0), 4.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 4.0);
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
    }
}
