//! Load generators for the `nrp-serve` HTTP server: closed-loop
//! ([`run_load`]) and open-loop ([`run_open_loop`]).
//!
//! Serving benchmarks need three things the embedding harnesses don't:
//! Zipf-skewed key popularity (real query traffic concentrates on hot
//! sources, which is what makes the server's LRU cache earn its keep),
//! latency *percentiles* rather than medians of means, and a closed loop —
//! every worker keeps exactly one request in flight on a persistent
//! connection, so reported latencies are uncontaminated by client-side
//! queueing.
//!
//! The *open* loop is the overload instrument: requests arrive on a fixed
//! schedule regardless of how fast the server answers, so driving the
//! arrival rate past measured capacity exercises the server's shedding and
//! deadline paths.  Latencies are measured from the moment the request is
//! *sent* and **only successful (200) requests enter the percentiles** — a
//! shed request has no service latency, it has a shed count.  When a
//! worker falls behind its schedule (on a small CI box the *client* often
//! saturates before the server does) the slip is reported separately as
//! [`OpenLoopReport::max_lag_secs`] instead of being folded into the
//! latency distribution, where it would measure the load generator's host
//! rather than the server under test.
//!
//! Used by the `bench_serve` binary and the CI serve smoke job.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use nrp_obs::clock;

use nrp_serve::HttpClient;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A Zipf(`exponent`) distribution over `0..n` with a precomputed CDF;
/// sampling is one uniform draw plus a binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A distribution over `0..n` where item `i` has mass proportional to
    /// `1 / (i + 1)^exponent`.  `exponent = 0` is uniform; the classic
    /// web-traffic skew is around 1.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `exponent` is not finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(exponent.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution has no items (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one item.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose CDF value is >= u,
        // i.e. the unique i with cdf[i-1] < u <= cdf[i].
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Nearest-rank percentile of an **ascending-sorted** slice; `p` in [0, 100].
///
/// # Panics
///
/// Panics on an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One load scenario: how many workers, how many requests each, how skewed.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Server to hammer.
    pub addr: SocketAddr,
    /// Concurrent closed-loop workers (each holds one persistent
    /// connection with exactly one request in flight).
    pub workers: usize,
    /// Requests each worker issues.
    pub requests_per_worker: usize,
    /// Zipf exponent of the source-popularity distribution (0 = uniform).
    pub zipf_exponent: f64,
    /// Sources are drawn from `0..num_sources`.
    pub num_sources: u32,
    /// Base RNG seed; each worker derives its own stream from it.
    pub seed: u64,
    /// Extra query-string suffix appended to every `/ppr` request
    /// (e.g. `"&top=16"`); empty for full answers.
    pub query_suffix: String,
}

/// The measured outcome of one [`run_load`] call.
///
/// `latencies` holds **successful requests only**: a failed request has no
/// meaningful service time, and mixing transport timeouts or instant
/// rejections into the distribution would corrupt the percentiles in
/// whichever direction the failure mode leans.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-request latencies of *successful* requests, seconds, ascending.
    pub latencies: Vec<f64>,
    /// Wall-clock seconds from first request to last response.
    pub wall_secs: f64,
    /// Requests that returned HTTP 200.
    pub ok: usize,
    /// Requests that failed (transport error or non-200 status).
    pub errors: usize,
    /// Non-200 responses by status code (`503` sheds, `504` deadline
    /// expiries, …).
    pub status_counts: BTreeMap<u16, usize>,
    /// Failures that never produced a response (connect/read/write error).
    pub transport_errors: usize,
}

impl LoadReport {
    /// Median latency of successful requests, seconds.
    pub fn p50(&self) -> f64 {
        percentile(&self.latencies, 50.0)
    }

    /// 99th-percentile latency of successful requests, seconds.
    pub fn p99(&self) -> f64 {
        percentile(&self.latencies, 99.0)
    }

    /// Completed requests per wall-clock second.
    pub fn qps(&self) -> f64 {
        self.ok as f64 / self.wall_secs.max(f64::MIN_POSITIVE)
    }
}

/// Runs the closed loop: `workers` threads, each issuing
/// `requests_per_worker` Zipf-distributed `/ppr` queries over one
/// keep-alive connection, measuring each request end-to-end.
pub fn run_load(spec: &LoadSpec) -> LoadReport {
    let zipf = Zipf::new(spec.num_sources as usize, spec.zipf_exponent);
    let start = clock::now();
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.workers)
            .map(|worker| {
                let zipf = &zipf;
                scope.spawn(move || {
                    // splitmix-style odd multiplier decorrelates the
                    // per-worker streams without a second seed parameter.
                    let mut rng = ChaCha8Rng::seed_from_u64(
                        spec.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut client = HttpClient::new(spec.addr);
                    let mut outcome = WorkerOutcome::default();
                    for _ in 0..spec.requests_per_worker {
                        let source = zipf.sample(&mut rng) as u32;
                        let target = format!("/ppr?source={source}{}", spec.query_suffix);
                        let sent = clock::now();
                        outcome.record(client.get_full(&target, &[]).map(|r| r.status), sent);
                    }
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker panicked"))
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();
    let merged = WorkerOutcome::merge(outcomes);
    LoadReport {
        ok: merged.latencies.len(),
        errors: merged.status_counts.values().sum::<usize>() + merged.transport_errors,
        latencies: merged.latencies,
        wall_secs,
        status_counts: merged.status_counts,
        transport_errors: merged.transport_errors,
    }
}

/// Per-worker tally shared by both load loops.  Only 200s contribute a
/// latency; every failure lands in a status bucket or the transport count.
#[derive(Debug, Default)]
struct WorkerOutcome {
    latencies: Vec<f64>,
    status_counts: BTreeMap<u16, usize>,
    transport_errors: usize,
    max_lag_secs: f64,
}

impl WorkerOutcome {
    fn record(&mut self, status: std::io::Result<u16>, sent: Instant) {
        match status {
            Ok(200) => self.latencies.push(sent.elapsed().as_secs_f64()),
            Ok(status) => *self.status_counts.entry(status).or_insert(0) += 1,
            Err(_) => self.transport_errors += 1,
        }
    }

    /// Merges per-worker outcomes, sorting the combined latencies.
    fn merge(outcomes: Vec<WorkerOutcome>) -> WorkerOutcome {
        let mut merged = WorkerOutcome::default();
        for outcome in outcomes {
            merged.latencies.extend(outcome.latencies);
            for (status, count) in outcome.status_counts {
                *merged.status_counts.entry(status).or_insert(0) += count;
            }
            merged.transport_errors += outcome.transport_errors;
            merged.max_lag_secs = merged.max_lag_secs.max(outcome.max_lag_secs);
        }
        merged.latencies.sort_by(|a, b| a.total_cmp(b));
        merged
    }
}

/// One open-loop overload scenario: a fixed arrival schedule the server
/// cannot slow down.
#[derive(Debug, Clone)]
pub struct OpenLoopSpec {
    /// Server to hammer.
    pub addr: SocketAddr,
    /// Sender threads.  They bound client-side concurrency, so size them
    /// well above `rate_per_sec × typical latency`.
    pub workers: usize,
    /// Total arrival rate, requests per second, across all workers.
    pub rate_per_sec: f64,
    /// Total requests to schedule (the run lasts `total / rate` seconds).
    pub total_requests: usize,
    /// Zipf exponent of the source-popularity distribution (0 = uniform).
    pub zipf_exponent: f64,
    /// Sources are drawn from `0..num_sources`.
    pub num_sources: u32,
    /// Base RNG seed; each worker derives its own stream from it.
    pub seed: u64,
    /// Extra query-string suffix appended to every `/ppr` request.
    pub query_suffix: String,
    /// Sent as `x-deadline-ms` on every request when nonzero.
    pub deadline_ms: u64,
}

/// The measured outcome of one [`run_open_loop`] call.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Latencies of *successful* requests, seconds, ascending — measured
    /// from the moment each request was sent.
    pub latencies: Vec<f64>,
    /// Wall-clock seconds for the whole schedule.
    pub wall_secs: f64,
    /// Worst slip behind the arrival schedule across all workers, seconds.
    /// Nonzero lag means the *client* could not sustain the nominal rate
    /// (expected on small boxes); large lag means the achieved arrival
    /// rate was below `rate_per_sec`.
    pub max_lag_secs: f64,
    /// Requests attempted (the full schedule).
    pub attempted: usize,
    /// Requests that returned HTTP 200.
    pub ok: usize,
    /// Non-200 responses by status code.
    pub status_counts: BTreeMap<u16, usize>,
    /// Failures that never produced a response.
    pub transport_errors: usize,
}

impl OpenLoopReport {
    /// Nearest-rank percentile of the successful-request latencies;
    /// 0 when nothing succeeded.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        percentile(&self.latencies, p)
    }

    /// Successful answers per wall-clock second — the goodput.
    pub fn goodput(&self) -> f64 {
        self.ok as f64 / self.wall_secs.max(f64::MIN_POSITIVE)
    }

    /// Requests shed by the server (`503`) plus deadline expiries (`504`).
    pub fn shed(&self) -> usize {
        self.status_counts.get(&503).copied().unwrap_or(0)
            + self.status_counts.get(&504).copied().unwrap_or(0)
    }
}

/// Runs the open loop: `total_requests` arrivals at `rate_per_sec`, spread
/// round-robin over `workers` threads.  A worker sleeps until each
/// request's scheduled time, then issues it; when the previous request ran
/// long the next one fires immediately and the slip is tracked in
/// [`OpenLoopReport::max_lag_secs`].  Failed requests contribute no
/// latency (see [`OpenLoopReport::latencies`]).
pub fn run_open_loop(spec: &OpenLoopSpec) -> OpenLoopReport {
    assert!(spec.rate_per_sec > 0.0, "open loop needs a positive rate");
    assert!(spec.workers > 0, "open loop needs at least one worker");
    let zipf = Zipf::new(spec.num_sources as usize, spec.zipf_exponent);
    let interval = Duration::from_secs_f64(1.0 / spec.rate_per_sec);
    let deadline_header = spec.deadline_ms.to_string();
    let start = clock::now();
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.workers)
            .map(|worker| {
                let zipf = &zipf;
                let deadline_header = deadline_header.as_str();
                scope.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(
                        spec.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut client = HttpClient::new(spec.addr);
                    let mut outcome = WorkerOutcome::default();
                    let mut arrival = worker;
                    while arrival < spec.total_requests {
                        let scheduled = start + interval.mul_f64(arrival as f64);
                        let now = clock::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        let source = zipf.sample(&mut rng) as u32;
                        let target = format!("/ppr?source={source}{}", spec.query_suffix);
                        let headers: &[(&str, &str)] = if spec.deadline_ms > 0 {
                            &[("x-deadline-ms", deadline_header)]
                        } else {
                            &[]
                        };
                        let sent = clock::now();
                        let lag = sent.saturating_duration_since(scheduled);
                        outcome.max_lag_secs = outcome.max_lag_secs.max(lag.as_secs_f64());
                        let status = client.get_full(&target, headers).map(|r| r.status);
                        outcome.record(status, sent);
                        arrival += spec.workers;
                    }
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("open-loop worker panicked"))
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();
    let merged = WorkerOutcome::merge(outcomes);
    OpenLoopReport {
        attempted: spec.total_requests,
        ok: merged.latencies.len(),
        latencies: merged.latencies,
        wall_secs,
        max_lag_secs: merged.max_lag_secs,
        status_counts: merged.status_counts,
        transport_errors: merged.transport_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_a_distribution() {
        let zipf = Zipf::new(100, 1.0);
        assert_eq!(zipf.len(), 100);
        assert!(zipf.cdf.windows(2).all(|w| w[0] <= w[1]), "CDF is monotone");
        assert_eq!(*zipf.cdf.last().unwrap(), 1.0);
    }

    #[test]
    fn zipf_sampling_is_deterministic_and_in_range() {
        let zipf = Zipf::new(50, 1.2);
        let draw = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..200).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(9);
        assert_eq!(a, draw(9));
        assert_ne!(a, draw(10));
        assert!(a.iter().all(|&i| i < 50));
    }

    #[test]
    fn zipf_skews_toward_low_indices() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let hot = (0..5_000).filter(|_| zipf.sample(&mut rng) < 10).count() as f64;
        // Under Zipf(1) over 1000 items the top 10 carry ~39% of the mass;
        // uniform would give 1%.
        assert!(hot / 5_000.0 > 0.25, "top-10 share was {}", hot / 5_000.0);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        for (i, &c) in zipf.cdf.iter().enumerate() {
            let expected = (i + 1) as f64 / 4.0;
            assert!((c - expected).abs() < 1e-12, "cdf[{i}] = {c}");
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 50.0), 2.0);
        assert_eq!(percentile(&sorted, 99.0), 4.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 4.0);
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
    }

    #[test]
    fn failed_requests_stay_out_of_the_percentiles() {
        // Regression: percentiles must be computed over successful requests
        // only.  A worker that saw one fast success, one shed (503), one
        // deadline expiry (504) and one dead socket reports exactly one
        // latency — the failures land in their own buckets.
        let epoch = clock::now();
        let mut outcome = WorkerOutcome::default();
        outcome.record(Ok(200), epoch);
        outcome.record(Ok(503), epoch);
        outcome.record(Ok(504), epoch);
        outcome.record(
            Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "x",
            )),
            epoch,
        );
        let merged = WorkerOutcome::merge(vec![outcome]);
        assert_eq!(merged.latencies.len(), 1);
        assert_eq!(merged.status_counts.get(&503), Some(&1));
        assert_eq!(merged.status_counts.get(&504), Some(&1));
        assert_eq!(merged.transport_errors, 1);

        let report = OpenLoopReport {
            attempted: 4,
            ok: merged.latencies.len(),
            latencies: merged.latencies,
            wall_secs: 1.0,
            max_lag_secs: 0.0,
            status_counts: merged.status_counts,
            transport_errors: merged.transport_errors,
        };
        assert_eq!(report.shed(), 2);
        assert!(report.percentile(99.0) >= 0.0, "p99 over ok-only latencies");
        let empty = OpenLoopReport {
            attempted: 2,
            ok: 0,
            latencies: Vec::new(),
            wall_secs: 1.0,
            max_lag_secs: 0.0,
            status_counts: BTreeMap::from([(503, 2)]),
            transport_errors: 0,
        };
        assert_eq!(empty.percentile(99.0), 0.0, "no successes, no percentile");
    }
}
