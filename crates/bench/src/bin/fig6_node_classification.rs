//! Regenerates the paper's Fig. 6: node-classification micro-F1 as a
//! function of the training ratio, for every method on the labelled datasets.

use nrp_bench::datasets::suite;
use nrp_bench::report::fmt4;
use nrp_bench::{HarnessArgs, Table};
use nrp_eval::{ClassificationConfig, NodeClassification};

fn main() {
    let args = HarnessArgs::from_env();
    let ratios = [0.1, 0.3, 0.5, 0.7, 0.9];
    for dataset in suite(args.scale, args.seed) {
        let Some(labels) = &dataset.labels else {
            continue;
        };
        let header: Vec<String> = std::iter::once("method".to_string())
            .chain(ratios.iter().map(|r| format!("train={r}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!("Fig. 6 — node classification micro-F1 on {}", dataset.name),
            &header_refs,
        );
        for method in args.roster() {
            let mut row = vec![method.name().to_string()];
            // Embed once, evaluate at every ratio (as the paper does).
            match method.embed_default(&dataset.graph) {
                Ok(embedding) => {
                    for &ratio in &ratios {
                        let task = NodeClassification::new(ClassificationConfig {
                            train_ratio: ratio,
                            seed: args.seed,
                            ..Default::default()
                        });
                        match task.evaluate_embedding(&embedding, labels) {
                            Ok(report) => row.push(fmt4(report.micro_f1)),
                            Err(err) => row.push(format!("err:{err}")),
                        }
                    }
                }
                Err(err) => row.push(format!("err:{err}")),
            }
            table.add_row(row);
        }
        table.print();
    }
}
