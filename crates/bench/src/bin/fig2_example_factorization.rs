//! Regenerates the paper's Fig. 2 / Example 1: the ApproxPPR factors on the
//! Fig. 1 example graph with k' = 2, and the quality of the `X·Yᵀ ≈ π`
//! approximation on the two highlighted node pairs.

use nrp_bench::report::fmt4;
use nrp_bench::{HarnessArgs, Table};
use nrp_core::ppr::PprMatrix;
use nrp_core::{ApproxPpr, ApproxPprParams, Embedder};
use nrp_graph::generators::example::{example_graph, V2, V4, V7, V9};

fn main() {
    let args = HarnessArgs::from_env();
    if args.config.is_some() {
        eprintln!(
            "note: this bin reproduces the pinned Fig. 2 example (k' = 2 on the Fig. 1 \
             graph); the --config roster does not apply and is ignored"
        );
    }
    let graph = example_graph();
    let params = ApproxPprParams {
        half_dimension: 2,
        alpha: 0.15,
        num_hops: 20,
        ..Default::default()
    };
    let embedding = ApproxPpr::new(params)
        .embed_default(&graph)
        .expect("ApproxPPR on the example graph");

    let mut factors = Table::new(
        "Fig. 2 — ApproxPPR factors with k' = 2 (X forward, Y backward)",
        &["node", "X[0]", "X[1]", "Y[0]", "Y[1]"],
    );
    for v in 0..9u32 {
        factors.add_row(vec![
            format!("v{}", v + 1),
            fmt4(embedding.forward_vector(v)[0]),
            fmt4(embedding.forward_vector(v)[1]),
            fmt4(embedding.backward_vector(v)[0]),
            fmt4(embedding.backward_vector(v)[1]),
        ]);
    }
    factors.print();

    let ppr = PprMatrix::exact(&graph, 0.15, 1e-12).expect("exact PPR");
    let mut check = Table::new(
        "Example 1 — X·Yᵀ vs exact PPR on the highlighted pairs",
        &["pair", "X_u · Y_v", "pi(u, v)", "abs error"],
    );
    for (label, u, v) in [("(v2, v4)", V2, V4), ("(v9, v7)", V9, V7)] {
        let approx = embedding.score(u, v);
        let exact = ppr.get(u, v);
        check.add_row(vec![
            label.into(),
            fmt4(approx),
            fmt4(exact),
            fmt4((approx - exact).abs()),
        ]);
    }
    check.print();
}
