//! Regenerates the paper's Fig. 7: embedding-construction wall-clock time as
//! a function of the dimensionality `k`, for every method on every dataset.
//!
//! Timing comes from the `RunMetadata` every v2 embedding run returns, so the
//! reported numbers exclude harness overhead.

use nrp_bench::datasets::suite;
use nrp_bench::methods::roster;
use nrp_bench::report::fmt_secs;
use nrp_bench::{HarnessArgs, Table};
use nrp_core::EmbedContext;

fn main() {
    let args = HarnessArgs::from_env();
    let dimensions = [16usize, 32, 64];
    for dataset in suite(args.scale, args.seed) {
        let mut table = Table::new(
            format!(
                "Fig. 7 — embedding construction time (seconds) on {} ({} nodes, {} arcs)",
                dataset.name,
                dataset.graph.num_nodes(),
                dataset.graph.num_arcs()
            ),
            &["method", "k=16", "k=32", "k=64"],
        );
        let method_names: Vec<&'static str> =
            roster(16, args.seed).iter().map(|m| m.name()).collect();
        for name in method_names {
            let mut row = vec![name.to_string()];
            for &k in &dimensions {
                let method = roster(k, args.seed)
                    .into_iter()
                    .find(|m| m.name() == name)
                    .expect("method present at every dimension");
                match method.embed(&dataset.graph, &EmbedContext::default()) {
                    Ok(output) => row.push(fmt_secs(output.metadata().total)),
                    Err(err) => row.push(format!("err:{err}")),
                }
            }
            table.add_row(row);
        }
        table.print();
    }
}
