//! Regenerates the paper's Fig. 7: embedding-construction wall-clock time as
//! a function of the dimensionality `k`, for every method on every dataset.
//!
//! Timing comes from the `RunMetadata` every v2 embedding run returns, so the
//! reported numbers exclude harness overhead.
//!
//! With `--config <file>` the binary becomes a config-file-driven timing
//! sweep: the `SweepRunner` executes every (dataset × method × seed ×
//! threads × repeat) cell of the spec and streams one RFC-4180 CSV record of
//! `RunMetadata` (per-stage wall clock included) per run to stdout.

use std::io::Write;

use nrp_bench::report::fmt_secs;
use nrp_bench::{datasets::suite, HarnessArgs, SweepRunner, Table};
use nrp_core::EmbedContext;

fn main() {
    let args = HarnessArgs::from_env();
    if let Some(spec) = args.config.clone() {
        // Config-driven mode: the spec *is* the experiment; stream one
        // RunMetadata record per run.  The banner goes to stderr so stdout
        // stays a pure CSV stream.
        if let Some(name) = &spec.name {
            eprintln!("# sweep: {name}");
        }
        let runner = SweepRunner::new(spec);
        let outcome = match &args.out {
            // File mode is resumable: cells already recorded as `ok` in an
            // existing file are skipped and new records appended, so an
            // interrupted sweep picks up where it left off.
            Some(path) => runner
                .run_resumable(&args, std::path::Path::new(path))
                .map(|records| eprintln!("# {} cell(s) executed -> {path}", records.len())),
            None => {
                let mut stdout = std::io::stdout();
                let outcome = runner.run(&args, &mut stdout).map(|_| ());
                stdout.flush().expect("flush stdout");
                outcome
            }
        };
        if let Err(message) = outcome {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        return;
    }

    let dimensions = [16usize, 32, 64];
    for dataset in suite(args.scale, args.seed) {
        let mut table = Table::new(
            format!(
                "Fig. 7 — embedding construction time (seconds) on {} ({} nodes, {} arcs)",
                dataset.name,
                dataset.graph.num_nodes(),
                dataset.graph.num_arcs()
            ),
            &["method", "k=16", "k=32", "k=64"],
        );
        let method_names: Vec<String> = args
            .roster_configs_at(dimensions[0])
            .iter()
            .map(|c| c.method_name().to_string())
            .collect();
        for (index, name) in method_names.iter().enumerate() {
            let mut row = vec![name.clone()];
            for &k in &dimensions {
                let method = args
                    .roster_at(k)
                    .into_iter()
                    .nth(index)
                    .expect("roster is stable across dimensions");
                let ctx = EmbedContext::new().with_threads(args.threads);
                match method.embed(&dataset.graph, &ctx) {
                    Ok(output) => row.push(fmt_secs(output.metadata().total)),
                    Err(err) => row.push(format!("err:{err}")),
                }
            }
            table.add_row(row);
        }
        table.print();
    }
}
