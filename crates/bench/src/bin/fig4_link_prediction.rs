//! Regenerates the paper's Fig. 4: link-prediction AUC as a function of the
//! embedding dimensionality `k`, for every method on every dataset of the
//! synthetic suite.

use nrp_bench::datasets::suite;
use nrp_bench::methods::roster;
use nrp_bench::report::fmt4;
use nrp_bench::{HarnessArgs, Table};
use nrp_eval::{LinkPrediction, LinkPredictionConfig, ScoringStrategy};

fn main() {
    let args = HarnessArgs::from_env();
    let dimensions = [16usize, 32, 64];
    for dataset in suite(args.scale, args.seed) {
        let mut table = Table::new(
            format!(
                "Fig. 4 — link prediction AUC on {} (30% edges held out)",
                dataset.name
            ),
            &["method", "k=16", "k=32", "k=64"],
        );
        // Single-vector methods cannot express direction, so on directed
        // graphs they are evaluated with the edge-features fallback, exactly
        // as in the paper.
        let single_vector = [
            "DeepWalk", "node2vec", "LINE", "VERSE", "RandNE", "Spectral",
        ];
        let directed = dataset.graph.kind().is_directed();
        let method_names: Vec<&'static str> =
            roster(16, args.seed).iter().map(|m| m.name()).collect();
        for name in method_names {
            let mut row = vec![name.to_string()];
            for &k in &dimensions {
                let method = roster(k, args.seed)
                    .into_iter()
                    .find(|m| m.name() == name)
                    .expect("method present at every dimension");
                let scoring = if directed && single_vector.contains(&name) {
                    ScoringStrategy::EdgeFeatures
                } else {
                    ScoringStrategy::InnerProduct
                };
                let task = LinkPrediction::new(LinkPredictionConfig {
                    remove_ratio: 0.3,
                    scoring,
                    seed: args.seed,
                });
                match task.evaluate(&dataset.graph, method.as_ref()) {
                    Ok(outcome) => row.push(fmt4(outcome.auc)),
                    Err(err) => row.push(format!("err:{err}")),
                }
            }
            table.add_row(row);
        }
        table.print();
    }
}
