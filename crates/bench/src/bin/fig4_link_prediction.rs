//! Regenerates the paper's Fig. 4: link-prediction AUC as a function of the
//! embedding dimensionality `k`, for every method on every dataset of the
//! synthetic suite.

use nrp_bench::datasets::suite;
use nrp_bench::report::fmt4;
use nrp_bench::{HarnessArgs, Table};
use nrp_eval::{LinkPrediction, LinkPredictionConfig, ScoringStrategy};

fn main() {
    let args = HarnessArgs::from_env();
    let dimensions = [16usize, 32, 64];
    for dataset in suite(args.scale, args.seed) {
        let mut table = Table::new(
            format!(
                "Fig. 4 — link prediction AUC on {} (30% edges held out)",
                dataset.name
            ),
            &["method", "k=16", "k=32", "k=64"],
        );
        // Single-vector methods cannot express direction, so on directed
        // graphs they are evaluated with the edge-features fallback, exactly
        // as in the paper.
        let single_vector = [
            "DeepWalk", "node2vec", "LINE", "VERSE", "RandNE", "Spectral",
        ];
        let directed = dataset.graph.kind().is_directed();
        let method_names: Vec<String> = args
            .roster_configs_at(dimensions[0])
            .iter()
            .map(|c| c.method_name().to_string())
            .collect();
        for (index, name) in method_names.iter().enumerate() {
            let mut row = vec![name.clone()];
            for &k in &dimensions {
                let method = args
                    .roster_at(k)
                    .into_iter()
                    .nth(index)
                    .expect("roster is stable across dimensions");
                let scoring = if directed && single_vector.contains(&name.as_str()) {
                    ScoringStrategy::EdgeFeatures
                } else {
                    ScoringStrategy::InnerProduct
                };
                let task = LinkPrediction::new(LinkPredictionConfig {
                    remove_ratio: 0.3,
                    scoring,
                    seed: args.seed,
                });
                match task.evaluate(&dataset.graph, method.as_ref()) {
                    Ok(outcome) => row.push(fmt4(outcome.auc)),
                    Err(err) => row.push(format!("err:{err}")),
                }
            }
            table.add_row(row);
        }
        table.print();
    }
}
