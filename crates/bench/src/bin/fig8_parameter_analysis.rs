//! Regenerates the paper's Fig. 8: link-prediction AUC of NRP as each of its
//! parameters (α, ε, ℓ1, ℓ2) is varied while the others stay at the paper's
//! defaults.  The ℓ2 sweep doubles as the reweighting ablation: ℓ2 = 0 is
//! pure ApproxPPR.
//!
//! With `--config <file>` the spec's `NRP` entry (if any) replaces the
//! paper-default base parameters the sweeps are anchored at.

use nrp_bench::datasets::suite;
use nrp_bench::report::fmt4;
use nrp_bench::{HarnessArgs, Table};
use nrp_core::{Nrp, NrpParams};
use nrp_eval::LinkPrediction;

fn evaluate(graph: &nrp_graph::Graph, params: NrpParams, seed: u64) -> String {
    let task = LinkPrediction::new(nrp_eval::LinkPredictionConfig {
        seed,
        ..Default::default()
    });
    match task.evaluate(graph, &Nrp::new(params)) {
        Ok(outcome) => fmt4(outcome.auc),
        Err(err) => format!("err:{err}"),
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    let base = || args.nrp_base_params();
    let alphas = [0.1, 0.3, 0.5, 0.7, 0.9];
    let epsilons = [0.1, 0.3, 0.5, 0.7, 0.9];
    let l1_values = [1usize, 2, 5, 10, 20, 40];
    let l2_values = [0usize, 1, 2, 5, 10, 20];

    for dataset in suite(args.scale, args.seed) {
        let graph = &dataset.graph;

        let mut t_alpha = Table::new(
            format!("Fig. 8(a) — AUC vs alpha on {}", dataset.name),
            &["alpha", "auc"],
        );
        for &alpha in &alphas {
            let mut params = base();
            params.alpha = alpha;
            t_alpha.add_row(vec![format!("{alpha}"), evaluate(graph, params, args.seed)]);
        }
        t_alpha.print();

        let mut t_eps = Table::new(
            format!("Fig. 8(b) — AUC vs epsilon on {}", dataset.name),
            &["epsilon", "auc"],
        );
        for &eps in &epsilons {
            let mut params = base();
            params.epsilon = eps;
            t_eps.add_row(vec![format!("{eps}"), evaluate(graph, params, args.seed)]);
        }
        t_eps.print();

        let mut t_l1 = Table::new(
            format!("Fig. 8(c) — AUC vs l1 (PPR hops) on {}", dataset.name),
            &["l1", "auc"],
        );
        for &l1 in &l1_values {
            let mut params = base();
            params.num_hops = l1;
            t_l1.add_row(vec![l1.to_string(), evaluate(graph, params, args.seed)]);
        }
        t_l1.print();

        let mut t_l2 = Table::new(
            format!(
                "Fig. 8(d) — AUC vs l2 (reweighting epochs; 0 = ApproxPPR) on {}",
                dataset.name
            ),
            &["l2", "auc"],
        );
        for &l2 in &l2_values {
            let mut params = base();
            params.reweight_epochs = l2;
            t_l2.add_row(vec![l2.to_string(), evaluate(graph, params, args.seed)]);
        }
        t_l2.print();
    }
}
