//! Serving-layer latency benchmark: starts the `nrp-serve` server in
//! process on a fixture graph, drives it with the Zipf closed-loop load
//! generator over real TCP, and emits `BENCH_serve.json` with p50/p99
//! latency and throughput for every (server threads × cache regime) cell.
//!
//! ```text
//! cargo run --release -p nrp-bench --bin bench_serve -- [--fast] [--out FILE]
//! ```
//!
//! The grid is {1, 4} server threads × {cold, warm} cache:
//!
//! * **cold** — `cache_capacity = 0`, so every request recomputes its PPR
//!   vector: the floor the cache is measured against.
//! * **warm** — LRU enabled and pre-warmed with one pass over the hot keys,
//!   so the measured run shows the steady-state hit path.
//!
//! After the grid, one **overload** scenario runs open-loop: arrivals at
//! ~1.35× the measured cold-cache capacity against a server with a small
//! bounded queue and a per-request deadline.  It records the shed rate,
//! the goodput (successful answers per second) and the p99 of successful
//! requests — demonstrating that under sustained overload the server sheds
//! the excess, keeps tail latency bounded by the deadline, and still
//! delivers most of its capacity as goodput.
//!
//! After the overload run the binary scrapes `/metrics` and folds the
//! server-side latency attribution into the report: the mean queue-wait
//! versus kernel-compute split from the batcher histograms (the
//! server-side explanation of the client-observed tail).  A final
//! **overhead** pair re-runs the single-thread warm cell with
//! `metrics_enabled` on and off and records the throughput ratio,
//! checking that telemetry costs no more than a few percent.
//!
//! The binary doubles as the CI serve smoke check: before any measurement
//! it asserts that `/healthz`, `/ppr` and `/knn` all answer well-formed
//! JSON, and it fails hard if any load request errors.

use nrp_obs::clock;
use std::collections::BTreeMap;

use nrp_bench::serveload::{run_load, run_open_loop, LoadReport, LoadSpec, OpenLoopSpec};
use nrp_serve::{fixture, HttpClient, ServeConfig, ServeState, Server};

struct Options {
    fast: bool,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        fast: false,
        out: "BENCH_serve.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => options.fast = true,
            "--out" => {
                options.out = args
                    .next()
                    .ok_or_else(|| "--out requires a file path".to_owned())?;
            }
            other => return Err(format!("unknown flag `{other}` (expected --fast, --out)")),
        }
    }
    Ok(options)
}

fn json_number(value: f64) -> String {
    format!("{value:.9}")
}

/// `{"503": 12, "504": 3}` — non-200 responses keyed by status code.
fn status_counts_json(counts: &BTreeMap<u16, usize>) -> String {
    if counts.is_empty() {
        return "{}".to_owned();
    }
    let parts: Vec<String> = counts
        .iter()
        .map(|(status, count)| format!("\"{status}\": {count}"))
        .collect();
    format!("{{ {} }}", parts.join(", "))
}

/// The first sample of the unlabelled Prometheus series `name` in a
/// `/metrics` exposition body, or 0.0 when absent.
fn prom_sample(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)?
                .strip_prefix(' ')?
                .trim()
                .parse::<f64>()
                .ok()
        })
        .unwrap_or(0.0)
}

/// Asserts the smoke-level contract: `/healthz`, `/ppr` and `/knn` answer
/// 200 with JSON of the documented shape.
fn smoke_check(server: &Server) {
    let mut client = HttpClient::new(server.addr());
    let health = client.get_json("/healthz").expect("/healthz answers JSON");
    assert_eq!(
        health
            .as_object()
            .and_then(|o| o.get("status"))
            .and_then(|v| v.as_str()),
        Some("ok"),
        "/healthz reports ok: {health:?}"
    );
    let ppr = client
        .get_json("/ppr?source=0&top=8")
        .expect("/ppr answers JSON");
    let entries = ppr
        .as_object()
        .and_then(|o| o.get("entries"))
        .and_then(|v| v.as_array())
        .expect("/ppr has an entries array");
    assert!(!entries.is_empty(), "/ppr returned entries");
    let knn = client
        .get_json("/knn?source=0&k=5")
        .expect("/knn answers JSON");
    let neighbors = knn
        .as_object()
        .and_then(|o| o.get("neighbors"))
        .and_then(|v| v.as_array())
        .expect("/knn has a neighbors array");
    assert_eq!(neighbors.len(), 5, "/knn returned k neighbors");
}

struct Scenario {
    threads: usize,
    regime: &'static str,
    report: LoadReport,
    cache_hits: u64,
    cache_misses: u64,
    batches: u64,
    coalesced: u64,
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("bench_serve: {message}");
            std::process::exit(2);
        }
    };
    let (nodes, workers, requests_per_worker) = if options.fast {
        (300usize, 4usize, 40usize)
    } else {
        (1_500, 8, 400)
    };
    let zipf_exponent = 1.0;

    eprintln!("building fixture: {nodes}-node Barabási–Albert graph + NRP embedding…");
    let built = clock::now();
    let (graph, embedding) = fixture(nodes, 42);
    eprintln!(
        "fixture ready in {:.2}s ({} arcs)",
        built.elapsed().as_secs_f64(),
        graph.num_arcs()
    );

    let mut scenarios: Vec<Scenario> = Vec::new();
    for &threads in &[1usize, 4] {
        for &(regime, capacity) in &[("cold", 0usize), ("warm", 4096usize)] {
            let config = ServeConfig {
                addr: "127.0.0.1:0".into(),
                threads,
                cache_capacity: capacity,
                ..ServeConfig::default()
            };
            let state = ServeState::new(graph.clone(), Some(embedding.clone()), config);
            let server = Server::start(state).expect("server binds an ephemeral port");
            smoke_check(&server);
            let spec = LoadSpec {
                addr: server.addr(),
                workers,
                requests_per_worker,
                zipf_exponent,
                num_sources: nodes as u32,
                seed: 7,
                query_suffix: "&top=16".into(),
            };
            if regime == "warm" {
                // Fill the cache so the measured run sees steady state.
                run_load(&LoadSpec {
                    requests_per_worker: requests_per_worker / 2,
                    ..spec.clone()
                });
            }
            let report = run_load(&spec);
            assert_eq!(
                report.errors, 0,
                "load errors against the {regime}/{threads}t server"
            );
            let stats =
                nrp_serve::get_json_once(server.addr(), "/stats").expect("/stats answers JSON");
            let counter = |section: &str, name: &str| -> u64 {
                stats
                    .as_object()
                    .and_then(|o| o.get(section))
                    .and_then(|v| v.as_object())
                    .and_then(|o| o.get(name))
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0)
            };
            eprintln!(
                "threads={threads} {regime}: p50 {:.1}µs  p99 {:.1}µs  {:.0} qps  \
                 (cache {}h/{}m, {} batches, {} coalesced)",
                report.p50() * 1e6,
                report.p99() * 1e6,
                report.qps(),
                counter("cache", "hits"),
                counter("cache", "misses"),
                counter("batch", "batches"),
                counter("batch", "coalesced"),
            );
            scenarios.push(Scenario {
                threads,
                regime,
                cache_hits: counter("cache", "hits"),
                cache_misses: counter("cache", "misses"),
                batches: counter("batch", "batches"),
                coalesced: counter("batch", "coalesced"),
                report,
            });
            server.shutdown();
        }
    }

    // ---- Open-loop overload scenario -------------------------------------
    // Reference capacity: the cold-cache closed loop on the widest server —
    // every request computes, so its qps is the compute capacity the
    // overload run must exceed.
    let capacity_qps = scenarios
        .iter()
        .filter(|s| s.regime == "cold")
        .map(|s| s.report.qps())
        .fold(0.0f64, f64::max);
    assert!(capacity_qps > 0.0, "grid produced no capacity measurement");
    // Client concurrency must exceed the server's admission budget (queue
    // plus one in-service batch), or the client's own in-flight cap becomes
    // the queue and nothing is ever shed — the overload would then surface
    // as client-side schedule lag instead of fast 503s.  It must also stay
    // small enough that the load generator itself doesn't drown the server
    // on a shared box: CI runners can be single-core, and client threads,
    // connection threads and compute threads all share those cores.
    let (overload_workers, deadline_ms, queue_capacity) = if options.fast {
        (12usize, 300u64, 4usize)
    } else {
        (16, 500, 8)
    };
    let rate_per_sec = capacity_qps * 1.35;
    let duration_secs = if options.fast { 2.0 } else { 4.0 };
    let total_requests = (rate_per_sec * duration_secs).ceil() as usize;
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_capacity: 0, // every request computes: arrivals > capacity is a true overload
        queue_capacity,
        deadline_ms,
        ..ServeConfig::default()
    };
    let state = ServeState::new(graph.clone(), Some(embedding.clone()), config);
    let server = Server::start(state).expect("overload server binds an ephemeral port");
    eprintln!(
        "overload: open loop at {rate_per_sec:.0}/s (1.35× capacity {capacity_qps:.0} qps), \
         {total_requests} arrivals, queue {queue_capacity}, deadline {deadline_ms}ms…"
    );
    let overload = run_open_loop(&OpenLoopSpec {
        addr: server.addr(),
        workers: overload_workers,
        rate_per_sec,
        total_requests,
        zipf_exponent,
        num_sources: nodes as u32,
        seed: 7,
        query_suffix: "&top=16".into(),
        deadline_ms,
    });
    let stats = nrp_serve::get_json_once(server.addr(), "/stats").expect("/stats answers JSON");
    let resilience_counter = |name: &str| -> u64 {
        stats
            .as_object()
            .and_then(|o| o.get("resilience"))
            .and_then(|v| v.as_object())
            .and_then(|o| o.get(name))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    let server_shed = resilience_counter("shed");
    let server_timeouts = resilience_counter("timeouts");
    let server_degraded = resilience_counter("degraded");
    let server_escalations = resilience_counter("escalations");
    // Server-side latency attribution: the batcher's queue-wait vs
    // kernel-compute histograms explain where the overloaded requests'
    // time actually went.
    let metrics_text =
        nrp_serve::get_text_once(server.addr(), "/metrics").expect("/metrics answers text");
    let queue_wait_sum = prom_sample(&metrics_text, "nrp_batch_queue_wait_us_sum");
    let queue_wait_count = prom_sample(&metrics_text, "nrp_batch_queue_wait_us_count");
    let compute_sum = prom_sample(&metrics_text, "nrp_batch_compute_us_sum");
    let compute_count = prom_sample(&metrics_text, "nrp_batch_compute_us_count");
    server.shutdown();
    let mean_queue_wait_us = queue_wait_sum / queue_wait_count.max(1.0);
    let mean_compute_us = compute_sum / compute_count.max(1.0);
    let queue_wait_share = queue_wait_sum / (queue_wait_sum + compute_sum).max(1.0);
    eprintln!(
        "overload: server-side split — mean queue wait {mean_queue_wait_us:.0}µs, \
         mean compute {mean_compute_us:.0}µs ({:.0}% of attributed time waiting)",
        queue_wait_share * 100.0,
    );
    let goodput = overload.goodput();
    let goodput_ratio = goodput / capacity_qps;
    let shed_rate = overload.shed() as f64 / overload.attempted.max(1) as f64;
    eprintln!(
        "overload: {} ok / {} shed / {} transport of {} attempted — goodput {:.0} qps \
         ({:.0}% of capacity), p99 {:.1}ms",
        overload.ok,
        overload.shed(),
        overload.transport_errors,
        overload.attempted,
        goodput,
        goodput_ratio * 100.0,
        overload.percentile(99.0) * 1e3,
    );
    eprintln!(
        "overload: status {}  max schedule lag {:.0}ms  server shed {server_shed} \
         / timeouts {server_timeouts} / degraded {server_degraded} \
         / escalations {server_escalations}",
        status_counts_json(&overload.status_counts),
        overload.max_lag_secs * 1e3,
    );
    // ---- Metrics overhead scenario ---------------------------------------
    // The same single-thread warm-cache cell, telemetry on vs off.  The
    // instruments are a handful of relaxed atomic adds per request, so the
    // two runs should be within noise of each other; the in-binary gate is
    // deliberately loose (1.5×) so a noisy shared box cannot flake it,
    // while the recorded ratio documents the real (~≤5%) overhead.
    let mut overhead_qps = [0.0f64; 2];
    for (slot, metrics_enabled) in [(0usize, true), (1usize, false)] {
        let config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            cache_capacity: 4096,
            metrics_enabled,
            ..ServeConfig::default()
        };
        let state = ServeState::new(graph.clone(), Some(embedding.clone()), config);
        let server = Server::start(state).expect("overhead server binds an ephemeral port");
        let spec = LoadSpec {
            addr: server.addr(),
            workers,
            requests_per_worker: requests_per_worker / 2,
            zipf_exponent,
            num_sources: nodes as u32,
            seed: 7,
            query_suffix: "&top=16".into(),
        };
        // Warm pass, then the measured pass.
        run_load(&spec);
        let report = run_load(&spec);
        assert_eq!(report.errors, 0, "load errors in the overhead run");
        overhead_qps[slot] = report.qps();
        server.shutdown();
    }
    let overhead_ratio = overhead_qps[1] / overhead_qps[0].max(1e-9);
    eprintln!(
        "overhead: {:.0} qps with metrics, {:.0} qps without (off/on ratio {:.3})",
        overhead_qps[0], overhead_qps[1], overhead_ratio,
    );

    let telemetry_json = format!(
        concat!(
            "  \"telemetry\": {{\n",
            "    \"queue_wait_us_sum\": {qw_sum},\n",
            "    \"queue_wait_count\": {qw_count},\n",
            "    \"compute_us_sum\": {c_sum},\n",
            "    \"compute_count\": {c_count},\n",
            "    \"mean_queue_wait_us\": {qw_mean},\n",
            "    \"mean_compute_us\": {c_mean},\n",
            "    \"queue_wait_share\": {qw_share},\n",
            "    \"overhead_qps_metrics_on\": {on},\n",
            "    \"overhead_qps_metrics_off\": {off},\n",
            "    \"overhead_ratio_off_over_on\": {ratio}\n",
            "  }}",
        ),
        qw_sum = json_number(queue_wait_sum),
        qw_count = json_number(queue_wait_count),
        c_sum = json_number(compute_sum),
        c_count = json_number(compute_count),
        qw_mean = json_number(mean_queue_wait_us),
        c_mean = json_number(mean_compute_us),
        qw_share = json_number(queue_wait_share),
        on = json_number(overhead_qps[0]),
        off = json_number(overhead_qps[1]),
        ratio = json_number(overhead_ratio),
    );

    let overload_json = format!(
        concat!(
            "  \"overload\": {{\n",
            "    \"rate_per_sec\": {rate},\n",
            "    \"reference_capacity_qps\": {capacity},\n",
            "    \"deadline_ms\": {deadline},\n",
            "    \"queue_capacity\": {queue},\n",
            "    \"attempted\": {attempted},\n",
            "    \"ok\": {ok},\n",
            "    \"shed\": {shed},\n",
            "    \"shed_rate\": {shed_rate},\n",
            "    \"transport_errors\": {transport},\n",
            "    \"errors_by_status\": {by_status},\n",
            "    \"server_shed\": {server_shed},\n",
            "    \"server_timeouts\": {server_timeouts},\n",
            "    \"goodput_qps\": {goodput},\n",
            "    \"goodput_ratio\": {ratio},\n",
            "    \"p50_secs\": {p50},\n",
            "    \"p99_secs\": {p99},\n",
            "    \"max_schedule_lag_secs\": {lag}\n",
            "  }}",
        ),
        rate = json_number(rate_per_sec),
        capacity = json_number(capacity_qps),
        deadline = deadline_ms,
        queue = queue_capacity,
        attempted = overload.attempted,
        ok = overload.ok,
        shed = overload.shed(),
        shed_rate = json_number(shed_rate),
        transport = overload.transport_errors,
        by_status = status_counts_json(&overload.status_counts),
        server_shed = server_shed,
        server_timeouts = server_timeouts,
        goodput = json_number(goodput),
        ratio = json_number(goodput_ratio),
        p50 = json_number(overload.percentile(50.0)),
        p99 = json_number(overload.percentile(99.0)),
        lag = json_number(overload.max_lag_secs),
    );

    let scenario_json: Vec<String> = scenarios
        .iter()
        .map(|s| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"server_threads\": {threads},\n",
                    "      \"cache\": \"{regime}\",\n",
                    "      \"requests\": {requests},\n",
                    "      \"errors\": {errors},\n",
                    "      \"errors_by_status\": {by_status},\n",
                    "      \"transport_errors\": {transport},\n",
                    "      \"p50_secs\": {p50},\n",
                    "      \"p99_secs\": {p99},\n",
                    "      \"qps\": {qps},\n",
                    "      \"cache_hits\": {hits},\n",
                    "      \"cache_misses\": {misses},\n",
                    "      \"batches\": {batches},\n",
                    "      \"coalesced\": {coalesced}\n",
                    "    }}",
                ),
                threads = s.threads,
                regime = s.regime,
                requests = s.report.ok,
                errors = s.report.errors,
                by_status = status_counts_json(&s.report.status_counts),
                transport = s.report.transport_errors,
                p50 = json_number(s.report.p50()),
                p99 = json_number(s.report.p99()),
                qps = json_number(s.report.qps()),
                hits = s.cache_hits,
                misses = s.cache_misses,
                batches = s.batches,
                coalesced = s.coalesced,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"fixture\": {{ \"nodes\": {nodes}, \"arcs\": {arcs} }},\n",
            "  \"load\": {{ \"workers\": {workers}, \"requests_per_worker\": {rpw}, ",
            "\"zipf_exponent\": {zipf} }},\n",
            "  \"scenarios\": [\n{scenarios}\n  ],\n",
            "{telemetry},\n",
            "{overload}\n",
            "}}\n",
        ),
        mode = if options.fast { "fast" } else { "full" },
        nodes = nodes,
        arcs = graph.num_arcs(),
        workers = workers,
        rpw = requests_per_worker,
        zipf = json_number(zipf_exponent),
        scenarios = scenario_json.join(",\n"),
        telemetry = telemetry_json,
        overload = overload_json,
    );
    std::fs::write(&options.out, &json).expect("writing the benchmark report");
    eprintln!("wrote {}", options.out);

    // The resilience contract, enforced at bench time: overload must
    // actually shed (the queue is bounded), the tail must stay bounded by
    // the deadline, and shedding must not collapse useful throughput.  The
    // asserts run after the report is written so a failed gate still leaves
    // the evidence on disk.  The in-binary floors are looser than the
    // headline numbers so a noisy CI box does not flake.
    assert!(
        overload.shed() > 0,
        "an open loop above capacity must shed something"
    );
    assert!(
        overload.percentile(99.0) <= (deadline_ms as f64 / 1e3) * 2.0,
        "p99 {:.3}s escaped the deadline bound",
        overload.percentile(99.0)
    );
    assert!(
        goodput_ratio >= 0.5,
        "goodput collapsed under overload: {goodput:.0} qps vs capacity {capacity_qps:.0}"
    );
    assert!(
        compute_count > 0.0,
        "the overload run must leave kernel-compute samples in /metrics"
    );
    assert!(
        overhead_ratio <= 1.5,
        "metrics overhead escaped the loose gate: off/on qps ratio {overhead_ratio:.3}"
    );
}
