//! Serving-layer latency benchmark: starts the `nrp-serve` server in
//! process on a fixture graph, drives it with the Zipf closed-loop load
//! generator over real TCP, and emits `BENCH_serve.json` with p50/p99
//! latency and throughput for every (server threads × cache regime) cell.
//!
//! ```text
//! cargo run --release -p nrp-bench --bin bench_serve -- [--fast] [--out FILE]
//! ```
//!
//! The grid is {1, 4} server threads × {cold, warm} cache:
//!
//! * **cold** — `cache_capacity = 0`, so every request recomputes its PPR
//!   vector: the floor the cache is measured against.
//! * **warm** — LRU enabled and pre-warmed with one pass over the hot keys,
//!   so the measured run shows the steady-state hit path.
//!
//! The binary doubles as the CI serve smoke check: before any measurement
//! it asserts that `/healthz`, `/ppr` and `/knn` all answer well-formed
//! JSON, and it fails hard if any load request errors.

use std::time::Instant;

use nrp_bench::serveload::{run_load, LoadReport, LoadSpec};
use nrp_serve::{fixture, HttpClient, ServeConfig, ServeState, Server};

struct Options {
    fast: bool,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        fast: false,
        out: "BENCH_serve.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => options.fast = true,
            "--out" => {
                options.out = args
                    .next()
                    .ok_or_else(|| "--out requires a file path".to_owned())?;
            }
            other => return Err(format!("unknown flag `{other}` (expected --fast, --out)")),
        }
    }
    Ok(options)
}

fn json_number(value: f64) -> String {
    format!("{value:.9}")
}

/// Asserts the smoke-level contract: `/healthz`, `/ppr` and `/knn` answer
/// 200 with JSON of the documented shape.
fn smoke_check(server: &Server) {
    let mut client = HttpClient::new(server.addr());
    let health = client.get_json("/healthz").expect("/healthz answers JSON");
    assert_eq!(
        health
            .as_object()
            .and_then(|o| o.get("status"))
            .and_then(|v| v.as_str()),
        Some("ok"),
        "/healthz reports ok: {health:?}"
    );
    let ppr = client
        .get_json("/ppr?source=0&top=8")
        .expect("/ppr answers JSON");
    let entries = ppr
        .as_object()
        .and_then(|o| o.get("entries"))
        .and_then(|v| v.as_array())
        .expect("/ppr has an entries array");
    assert!(!entries.is_empty(), "/ppr returned entries");
    let knn = client
        .get_json("/knn?source=0&k=5")
        .expect("/knn answers JSON");
    let neighbors = knn
        .as_object()
        .and_then(|o| o.get("neighbors"))
        .and_then(|v| v.as_array())
        .expect("/knn has a neighbors array");
    assert_eq!(neighbors.len(), 5, "/knn returned k neighbors");
}

struct Scenario {
    threads: usize,
    regime: &'static str,
    report: LoadReport,
    cache_hits: u64,
    cache_misses: u64,
    batches: u64,
    coalesced: u64,
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("bench_serve: {message}");
            std::process::exit(2);
        }
    };
    let (nodes, workers, requests_per_worker) = if options.fast {
        (300usize, 4usize, 40usize)
    } else {
        (1_500, 8, 400)
    };
    let zipf_exponent = 1.0;

    eprintln!("building fixture: {nodes}-node Barabási–Albert graph + NRP embedding…");
    let built = Instant::now();
    let (graph, embedding) = fixture(nodes, 42);
    eprintln!(
        "fixture ready in {:.2}s ({} arcs)",
        built.elapsed().as_secs_f64(),
        graph.num_arcs()
    );

    let mut scenarios: Vec<Scenario> = Vec::new();
    for &threads in &[1usize, 4] {
        for &(regime, capacity) in &[("cold", 0usize), ("warm", 4096usize)] {
            let config = ServeConfig {
                addr: "127.0.0.1:0".into(),
                threads,
                cache_capacity: capacity,
                ..ServeConfig::default()
            };
            let state = ServeState::new(graph.clone(), Some(embedding.clone()), config);
            let server = Server::start(state).expect("server binds an ephemeral port");
            smoke_check(&server);
            let spec = LoadSpec {
                addr: server.addr(),
                workers,
                requests_per_worker,
                zipf_exponent,
                num_sources: nodes as u32,
                seed: 7,
                query_suffix: "&top=16".into(),
            };
            if regime == "warm" {
                // Fill the cache so the measured run sees steady state.
                run_load(&LoadSpec {
                    requests_per_worker: requests_per_worker / 2,
                    ..spec.clone()
                });
            }
            let report = run_load(&spec);
            assert_eq!(
                report.errors, 0,
                "load errors against the {regime}/{threads}t server"
            );
            let stats =
                nrp_serve::get_json_once(server.addr(), "/stats").expect("/stats answers JSON");
            let counter = |section: &str, name: &str| -> u64 {
                stats
                    .as_object()
                    .and_then(|o| o.get(section))
                    .and_then(|v| v.as_object())
                    .and_then(|o| o.get(name))
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0)
            };
            eprintln!(
                "threads={threads} {regime}: p50 {:.1}µs  p99 {:.1}µs  {:.0} qps  \
                 (cache {}h/{}m, {} batches, {} coalesced)",
                report.p50() * 1e6,
                report.p99() * 1e6,
                report.qps(),
                counter("cache", "hits"),
                counter("cache", "misses"),
                counter("batch", "batches"),
                counter("batch", "coalesced"),
            );
            scenarios.push(Scenario {
                threads,
                regime,
                cache_hits: counter("cache", "hits"),
                cache_misses: counter("cache", "misses"),
                batches: counter("batch", "batches"),
                coalesced: counter("batch", "coalesced"),
                report,
            });
            server.shutdown();
        }
    }

    let scenario_json: Vec<String> = scenarios
        .iter()
        .map(|s| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"server_threads\": {threads},\n",
                    "      \"cache\": \"{regime}\",\n",
                    "      \"requests\": {requests},\n",
                    "      \"errors\": {errors},\n",
                    "      \"p50_secs\": {p50},\n",
                    "      \"p99_secs\": {p99},\n",
                    "      \"qps\": {qps},\n",
                    "      \"cache_hits\": {hits},\n",
                    "      \"cache_misses\": {misses},\n",
                    "      \"batches\": {batches},\n",
                    "      \"coalesced\": {coalesced}\n",
                    "    }}",
                ),
                threads = s.threads,
                regime = s.regime,
                requests = s.report.ok,
                errors = s.report.errors,
                p50 = json_number(s.report.p50()),
                p99 = json_number(s.report.p99()),
                qps = json_number(s.report.qps()),
                hits = s.cache_hits,
                misses = s.cache_misses,
                batches = s.batches,
                coalesced = s.coalesced,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"fixture\": {{ \"nodes\": {nodes}, \"arcs\": {arcs} }},\n",
            "  \"load\": {{ \"workers\": {workers}, \"requests_per_worker\": {rpw}, ",
            "\"zipf_exponent\": {zipf} }},\n",
            "  \"scenarios\": [\n{scenarios}\n  ]\n",
            "}}\n",
        ),
        mode = if options.fast { "fast" } else { "full" },
        nodes = nodes,
        arcs = graph.num_arcs(),
        workers = workers,
        rpw = requests_per_worker,
        zipf = json_number(zipf_exponent),
        scenarios = scenario_json.join(",\n"),
    );
    std::fs::write(&options.out, &json).expect("writing the benchmark report");
    eprintln!("wrote {}", options.out);
}
