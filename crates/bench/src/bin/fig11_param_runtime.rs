//! Regenerates the paper's Fig. 11: NRP construction time as each parameter
//! (ℓ1, ℓ2, α, ε) is varied, on every dataset of the synthetic suite.
//!
//! With `--config <file>` the spec's `NRP` entry (if any) replaces the
//! paper-default base parameters the sweeps are anchored at.

use nrp_bench::datasets::suite;
use nrp_bench::report::fmt_secs;
use nrp_bench::{HarnessArgs, Table};
use nrp_core::{EmbedContext, Embedder, Nrp, NrpParams};

fn time_with(graph: &nrp_graph::Graph, params: NrpParams, threads: usize) -> String {
    let ctx = EmbedContext::new().with_threads(threads);
    match Nrp::new(params).embed(graph, &ctx) {
        Ok(output) => fmt_secs(output.metadata().total),
        Err(err) => format!("err:{err}"),
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    let base = || args.nrp_base_params();
    let l1_values = [1usize, 5, 10, 20, 40];
    let l2_values = [0usize, 2, 5, 10, 20, 30];
    let alphas = [0.1, 0.3, 0.5, 0.7, 0.9];
    let epsilons = [0.1, 0.3, 0.5, 0.7, 0.9];

    for dataset in suite(args.scale, args.seed) {
        let graph = &dataset.graph;

        let mut t = Table::new(
            format!("Fig. 11(a) — time vs l1 on {}", dataset.name),
            &["l1", "seconds"],
        );
        for &l1 in &l1_values {
            let mut params = base();
            params.num_hops = l1;
            t.add_row(vec![l1.to_string(), time_with(graph, params, args.threads)]);
        }
        t.print();

        let mut t = Table::new(
            format!("Fig. 11(b) — time vs l2 on {}", dataset.name),
            &["l2", "seconds"],
        );
        for &l2 in &l2_values {
            let mut params = base();
            params.reweight_epochs = l2;
            t.add_row(vec![l2.to_string(), time_with(graph, params, args.threads)]);
        }
        t.print();

        let mut t = Table::new(
            format!("Fig. 11(c) — time vs alpha on {}", dataset.name),
            &["alpha", "seconds"],
        );
        for &alpha in &alphas {
            let mut params = base();
            params.alpha = alpha;
            t.add_row(vec![
                alpha.to_string(),
                time_with(graph, params, args.threads),
            ]);
        }
        t.print();

        let mut t = Table::new(
            format!("Fig. 11(d) — time vs epsilon on {}", dataset.name),
            &["epsilon", "seconds"],
        );
        for &eps in &epsilons {
            let mut params = base();
            params.epsilon = eps;
            t.add_row(vec![
                eps.to_string(),
                time_with(graph, params, args.threads),
            ]);
        }
        t.print();
    }
}
