//! Regenerates the paper's Fig. 9 (and Table 4): predicting genuinely *new*
//! edges of an evolving graph from embeddings built on the old snapshot.

use nrp_bench::datasets::evolving_dataset;
use nrp_bench::report::fmt4;
use nrp_bench::{HarnessArgs, Table};
use nrp_eval::{LinkPrediction, LinkPredictionConfig, ScoringStrategy};

fn main() {
    let args = HarnessArgs::from_env();
    let instance = evolving_dataset(args.scale, args.seed);
    let mut table = Table::new(
        format!(
            "Fig. 9 — new-edge prediction AUC on the evolving graph ({} nodes, {} old edges, {} new edges)",
            instance.old_graph.num_nodes(),
            instance.old_graph.num_edges(),
            instance.new_edges.len()
        ),
        &["method", "auc"],
    );
    let single_vector = [
        "DeepWalk", "node2vec", "LINE", "VERSE", "RandNE", "Spectral",
    ];
    for method in args.roster() {
        let scoring =
            if instance.old_graph.kind().is_directed() && single_vector.contains(&method.name()) {
                ScoringStrategy::EdgeFeatures
            } else {
                ScoringStrategy::InnerProduct
            };
        let task = LinkPrediction::new(LinkPredictionConfig {
            scoring,
            seed: args.seed,
            ..Default::default()
        });
        let cell = match method.embed_default(&instance.old_graph) {
            Ok(embedding) => {
                match task.evaluate_new_edges(&instance.old_graph, &embedding, &instance.new_edges)
                {
                    Ok(outcome) => fmt4(outcome.auc),
                    Err(err) => format!("err:{err}"),
                }
            }
            Err(err) => format!("err:{err}"),
        };
        table.add_row(vec![method.name().to_string(), cell]);
    }
    table.print();
}
