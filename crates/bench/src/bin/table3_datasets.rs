//! Regenerates the paper's Table 3 (dataset statistics) for the synthetic
//! suite that stands in for the original datasets, plus Table 4 (evolving
//! graphs).

use nrp_bench::datasets::{evolving_dataset, suite};
use nrp_bench::{HarnessArgs, Table};
use nrp_graph::stats::{degree_gini, graph_stats};

fn main() {
    let args = HarnessArgs::from_env();
    let mut table = Table::new(
        format!(
            "Table 3 — synthetic dataset suite at scale {:?}",
            args.scale
        ),
        &[
            "name",
            "|V|",
            "|E|",
            "arcs",
            "type",
            "labels",
            "max out-deg",
            "degree gini",
        ],
    );
    for dataset in suite(args.scale, args.seed) {
        let stats = graph_stats(&dataset.graph);
        let kind = if dataset.graph.kind().is_directed() {
            "directed"
        } else {
            "undirected"
        };
        let num_labels = dataset
            .labels
            .as_ref()
            .map(|ls| {
                ls.iter()
                    .flat_map(|l| l.iter())
                    .max()
                    .map(|&m| (m + 1).to_string())
                    .unwrap_or_default()
            })
            .unwrap_or_else(|| "-".into());
        table.add_row(vec![
            dataset.name.into(),
            stats.num_nodes.to_string(),
            stats.num_edges.to_string(),
            stats.num_arcs.to_string(),
            kind.into(),
            num_labels,
            stats.max_out_degree.to_string(),
            format!("{:.3}", degree_gini(&dataset.graph)),
        ]);
    }
    table.print();

    let evolving = evolving_dataset(args.scale, args.seed);
    let stats = graph_stats(&evolving.old_graph);
    let mut table4 = Table::new(
        "Table 4 — evolving graph (VK/Digg stand-in)",
        &["name", "|V|", "|E_old|", "|E_new|", "type"],
    );
    table4.add_row(vec![
        "evolving-sbm".into(),
        stats.num_nodes.to_string(),
        stats.num_edges.to_string(),
        evolving.new_edges.len().to_string(),
        if evolving.old_graph.kind().is_directed() {
            "directed".into()
        } else {
            "undirected".into()
        },
    ]);
    table4.print();
}
