//! Regenerates the paper's Fig. 5: graph-reconstruction precision@K curves
//! for every method on the labelled datasets of the synthetic suite.

use nrp_bench::datasets::suite;
use nrp_bench::report::fmt4;
use nrp_bench::{HarnessArgs, Table};
use nrp_eval::{GraphReconstruction, ReconstructionConfig};

fn main() {
    let args = HarnessArgs::from_env();
    for dataset in suite(args.scale, args.seed) {
        let max_pairs = dataset.graph.num_nodes() * (dataset.graph.num_nodes() - 1) / 2;
        // Follow the paper: all pairs on small graphs, a sample on larger ones.
        let sample = if max_pairs > 2_000_000 {
            Some(1_000_000)
        } else {
            None
        };
        let k_values: Vec<usize> = vec![10, 100, 1_000, 10_000]
            .into_iter()
            .filter(|&k| k <= max_pairs)
            .collect();
        let header: Vec<String> = std::iter::once("method".to_string())
            .chain(k_values.iter().map(|k| format!("K={k}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!(
                "Fig. 5 — graph reconstruction precision@K on {}",
                dataset.name
            ),
            &header_refs,
        );
        for method in args.roster() {
            let task = GraphReconstruction::new(ReconstructionConfig {
                sample_pairs: sample,
                k_values: k_values.clone(),
                seed: args.seed,
            });
            let mut row = vec![method.name().to_string()];
            match task.evaluate(&dataset.graph, method.as_ref()) {
                Ok(outcome) => {
                    for entry in outcome.precision {
                        // A clamped K means the metric was computed over all
                        // candidates; flag the cell with the effective K so
                        // the CSV never attributes it to the requested label.
                        if entry.clamped() {
                            row.push(format!("{} (K={})", fmt4(entry.precision), entry.k));
                        } else {
                            row.push(fmt4(entry.precision));
                        }
                    }
                }
                Err(err) => row.push(format!("err:{err}")),
            }
            table.add_row(row);
        }
        table.print();
    }
}
