//! Regenerates the paper's Fig. 10: NRP construction time on Erdős–Rényi
//! graphs as the number of nodes (with edges fixed) and the number of edges
//! (with nodes fixed) are varied — the paper's own scalability protocol,
//! scaled down by `--scale`.
//!
//! The printed ratio column makes the near-linear growth visible: time
//! roughly doubles when the varied quantity doubles.

use nrp_bench::methods::nrp;
use nrp_bench::report::fmt_secs;
use nrp_bench::{HarnessArgs, Scale, Table};
use nrp_core::{EmbedContext, Embedder};
use nrp_graph::generators::erdos_renyi_nm;
use nrp_graph::GraphKind;

fn factor(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 1,
        Scale::Small => 4,
        Scale::Medium => 16,
        Scale::Large => 64,
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    let f = factor(args.scale);
    // Paper: n ∈ {2e5..1e6} with m = 1e7; m ∈ {2e7..1e8} with n = 1e6.
    // Scaled down: base n = 5k·f, base m = 25k·f.
    let base_nodes = 5_000 * f;
    let base_edges = 25_000 * f;

    let mut by_nodes = Table::new(
        format!("Fig. 10(a) — NRP time vs number of nodes (m = {base_edges} edges fixed)"),
        &["nodes", "edges", "seconds", "ratio vs previous"],
    );
    let mut previous: Option<f64> = None;
    for step in 1..=5usize {
        let n = base_nodes * step;
        let graph = erdos_renyi_nm(n, base_edges, GraphKind::Directed, args.seed)
            .expect("valid ER parameters");
        let output = nrp(args.dimension, args.seed)
            .embed(&graph, &EmbedContext::default())
            .expect("NRP on ER graph");
        let total = output.metadata().total;
        let secs = total.as_secs_f64();
        let ratio = previous
            .map(|p| format!("{:.2}", secs / p))
            .unwrap_or_else(|| "-".into());
        by_nodes.add_row(vec![
            n.to_string(),
            base_edges.to_string(),
            fmt_secs(total),
            ratio,
        ]);
        previous = Some(secs);
    }
    by_nodes.print();

    let mut by_edges = Table::new(
        format!("Fig. 10(b) — NRP time vs number of edges (n = {base_nodes} nodes fixed)"),
        &["nodes", "edges", "seconds", "ratio vs previous"],
    );
    let mut previous: Option<f64> = None;
    for step in 1..=5usize {
        let m = base_edges * step;
        let graph = erdos_renyi_nm(base_nodes, m, GraphKind::Directed, args.seed)
            .expect("valid ER parameters");
        let output = nrp(args.dimension, args.seed)
            .embed(&graph, &EmbedContext::default())
            .expect("NRP on ER graph");
        let total = output.metadata().total;
        let secs = total.as_secs_f64();
        let ratio = previous
            .map(|p| format!("{:.2}", secs / p))
            .unwrap_or_else(|| "-".into());
        by_edges.add_row(vec![
            base_nodes.to_string(),
            m.to_string(),
            fmt_secs(total),
            ratio,
        ]);
        previous = Some(secs);
    }
    by_edges.print();
}
