//! Regenerates the paper's Fig. 10: NRP construction time on Erdős–Rényi
//! graphs as the number of nodes (with edges fixed) and the number of edges
//! (with nodes fixed) are varied — the paper's own scalability protocol,
//! scaled down by `--scale`.
//!
//! The printed ratio column makes the near-linear growth visible: time
//! roughly doubles when the varied quantity doubles.
//!
//! A third table sweeps the `EmbedContext` thread budget on the largest
//! generated graph for the parallelized heavy stages (ApproxPPR's
//! SVD + propagation, STRAP's per-source pushes + SVD, NRP end to end),
//! printing the speedup over the single-thread run.  Thanks to the
//! workspace-wide determinism contract the embeddings are bitwise identical
//! across the sweep — only the wall clock moves.

use nrp_baselines::strap::{Strap, StrapParams};
use nrp_bench::methods::approx_ppr;
use nrp_bench::report::fmt_secs;
use nrp_bench::{HarnessArgs, Scale, Table};
use nrp_core::{EmbedContext, Embedder, Nrp};
use nrp_graph::generators::erdos_renyi_nm;
use nrp_graph::{Graph, GraphKind};

fn factor(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 1,
        Scale::Small => 4,
        Scale::Medium => 16,
        Scale::Large => 64,
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    let f = factor(args.scale);
    // Paper: n ∈ {2e5..1e6} with m = 1e7; m ∈ {2e7..1e8} with n = 1e6.
    // Scaled down: base n = 5k·f, base m = 25k·f.
    let base_nodes = 5_000 * f;
    let base_edges = 25_000 * f;

    let mut by_nodes = Table::new(
        format!("Fig. 10(a) — NRP time vs number of nodes (m = {base_edges} edges fixed)"),
        &["nodes", "edges", "seconds", "ratio vs previous"],
    );
    let mut previous: Option<f64> = None;
    for step in 1..=5usize {
        let n = base_nodes * step;
        let graph = erdos_renyi_nm(n, base_edges, GraphKind::Directed, args.seed)
            .expect("valid ER parameters");
        let output = Nrp::new(args.nrp_base_params())
            .embed(&graph, &EmbedContext::new().with_threads(args.threads))
            .expect("NRP on ER graph");
        let total = output.metadata().total;
        let secs = total.as_secs_f64();
        let ratio = previous
            .map(|p| format!("{:.2}", secs / p))
            .unwrap_or_else(|| "-".into());
        by_nodes.add_row(vec![
            n.to_string(),
            base_edges.to_string(),
            fmt_secs(total),
            ratio,
        ]);
        previous = Some(secs);
    }
    by_nodes.print();

    let mut by_edges = Table::new(
        format!("Fig. 10(b) — NRP time vs number of edges (n = {base_nodes} nodes fixed)"),
        &["nodes", "edges", "seconds", "ratio vs previous"],
    );
    let mut previous: Option<f64> = None;
    for step in 1..=5usize {
        let m = base_edges * step;
        let graph = erdos_renyi_nm(base_nodes, m, GraphKind::Directed, args.seed)
            .expect("valid ER parameters");
        let output = Nrp::new(args.nrp_base_params())
            .embed(&graph, &EmbedContext::new().with_threads(args.threads))
            .expect("NRP on ER graph");
        let total = output.metadata().total;
        let secs = total.as_secs_f64();
        let ratio = previous
            .map(|p| format!("{:.2}", secs / p))
            .unwrap_or_else(|| "-".into());
        by_edges.add_row(vec![
            base_nodes.to_string(),
            m.to_string(),
            fmt_secs(total),
            ratio,
        ]);
        previous = Some(secs);
    }
    by_edges.print();

    thread_sweep(&args, base_nodes, base_edges);
}

/// A named timing closure: runs a method on a graph under a context and
/// returns the wall-clock seconds.
type TimedMethod<'a> = (&'a str, Box<dyn Fn(&Graph, &EmbedContext) -> f64>);

/// Sweeps the thread budget on the largest generated graph and reports the
/// wall-clock speedup of each parallelized method over its 1-thread run.
fn thread_sweep(args: &HarnessArgs, base_nodes: usize, base_edges: usize) {
    // The largest graph of the by-nodes sweep: 5x nodes, fixed edge count.
    let n = base_nodes * 5;
    let graph =
        erdos_renyi_nm(n, base_edges, GraphKind::Directed, args.seed).expect("valid ER parameters");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if cores < 4 {
        println!(
            "note: only {cores} hardware core(s) available — thread budgets beyond that \
             multiplex on the same core(s), so speedups below reflect scheduling overhead, \
             not the parallel fan-out"
        );
    }
    let mut table = Table::new(
        format!(
            "Fig. 10(c) — thread-budget sweep on the largest graph \
             (n = {n}, m = {base_edges}, {cores} hardware cores)"
        ),
        &["method", "threads", "seconds", "speedup vs first budget"],
    );
    let methods: Vec<TimedMethod> = vec![
        (
            "ApproxPPR",
            Box::new({
                let (dim, seed) = (args.dimension, args.seed);
                move |g: &Graph, ctx: &EmbedContext| {
                    let output = approx_ppr(dim, seed).embed(g, ctx).expect("ApproxPPR runs");
                    output.metadata().total.as_secs_f64()
                }
            }),
        ),
        (
            "STRAP",
            Box::new({
                let (dim, seed) = (args.dimension, args.seed);
                move |g: &Graph, ctx: &EmbedContext| {
                    // δ = 1e-3 keeps the per-source push budget sensible at
                    // bench scale while leaving the parallel fan-out dominant.
                    let strap = Strap::new(StrapParams {
                        dimension: dim,
                        delta: 1e-3,
                        seed,
                        ..Default::default()
                    });
                    let output = strap.embed(g, ctx).expect("STRAP runs");
                    output.metadata().total.as_secs_f64()
                }
            }),
        ),
        (
            "NRP",
            Box::new({
                let params = args.nrp_base_params();
                move |g: &Graph, ctx: &EmbedContext| {
                    let output = Nrp::new(params.clone()).embed(g, ctx).expect("NRP runs");
                    output.metadata().total.as_secs_f64()
                }
            }),
        ),
    ];
    // The budgets come from the `--config` document when it declares any;
    // the paper's 1/2/4/8 ladder otherwise.
    let budgets: Vec<usize> = args
        .config
        .as_ref()
        .filter(|spec| !spec.threads.is_empty())
        .map(|spec| spec.threads.clone())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    for (name, run) in &methods {
        let mut single: Option<f64> = None;
        for &threads in &budgets {
            let ctx = EmbedContext::new().with_threads(threads);
            let secs = run(&graph, &ctx);
            let baseline = *single.get_or_insert(secs);
            table.add_row(vec![
                name.to_string(),
                threads.to_string(),
                fmt_secs(std::time::Duration::from_secs_f64(secs)),
                format!("{:.2}x", baseline / secs),
            ]);
        }
    }
    table.print();
}
