//! Headless hot-path benchmark harness: measures the three perf-substrate
//! claims (persistent pool vs. scoped spawn, push-workspace reuse vs. fresh
//! allocation, counting-sort vs. comparison-sort CSR assembly) and emits the
//! results as `BENCH_hotpaths.json`, so the perf trajectory of future PRs
//! starts from a measured baseline in this container.
//!
//! ```text
//! cargo run --release -p nrp-bench --bin bench_hotpaths -- [--fast] [--out FILE]
//! ```
//!
//! `--fast` shrinks the workloads for CI smoke runs; `--out` defaults to
//! `BENCH_hotpaths.json` in the working directory.  Every scenario reports
//! the median of its samples; the JSON also records the host parallelism so
//! numbers from different containers are comparable.

use nrp_obs::clock;
use std::sync::Arc;

use nrp_bench::hotpaths::{assembly_triplets, kernel_stream, push_sweep};
use nrp_core::parallel::{Exec, WorkerPool};
use nrp_core::push::PushWorkspace;
use nrp_graph::generators::erdos_renyi_nm;
use nrp_graph::GraphKind;
use nrp_linalg::SparseMatrix;

struct Options {
    fast: bool,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        fast: false,
        out: "BENCH_hotpaths.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => options.fast = true,
            "--out" => {
                options.out = args
                    .next()
                    .ok_or_else(|| "--out requires a file path".to_owned())?;
            }
            other => return Err(format!("unknown flag `{other}` (expected --fast, --out)")),
        }
    }
    Ok(options)
}

/// Median wall-clock seconds of `samples` runs of `f` (after one warm-up).
fn measure<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = clock::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

fn json_number(value: f64) -> String {
    format!("{value:.9}")
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("bench_hotpaths: {message}");
            std::process::exit(2);
        }
    };
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let samples = if options.fast { 3 } else { 7 };

    // --- 1. Persistent pool vs. scoped spawn -----------------------------
    // Many tiny chunk maps: the dispatch/spawn overhead dominates, which is
    // the regime an embedding's kernel stream lives in.
    let threads = 4usize;
    let calls = if options.fast { 50 } else { 300 };
    let stream_n = 1024usize;
    eprintln!("[1/3] dispatch: {calls} kernel calls, budget {threads} (host has {host_threads})");
    let scoped_exec = Exec::scoped(threads);
    let scoped_secs = measure(samples, || {
        std::hint::black_box(kernel_stream(&scoped_exec, calls, stream_n));
    });
    let pool = Arc::new(WorkerPool::new(threads));
    let pooled_exec = Exec::pooled(pool, threads);
    let pooled_secs = measure(samples, || {
        std::hint::black_box(kernel_stream(&pooled_exec, calls, stream_n));
    });
    let sequential_exec = Exec::sequential();
    let sequential_secs = measure(samples, || {
        std::hint::black_box(kernel_stream(&sequential_exec, calls, stream_n));
    });
    eprintln!(
        "      scoped {scoped_secs:.6}s  pooled {pooled_secs:.6}s  sequential {sequential_secs:.6}s  (pool speedup vs scoped: {:.2}x)",
        scoped_secs / pooled_secs
    );

    // --- 2. Push workspace reuse ----------------------------------------
    let (nodes, edges, sources) = if options.fast {
        (5_000usize, 25_000usize, 128u32)
    } else {
        (50_000, 250_000, 512)
    };
    eprintln!("[2/3] forward push: n={nodes} m={edges}, {sources} sources");
    let graph = erdos_renyi_nm(nodes, edges, GraphKind::Directed, 7).expect("valid ER parameters");
    let fresh_secs = measure(samples, || {
        std::hint::black_box(push_sweep(&graph, sources, None));
    });
    let mut workspace = PushWorkspace::with_capacity(nodes);
    let reused_secs = measure(samples, || {
        std::hint::black_box(push_sweep(&graph, sources, Some(&mut workspace)));
    });
    eprintln!(
        "      fresh {fresh_secs:.6}s  reused {reused_secs:.6}s  (speedup: {:.2}x)",
        fresh_secs / reused_secs
    );

    // --- 3. CSR assembly -------------------------------------------------
    let (rows, nnz) = if options.fast {
        (10_000usize, 100_000usize)
    } else {
        (50_000, 1_000_000)
    };
    eprintln!("[3/3] CSR assembly: {rows}x{rows}, nnz={nnz}");
    let triplets = assembly_triplets(nnz, rows, rows);
    let counting_secs = measure(samples, || {
        std::hint::black_box(
            SparseMatrix::from_triplets(rows, rows, &triplets).expect("valid triplets"),
        );
    });
    let comparison_secs = measure(samples, || {
        std::hint::black_box(
            SparseMatrix::from_triplets_comparison(rows, rows, &triplets).expect("valid triplets"),
        );
    });
    eprintln!(
        "      counting {counting_secs:.6}s  comparison {comparison_secs:.6}s  (speedup: {:.2}x)",
        comparison_secs / counting_secs
    );

    // --- Emit ------------------------------------------------------------
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"hotpaths\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"samples_per_scenario\": {samples},\n",
            "  \"host\": {{ \"available_parallelism\": {host} }},\n",
            "  \"pool_vs_scoped\": {{\n",
            "    \"kernel_calls\": {calls},\n",
            "    \"items_per_call\": {stream_n},\n",
            "    \"thread_budget\": {threads},\n",
            "    \"scoped_secs\": {scoped},\n",
            "    \"pooled_secs\": {pooled},\n",
            "    \"sequential_secs\": {sequential},\n",
            "    \"pooled_speedup_vs_scoped\": {dispatch_speedup}\n",
            "  }},\n",
            "  \"push_workspace\": {{\n",
            "    \"nodes\": {nodes},\n",
            "    \"edges\": {edges},\n",
            "    \"sources\": {sources},\n",
            "    \"fresh_secs\": {fresh},\n",
            "    \"reused_secs\": {reused},\n",
            "    \"reused_speedup\": {push_speedup}\n",
            "  }},\n",
            "  \"csr_assembly\": {{\n",
            "    \"rows\": {rows},\n",
            "    \"nnz\": {nnz},\n",
            "    \"counting_sort_secs\": {counting},\n",
            "    \"comparison_sort_secs\": {comparison},\n",
            "    \"counting_speedup\": {csr_speedup}\n",
            "  }}\n",
            "}}\n",
        ),
        mode = if options.fast { "fast" } else { "full" },
        samples = samples,
        host = host_threads,
        calls = calls,
        stream_n = stream_n,
        threads = threads,
        scoped = json_number(scoped_secs),
        pooled = json_number(pooled_secs),
        sequential = json_number(sequential_secs),
        dispatch_speedup = json_number(scoped_secs / pooled_secs),
        nodes = nodes,
        edges = edges,
        sources = sources,
        fresh = json_number(fresh_secs),
        reused = json_number(reused_secs),
        push_speedup = json_number(fresh_secs / reused_secs),
        rows = rows,
        nnz = nnz,
        counting = json_number(counting_secs),
        comparison = json_number(comparison_secs),
        csr_speedup = json_number(comparison_secs / counting_secs),
    );
    std::fs::write(&options.out, &json).expect("writing the benchmark report");
    eprintln!("wrote {}", options.out);
}
