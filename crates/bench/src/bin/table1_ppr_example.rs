//! Regenerates the paper's Table 1: exact PPR values on the Fig. 1 example
//! graph (α = 0.15), plus the motivating observation that π(v9, v7) exceeds
//! π(v2, v4) although (v2, v4) share more common neighbours — and the NRP
//! scores that fix the ordering.

use nrp_bench::report::fmt4;
use nrp_bench::{HarnessArgs, Table};
use nrp_core::ppr::PprMatrix;
use nrp_core::{Embedder, Nrp, NrpParams};
use nrp_graph::generators::example::{example_graph, V2, V4, V7, V9};

fn main() {
    let args = HarnessArgs::from_env();
    if args.config.is_some() {
        eprintln!(
            "note: this bin reproduces the pinned Table 1 example (the Fig. 1 graph); \
             the --config roster does not apply and is ignored"
        );
    }
    let graph = example_graph();
    let ppr = PprMatrix::exact(&graph, 0.15, 1e-12).expect("exact PPR on 9 nodes");

    let mut table = Table::new(
        "Table 1 — PPR values on the Fig. 1 example graph (alpha = 0.15)",
        &[
            "source", "v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8", "v9",
        ],
    );
    for source in [V2, V4, V7, V9] {
        let mut row = vec![format!("pi(v{}, .)", source + 1)];
        for target in 0..9u32 {
            row.push(fmt4(ppr.get(source, target)));
        }
        table.add_row(row);
    }
    table.print();

    let nrp = Nrp::new(
        NrpParams::builder()
            .dimension(8)
            .num_hops(30)
            .lambda(0.1)
            .seed(1)
            .build()
            .expect("valid parameters"),
    );
    let embedding = nrp.embed_default(&graph).expect("NRP on the example graph");

    let mut motivation = Table::new(
        "Motivation — vanilla PPR vs NRP on the two node pairs of Section 1",
        &["pair", "common neighbours", "exact PPR", "NRP score"],
    );
    motivation.add_row(vec![
        "(v2, v4)".into(),
        graph.common_out_neighbors(V2, V4).to_string(),
        fmt4(ppr.get(V2, V4)),
        fmt4(embedding.score(V2, V4)),
    ]);
    motivation.add_row(vec![
        "(v9, v7)".into(),
        graph.common_out_neighbors(V9, V7).to_string(),
        fmt4(ppr.get(V9, V7)),
        fmt4(embedding.score(V9, V7)),
    ]);
    motivation.print();

    println!(
        "vanilla PPR prefers (v9,v7): {}    NRP prefers (v2,v4): {}",
        ppr.get(V9, V7) > ppr.get(V2, V4),
        embedding.score(V2, V4) > embedding.score(V9, V7)
    );
}
